"""Replay the frozen containment corpus through every LP solver path.

Every entry of ``containment_corpus.json`` is a pair with a known verdict
(paper examples plus deterministic batch-workload seeds).  The replay runs
each pair through the sequential driver and the batch service across
``lp_method`` (dense / rowgen) *and* ``lp_backend`` (scipy / the
incremental loop / native highspy) — any future solver change that flips a
verdict fails loudly with the pair's name.  The ``highs`` column is skipped
cleanly when ``highspy`` is not installed and replays the full corpus
through the warm-started backend when it is.

Regenerate (only for deliberate corpus extensions) with::

    PYTHONPATH=src python tests/regression/generate_corpus.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.containment import decide_containment
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.lp.backends import highs_available
from repro.service import decide_containment_many

CORPUS_PATH = Path(__file__).with_name("containment_corpus.json")
CORPUS = json.loads(CORPUS_PATH.read_text())["pairs"]

BACKENDS = [
    "scipy",
    "scipy-incremental",
    pytest.param(
        "highs",
        marks=pytest.mark.skipif(
            not highs_available(), reason="highspy is not installed"
        ),
    ),
]


def deserialize_query(record) -> ConjunctiveQuery:
    parsed = parse_query(record["body"], name=record["name"])
    if record["head"]:
        return ConjunctiveQuery(
            atoms=parsed.atoms, head=tuple(record["head"]), name=record["name"]
        )
    return parsed


def load_pair(entry):
    return deserialize_query(entry["q1"]), deserialize_query(entry["q2"])


def test_corpus_is_intact():
    assert len(CORPUS) >= 20
    statuses = {entry["status"] for entry in CORPUS}
    # A corpus of *known* verdicts: both outcomes represented, no unknowns.
    assert statuses == {"contained", "not_contained"}


@pytest.mark.parametrize("lp_backend", BACKENDS)
@pytest.mark.parametrize("lp_method", ["dense", "rowgen"])
@pytest.mark.parametrize("entry", CORPUS, ids=[e["name"] for e in CORPUS])
def test_sequential_replay_matches_frozen_verdict(entry, lp_method, lp_backend):
    q1, q2 = load_pair(entry)
    result = decide_containment(q1, q2, lp_method=lp_method, lp_backend=lp_backend)
    assert result.status.value == entry["status"], (
        f"{entry['name']}: frozen {entry['status']!r} but {lp_method}/{lp_backend} "
        f"path returned {result.status.value!r}"
    )


@pytest.mark.parametrize("lp_backend", BACKENDS)
@pytest.mark.parametrize("lp_method", ["dense", "rowgen"])
@pytest.mark.parametrize("chunk_size", [1, 32])
def test_batch_replay_matches_frozen_verdicts(lp_method, chunk_size, lp_backend):
    pairs = [load_pair(entry) for entry in CORPUS]
    results = decide_containment_many(
        pairs, lp_method=lp_method, chunk_size=chunk_size, lp_backend=lp_backend
    )
    got = [result.status.value for result in results]
    expected = [entry["status"] for entry in CORPUS]
    mismatches = [
        (entry["name"], want, have)
        for entry, want, have in zip(CORPUS, expected, got)
        if want != have
    ]
    assert not mismatches, f"verdict flips: {mismatches}"
