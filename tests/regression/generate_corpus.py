"""Regenerate ``containment_corpus.json`` (run manually, never from CI).

The corpus freezes known-verdict containment pairs — the paper's worked
examples plus deterministic seeds of the batch-workload generator — so that
future solver changes cannot silently flip verdicts.  Regeneration refuses
to write a corpus on which the dense and rowgen paths disagree, and it
refuses to *change* a frozen verdict (delete the entry explicitly if a
verdict is ever revised on purpose — that is the point of the file).

Usage::

    PYTHONPATH=src python tests/regression/generate_corpus.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.containment import decide_containment
from repro.workloads.generators import mixed_containment_pairs
from repro.workloads.paper_examples import (
    chaudhuri_vardi_example,
    example_3_5,
    example_e2_queries,
    vee_example,
)

CORPUS_PATH = Path(__file__).with_name("containment_corpus.json")


def serialize_query(query):
    return {
        "name": query.name,
        "body": ", ".join(str(atom) for atom in query.atoms),
        "head": list(query.head),
    }


def collect_pairs():
    pairs = []
    for example in (vee_example(), example_3_5()):
        pairs.append((example.name, example.q1, example.q2))
    cv_q1, cv_q2 = chaudhuri_vardi_example()
    pairs.append(("chaudhuri-vardi", cv_q1, cv_q2))
    e2 = example_e2_queries()
    pairs.append((e2.name, e2.q1, e2.q2))
    # Deterministic batch-workload seeds (the PR 2 benchmark families):
    # pure fresh pairs, no duplicates, so every entry is a distinct instance.
    for seed, count in ((0, 8), (1, 8)):
        workload = mixed_containment_pairs(
            count, seed=seed, duplicate_fraction=0.0, isomorphic_fraction=0.0
        )
        for index, (q1, q2) in enumerate(workload):
            pairs.append((f"workload-seed{seed}-{index}", q1, q2))
    return pairs


def main():
    previous = {}
    if CORPUS_PATH.exists():
        for entry in json.loads(CORPUS_PATH.read_text())["pairs"]:
            previous[entry["name"]] = entry["status"]
    entries = []
    for name, q1, q2 in collect_pairs():
        dense = decide_containment(q1, q2, lp_method="dense")
        rowgen = decide_containment(q1, q2, lp_method="rowgen")
        if dense.status != rowgen.status:
            raise SystemExit(
                f"{name}: dense={dense.status.value} rowgen={rowgen.status.value} — "
                "refusing to freeze a disagreement"
            )
        if name in previous and previous[name] != dense.status.value:
            raise SystemExit(
                f"{name}: frozen verdict {previous[name]!r} changed to "
                f"{dense.status.value!r} — delete the entry explicitly if intended"
            )
        entries.append(
            {
                "name": name,
                "q1": serialize_query(q1),
                "q2": serialize_query(q2),
                "status": dense.status.value,
                "method": dense.method,
            }
        )
    CORPUS_PATH.write_text(
        json.dumps(
            {
                "description": (
                    "Frozen known-verdict containment pairs; replayed through "
                    "both LP solver paths by test_containment_corpus.py"
                ),
                "pairs": entries,
            },
            indent=1,
        )
        + "\n"
    )
    print(f"wrote {CORPUS_PATH} ({len(entries)} pairs)")


if __name__ == "__main__":
    main()
