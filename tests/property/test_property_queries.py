"""Property-based tests for the conjunctive-query substrate."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cq.decompositions import (
    candidate_tree_decompositions,
    is_acyclic,
    join_tree,
)
from repro.cq.evaluation import evaluate_bag, evaluate_set
from repro.cq.homomorphism import count_query_homomorphisms
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.reductions import saturate_database, saturate_query
from repro.cq.structures import Structure
from repro.workloads.generators import path_query, random_database, star_query

VARIABLES = ("x", "y", "z", "w")


def atoms():
    relation = st.sampled_from(("R", "S"))
    args = st.tuples(st.sampled_from(VARIABLES), st.sampled_from(VARIABLES))
    return st.builds(Atom, relation, args)


def queries():
    return st.lists(atoms(), min_size=1, max_size=5).map(
        lambda atom_list: ConjunctiveQuery(atoms=tuple(atom_list), head=())
    )


def databases():
    return st.integers(0, 10**6).map(
        lambda seed: random_database({"R": 2, "S": 2}, 3, 4, seed=seed)
    )


@settings(max_examples=40, deadline=None)
@given(queries(), databases())
def test_bag_answer_refines_set_answer(query, database):
    bag = evaluate_bag(query, database)
    set_answer = evaluate_set(query, database)
    assert set(bag) == set(set_answer)
    assert all(count >= 1 for count in bag.values())


@settings(max_examples=40, deadline=None)
@given(queries(), databases())
def test_hom_count_multiplicative_under_disjoint_copies(query, database):
    single = count_query_homomorphisms(query, database)
    double = count_query_homomorphisms(query.disjoint_copies(2), database)
    assert double == single**2


@settings(max_examples=40, deadline=None)
@given(queries())
def test_candidate_decompositions_are_valid(query):
    for decomposition in candidate_tree_decompositions(query):
        decomposition.validate(query)
        assert decomposition.all_variables() == query.variable_set


@settings(max_examples=40, deadline=None)
@given(queries())
def test_join_tree_exists_iff_acyclic(query):
    if is_acyclic(query):
        tree = join_tree(query)
        tree.validate(query)
        assert tree.is_decomposition_witnessing_acyclicity(query)
    else:
        try:
            join_tree(query)
            raised = False
        except Exception:
            raised = True
        assert raised


@settings(max_examples=30, deadline=None)
@given(queries(), databases())
def test_decomposition_counting_matches_backtracking(query, database):
    assume(is_acyclic(query))
    assert count_query_homomorphisms(
        query, database, method="decomposition"
    ) == count_query_homomorphisms(query, database, method="backtracking")


@settings(max_examples=25, deadline=None)
@given(queries(), databases())
def test_saturation_preserves_hom_counts(query, database):
    saturated_query = saturate_query(query)
    saturated_database = saturate_database(database)
    assert count_query_homomorphisms(query, database) == count_query_homomorphisms(
        saturated_query, saturated_database
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), databases())
def test_path_counts_monotone_in_length(length, database):
    # Appending an atom to a path can only reduce or keep... actually longer
    # paths can have more homomorphisms; instead check the sound direction:
    # the length-(k+1) path is bag-contained in the length-k path, so counts
    # are monotone non-increasing in the length on every database.
    longer = count_query_homomorphisms(path_query(length + 1), database)
    shorter = count_query_homomorphisms(path_query(length), database)
    domain = len(database.domain)
    assert longer <= shorter * domain  # trivial sanity bound
    # The real containment bound (Theorem 4.2 consequence):
    assert count_query_homomorphisms(
        path_query(length + 1), database
    ) * 1 <= count_query_homomorphisms(path_query(length), database) * domain


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), databases())
def test_star_counts_dominate_edge_count(leaves, database):
    # hom(star_k, D) = Σ_v outdeg(v)^k >= |R| for k >= 1.
    star = count_query_homomorphisms(star_query(leaves), database)
    edge = count_query_homomorphisms(star_query(1), database)
    assert star >= edge or leaves == 1
