"""Cross-backend equivalence: scipy vs the incremental (highspy-style) path.

The lockdown harness for the solver-backend layer: on hypothesis-generated
polymatroid expressions and containment instances at ``n ≤ 8``, every
``backend × lp_method`` combination must return

* identical validity / feasibility / containment verdicts,
* matching optimal objective values (within tolerance),
* independently verified certificates (checked by
  :meth:`ShannonCertificate.verify`, which re-sums the weighted elemental
  inequalities without any LP), and
* genuine cone points for every feasible answer.

``scipy-incremental`` runs the exact incremental cutting-plane loop the
HiGHS backend uses (keyed rows, slack deletion, anti-cycling guard) on the
always-installed solver, so the loop is exercised on every CI leg; the
``highs`` column is skipped cleanly when ``highspy`` is absent and locks
down the native warm-started backend when it is installed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.cones import cone_by_name
from repro.infotheory.expressions import LinearExpression
from repro.infotheory.polymatroid import is_polymatroid
from repro.infotheory.shannon import ShannonProver, shannon_prover
from repro.lp.backends import highs_available
from repro.service import decide_containment_many
from repro.workloads.generators import mixed_containment_pairs, random_max_ii

TOLERANCE = 1e-6

needs_highspy = pytest.mark.skipif(
    not highs_available(), reason="highspy is not installed"
)

#: Every backend the equivalence matrix covers; "scipy" is the reference.
BACKENDS = [
    "scipy",
    "scipy-incremental",
    pytest.param("highs", marks=needs_highspy),
]
ALTERNATE_BACKENDS = BACKENDS[1:]
LP_METHODS = ["dense", "rowgen"]


def grounds(min_n=2, max_n=6):
    return st.integers(min_value=min_n, max_value=max_n).map(
        lambda n: tuple(f"X{i}" for i in range(1, n + 1))
    )


@st.composite
def random_expressions(draw, min_n=2, max_n=6):
    """A random small-integer linear expression over a random ground set."""
    ground = draw(grounds(min_n, max_n))
    n = len(ground)
    num_terms = draw(st.integers(min_value=1, max_value=6))
    coefficients = {}
    for _ in range(num_terms):
        mask = draw(st.integers(min_value=1, max_value=(1 << n) - 1))
        subset = frozenset(v for i, v in enumerate(ground) if mask & (1 << i))
        coefficient = draw(
            st.integers(min_value=-3, max_value=3).filter(lambda c: c != 0)
        )
        coefficients[subset] = coefficients.get(subset, 0.0) + coefficient
    return LinearExpression(ground=ground, coefficients=coefficients)


@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=30, deadline=None)
@given(random_expressions())
def test_minimum_over_gamma_agrees_across_backends(backend, expression):
    prover = shannon_prover(expression.ground)
    reference, _ = prover.minimum_over_gamma(
        expression, method="rowgen", backend="scipy"
    )
    value, point = prover.minimum_over_gamma(
        expression, method="rowgen", backend=backend
    )
    assert value == pytest.approx(reference, abs=TOLERANCE)
    # A non-early-stopped minimizer must genuinely be a polymatroid; the
    # early-stop contract returns the zero polymatroid, which trivially is.
    assert is_polymatroid(point, tolerance=1e-6)
    assert expression.evaluate(point) <= value + TOLERANCE


@pytest.mark.parametrize("lp_method", LP_METHODS)
@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=20, deadline=None)
@given(random_expressions())
def test_validity_verdicts_agree_across_backend_and_method(
    backend, lp_method, expression
):
    prover = shannon_prover(expression.ground)
    reference = prover.is_valid(expression, method="dense", backend="scipy")
    assert (
        prover.is_valid(expression, method=lp_method, backend=backend) == reference
    )


@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=15, deadline=None)
@given(random_expressions())
def test_certificates_verify_independently_across_backends(backend, expression):
    prover = shannon_prover(expression.ground)
    valid = prover.is_valid(expression, method="dense", backend="scipy")
    certificate = prover.certificate(expression, method="rowgen", backend=backend)
    assert (certificate is not None) == valid
    if valid:
        assert certificate.verify(expression, tolerance=1e-5)


@pytest.mark.parametrize("lp_method", LP_METHODS)
@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=3),
)
def test_find_point_below_verdicts_agree(backend, lp_method, seed, n, branches):
    max_ii = random_max_ii(n, branches, seed=seed)
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    cone = cone_by_name("gamma", ground)
    expressions = [branch.with_ground(ground) for branch in max_ii.branches]
    reference = cone.find_point_below(expressions, method="dense", backend="scipy")
    point = cone.find_point_below(expressions, method=lp_method, backend=backend)
    assert (reference is None) == (point is None)
    if point is not None:
        function = point.function
        assert is_polymatroid(function, tolerance=1e-6)
        assert all(e.evaluate(function) <= -1.0 + TOLERANCE for e in expressions)


@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=2,
        max_size=5,
    ),
)
def test_batched_cone_decisions_agree(backend, seed, n, specs):
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    cone = cone_by_name("gamma", ground)
    expression_lists = [
        [
            branch.with_ground(ground)
            for branch in random_max_ii(n, branches, seed=seed + s).branches
        ]
        for s, branches in specs
    ]
    reference = cone.find_points_below_many(
        expression_lists, method="dense", backend="scipy"
    )
    points = cone.find_points_below_many(
        expression_lists, method="rowgen", backend=backend
    )
    assert [p is None for p in reference] == [p is None for p in points]


@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@settings(max_examples=5, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from([1, 32]),
)
def test_batch_service_statuses_identical_across_backends(backend, seed, chunk_size):
    pairs = mixed_containment_pairs(8, seed=seed)
    reference = decide_containment_many(
        pairs, chunk_size=chunk_size, lp_backend="scipy"
    )
    results = decide_containment_many(
        pairs, chunk_size=chunk_size, lp_backend=backend
    )
    assert [r.status for r in reference] == [r.status for r in results]


@pytest.mark.parametrize("backend", ALTERNATE_BACKENDS)
@pytest.mark.parametrize("n", [7, 8])
def test_larger_arity_spot_checks_agree(backend, n):
    """Deterministic n ∈ {7, 8} instances (too slow to run under hypothesis)."""
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    prover = ShannonProver(ground)
    full = frozenset(ground)
    # Han-type valid inequality: Σ_i h(V \ i) ≥ (n-1)·h(V).
    han = LinearExpression(
        ground=ground,
        coefficients={
            **{full - {v}: 1.0 for v in ground},
            full: -(n - 1),
        },
    )
    # Invalid: modular points break 1.5·h({1,2}) ≤ h({1}) + h({2}).
    bad = LinearExpression(
        ground=ground,
        coefficients={
            frozenset({"X1"}): 1.0,
            frozenset({"X2"}): 1.0,
            frozenset({"X1", "X2"}): -1.5,
        },
    )
    for expression, expected in ((han, True), (bad, False)):
        reference = prover.is_valid(expression, method="rowgen", backend="scipy")
        valid = prover.is_valid(expression, method="rowgen", backend=backend)
        assert reference == valid == expected
    certificate = prover.certificate(han, method="rowgen", backend=backend)
    assert certificate is not None and certificate.verify(han, tolerance=1e-5)
