"""Batch-vs-sequential equivalence over generated mixed workloads.

The acceptance property of the batch service: for any workload emitted by
:func:`repro.workloads.generators.mixed_containment_pairs` — including exact
duplicates and isomorphic renamed copies that hit the plan cache —
``decide_containment_many`` returns statuses identical, pair for pair, to a
sequential ``decide_containment`` loop.
"""

import pytest

from repro.core.containment import decide_containment
from repro.service import ContainmentService, decide_containment_many
from repro.workloads.generators import mixed_containment_pairs


def _sequential_statuses(pairs):
    return [decide_containment(q1, q2).status for q1, q2 in pairs]


@pytest.mark.parametrize("seed", range(6))
def test_batch_statuses_equal_sequential(seed):
    pairs = mixed_containment_pairs(24, seed=seed)
    batch = decide_containment_many(pairs)
    assert [r.status for r in batch] == _sequential_statuses(pairs)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("chunk_size", [1, 4, 64])
def test_equivalence_independent_of_chunking(seed, chunk_size):
    pairs = mixed_containment_pairs(16, seed=seed)
    batch = decide_containment_many(pairs, chunk_size=chunk_size)
    assert [r.status for r in batch] == _sequential_statuses(pairs)


def test_equivalence_with_parallel_workers():
    pairs = mixed_containment_pairs(20, seed=17)
    batch = decide_containment_many(pairs, max_workers=4)
    assert [r.status for r in batch] == _sequential_statuses(pairs)


def test_cache_hits_preserve_equivalence_across_calls():
    service = ContainmentService()
    pairs = mixed_containment_pairs(18, seed=23)
    first = service.run(pairs)
    second = service.run(pairs)
    sequential = _sequential_statuses(pairs)
    assert [r.status for r in first.results] == sequential
    assert [r.status for r in second.results] == sequential
    # The second pass must be answered entirely without running pipelines.
    assert all(o.source == "plan-cache" for o in second.outcomes)


def test_duplicates_and_isomorphic_pairs_fold_into_one_pipeline():
    service = ContainmentService()
    pairs = mixed_containment_pairs(
        30, seed=29, duplicate_fraction=0.4, isomorphic_fraction=0.4
    )
    report = service.run(pairs)
    folded = sum(1 for o in report.outcomes if o.source == "batch-dedup")
    assert folded == service.stats.batch_duplicates
    assert folded > 0
    assert service.stats.pipelines_run + folded == len(pairs)
    assert [r.status for r in report.results] == _sequential_statuses(pairs)
