"""Cross-solver equivalence: row generation vs the dense elemental LP.

The lockdown harness for the lazy-separation solver: on randomly generated
entropic expressions and containment workloads at ``n ≤ 8``, the rowgen and
dense paths must return

* identical validity / feasibility verdicts,
* matching optimal objective values (within tolerance),
* independently verified certificates (checked by
  :meth:`ShannonCertificate.verify`, which re-sums the weighted elemental
  inequalities without any LP), and
* identical batch-service statuses across ``chunk_size`` × ``lp_method``
  combinations.

A wrong-but-fast separation oracle would silently flip containment
verdicts; these properties are what make that class of bug loud.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.cones import cone_by_name
from repro.infotheory.expressions import LinearExpression
from repro.infotheory.polymatroid import is_polymatroid
from repro.infotheory.shannon import ShannonProver, shannon_prover
from repro.service import decide_containment_many
from repro.workloads.generators import mixed_containment_pairs, random_max_ii

TOLERANCE = 1e-6


def grounds(min_n=2, max_n=6):
    return st.integers(min_value=min_n, max_value=max_n).map(
        lambda n: tuple(f"X{i}" for i in range(1, n + 1))
    )


@st.composite
def random_expressions(draw, min_n=2, max_n=6):
    """A random small-integer linear expression over a random ground set."""
    ground = draw(grounds(min_n, max_n))
    n = len(ground)
    num_terms = draw(st.integers(min_value=1, max_value=6))
    coefficients = {}
    for _ in range(num_terms):
        mask = draw(st.integers(min_value=1, max_value=(1 << n) - 1))
        subset = frozenset(v for i, v in enumerate(ground) if mask & (1 << i))
        coefficient = draw(
            st.integers(min_value=-3, max_value=3).filter(lambda c: c != 0)
        )
        coefficients[subset] = coefficients.get(subset, 0.0) + coefficient
    return LinearExpression(ground=ground, coefficients=coefficients)


@settings(max_examples=60, deadline=None)
@given(random_expressions())
def test_minimum_over_gamma_agrees(expression):
    prover = shannon_prover(expression.ground)
    dense_value, dense_point = prover.minimum_over_gamma(expression, method="dense")
    lazy_value, lazy_point = prover.minimum_over_gamma(expression, method="rowgen")
    assert lazy_value == pytest.approx(dense_value, abs=TOLERANCE)
    # Both minimizers must genuinely be polymatroids attaining their value.
    assert is_polymatroid(dense_point, tolerance=1e-6)
    assert is_polymatroid(lazy_point, tolerance=1e-6)
    assert expression.evaluate(lazy_point) == pytest.approx(lazy_value, abs=TOLERANCE)


@settings(max_examples=60, deadline=None)
@given(random_expressions())
def test_validity_verdicts_agree(expression):
    prover = shannon_prover(expression.ground)
    assert prover.is_valid(expression, method="dense") == prover.is_valid(
        expression, method="rowgen"
    )


@settings(max_examples=40, deadline=None)
@given(random_expressions())
def test_certificates_exist_iff_valid_and_verify_independently(expression):
    prover = shannon_prover(expression.ground)
    valid = prover.is_valid(expression, method="dense")
    dense_certificate = prover.certificate(expression, method="dense")
    lazy_certificate = prover.certificate(expression, method="rowgen")
    assert (dense_certificate is not None) == valid
    assert (lazy_certificate is not None) == valid
    if valid:
        assert dense_certificate.verify(expression, tolerance=1e-5)
        assert lazy_certificate.verify(expression, tolerance=1e-5)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=3),
)
def test_find_point_below_verdicts_agree(seed, n, branches):
    max_ii = random_max_ii(n, branches, seed=seed)
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    cone = cone_by_name("gamma", ground)
    expressions = [branch.with_ground(ground) for branch in max_ii.branches]
    dense_point = cone.find_point_below(expressions, method="dense")
    lazy_point = cone.find_point_below(expressions, method="rowgen")
    assert (dense_point is None) == (lazy_point is None)
    if lazy_point is not None:
        function = lazy_point.function
        assert is_polymatroid(function, tolerance=1e-6)
        assert all(e.evaluate(function) <= -1.0 + TOLERANCE for e in expressions)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=2, max_value=5),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=3),
        ),
        min_size=2,
        max_size=6,
    ),
)
def test_batched_cone_decisions_agree(seed, n, specs):
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    cone = cone_by_name("gamma", ground)
    expression_lists = [
        [
            branch.with_ground(ground)
            for branch in random_max_ii(n, branches, seed=seed + s).branches
        ]
        for s, branches in specs
    ]
    dense_points = cone.find_points_below_many(expression_lists, method="dense")
    lazy_points = cone.find_points_below_many(expression_lists, method="rowgen")
    assert [p is None for p in dense_points] == [p is None for p in lazy_points]


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from([1, 4, 32]),
)
def test_batch_service_statuses_identical_across_lp_methods(seed, chunk_size):
    pairs = mixed_containment_pairs(10, seed=seed)
    dense_results = decide_containment_many(
        pairs, chunk_size=chunk_size, lp_method="dense"
    )
    lazy_results = decide_containment_many(
        pairs, chunk_size=chunk_size, lp_method="rowgen"
    )
    assert [r.status for r in dense_results] == [r.status for r in lazy_results]


@pytest.mark.parametrize("n", [7, 8])
def test_larger_arity_spot_checks_agree(n):
    """Deterministic n ∈ {7, 8} instances (too slow to run under hypothesis)."""
    ground = tuple(f"X{i}" for i in range(1, n + 1))
    prover = ShannonProver(ground)
    full = frozenset(ground)
    # Han-type valid inequality: Σ_i h(V \ i) ≥ (n-1)·h(V).
    han = LinearExpression(
        ground=ground,
        coefficients={
            **{full - {v}: 1.0 for v in ground},
            full: -(n - 1),
        },
    )
    # Invalid: modular points break 1.5·h({1,2}) ≤ h({1}) + h({2}).
    bad = LinearExpression(
        ground=ground,
        coefficients={
            frozenset({"X1"}): 1.0,
            frozenset({"X2"}): 1.0,
            frozenset({"X1", "X2"}): -1.5,
        },
    )
    for expression, expected in ((han, True), (bad, False)):
        dense_valid = prover.is_valid(expression, method="dense")
        lazy_valid = prover.is_valid(expression, method="rowgen")
        assert dense_valid == lazy_valid == expected
    certificate = prover.certificate(han, method="rowgen")
    assert certificate is not None and certificate.verify(han, tolerance=1e-5)
