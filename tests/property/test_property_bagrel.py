"""Property-based tests for the bag relational algebra.

The invariants checked here are the algebraic laws that SQL engines rely on:
commutativity/associativity of the bag join, the interaction of projection
with union-all, the monus laws of bag difference, and the agreement between
the compiled-plan evaluator and the homomorphism-based evaluator on random
graph queries and databases.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.cq.evaluation import evaluate_bag
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure
from repro.ra.bagrel import BagRelation
from repro.ra.compile import evaluate_query_bag

VALUES = st.integers(min_value=0, max_value=3)


def bag_relations(attributes):
    """Strategy producing small bag relations over fixed attributes."""
    row = st.tuples(*([VALUES] * len(attributes)))
    return st.dictionaries(row, st.integers(min_value=1, max_value=3), max_size=6).map(
        lambda rows: BagRelation(attributes=attributes, multiplicities=rows)
    )


@given(bag_relations(("a", "b")), bag_relations(("b", "c")))
@settings(max_examples=60, deadline=None)
def test_join_commutes_up_to_column_order(left, right):
    forward = left.natural_join(right)
    backward = right.natural_join(left)
    assert forward.project(sorted(forward.attributes)).same_bag(
        backward.project(sorted(backward.attributes))
    )


@given(bag_relations(("a", "b")), bag_relations(("b", "c")), bag_relations(("c", "d")))
@settings(max_examples=40, deadline=None)
def test_join_is_associative(first, second, third):
    left_first = first.natural_join(second).natural_join(third)
    right_first = first.natural_join(second.natural_join(third))
    assert left_first.same_bag(right_first)


@given(bag_relations(("a", "b")))
@settings(max_examples=60, deadline=None)
def test_projection_preserves_total_count(relation):
    assert len(relation.project(("a",))) == len(relation)
    assert len(relation.project(())) == len(relation)


@given(bag_relations(("a", "b")), bag_relations(("a", "b")))
@settings(max_examples=60, deadline=None)
def test_union_all_adds_counts_and_projection_distributes(left, right):
    union = left.union_all(right)
    assert len(union) == len(left) + len(right)
    assert union.project(("a",)).same_bag(
        left.project(("a",)).union_all(right.project(("a",)))
    )


@given(bag_relations(("a", "b")), bag_relations(("a", "b")))
@settings(max_examples=60, deadline=None)
def test_difference_monus_laws(left, right):
    difference = left.difference(right)
    assert difference.bag_contained_in(left)
    # (L − R) ∪all R contains L.
    assert left.bag_contained_in(difference.union_all(right))
    # Removing everything leaves nothing.
    assert len(left.difference(left)) == 0


@given(bag_relations(("a", "b")), bag_relations(("a", "b")))
@settings(max_examples=60, deadline=None)
def test_intersection_bounded_by_both(left, right):
    common = left.intersection(right)
    assert common.bag_contained_in(left)
    assert common.bag_contained_in(right)


@given(bag_relations(("a", "b")), bag_relations(("b", "c")))
@settings(max_examples=60, deadline=None)
def test_semijoin_is_projection_of_join(left, right):
    via_semijoin = left.semijoin(right)
    via_join = left.natural_join(right.distinct()).project(left.attributes)
    # The semijoin keeps each left row at most once per its own multiplicity.
    assert via_semijoin.support() == via_join.support()
    assert all(
        via_semijoin.multiplicity(row) == left.multiplicity(row)
        for row in via_semijoin.support()
    )


# ---------------------------------------------------------------------- #
# Compiled plans agree with homomorphism counting
# ---------------------------------------------------------------------- #
def _graph_structure(edges):
    domain = {value for edge in edges for value in edge} or {0}
    return Structure(domain=frozenset(domain), relations={"R": set(edges)})


EDGES = st.sets(st.tuples(VALUES, VALUES), max_size=8)
QUERY_SHAPES = st.sampled_from(
    [
        (("R", ("x", "y")),),
        (("R", ("x", "y")), ("R", ("y", "z"))),
        (("R", ("x", "y")), ("R", ("y", "x"))),
        (("R", ("x", "y")), ("R", ("y", "z")), ("R", ("z", "x"))),
        (("R", ("x", "x")),),
        (("R", ("x", "y")), ("R", ("u", "v"))),
    ]
)


@given(EDGES, QUERY_SHAPES)
@settings(max_examples=50, deadline=None)
def test_plan_evaluation_matches_homomorphism_evaluation(edges, shape):
    structure = _graph_structure(edges)
    query = ConjunctiveQuery(
        atoms=tuple(Atom(relation, args) for relation, args in shape),
        head=(),
        name="prop",
    )
    assert evaluate_query_bag(query, structure) == evaluate_bag(query, structure)


@given(EDGES)
@settings(max_examples=40, deadline=None)
def test_plan_evaluation_matches_on_head_query(edges):
    structure = _graph_structure(edges)
    query = ConjunctiveQuery(
        atoms=(Atom("R", ("x", "y")), Atom("R", ("y", "z"))), head=("x",), name="prop"
    )
    assert evaluate_query_bag(query, structure) == evaluate_bag(query, structure)
