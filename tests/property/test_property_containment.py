"""Property-based tests for containment verdicts (soundness on random inputs)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.containment import ContainmentStatus, decide_containment
from repro.core.containment_inequality import build_containment_inequality
from repro.cq.homomorphism import count_query_homomorphisms
from repro.infotheory.entropy import relation_entropy
from repro.infotheory.maxiip import decide_max_ii
from repro.cq.structures import Relation
from repro.workloads.generators import (
    path_query,
    random_chordal_simple_query,
    random_database,
    random_query,
)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_verdicts_are_sound_on_random_databases(seed):
    """CONTAINED verdicts survive random-database spot checks; NOT_CONTAINED ships a witness."""
    q1 = random_query(3, 3, relations=(("R", 2),), seed=seed)
    q2 = random_chordal_simple_query(2, clique_size=2, seed=seed)
    result = decide_containment(q1, q2)
    if result.status == ContainmentStatus.NOT_CONTAINED and result.witness is not None:
        witness = result.witness
        assert count_query_homomorphisms(q1, witness.database) == witness.hom_q1
        assert count_query_homomorphisms(q2, witness.database) == witness.hom_q2
        assert witness.hom_q1 > witness.hom_q2
    if result.status == ContainmentStatus.CONTAINED:
        for db_seed in range(3):
            database = random_database({"R": 2}, 3, 4, seed=seed + db_seed)
            assert count_query_homomorphisms(q1, database) <= count_query_homomorphisms(
                q2, database
            )


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_sufficient_condition_soundness_via_entropy(seed):
    """Theorem 4.2 mechanics: a Γn-valid Eq. (8) inequality holds on every
    relation entropy, hence |P| ≤ |hom(Q2, Π_Q1(P))| for witness candidates."""
    q1 = random_query(3, 3, relations=(("R", 2),), seed=seed)
    q2 = path_query(2)
    inequality = build_containment_inequality(q1, q2)
    if inequality.is_trivially_false:
        return
    verdict = decide_max_ii(
        inequality.as_max_ii(), over="gamma", ground=inequality.ground
    )
    if not verdict.valid:
        return
    # Check the inequality on entropies of a few random witness relations.
    import random as random_module

    generator = random_module.Random(seed)
    variables = tuple(inequality.ground)
    for _ in range(3):
        rows = {
            tuple(generator.randrange(2) for _ in variables)
            for _ in range(generator.randint(1, 6))
        }
        entropy = relation_entropy(Relation(attributes=variables, rows=rows))
        assert inequality.holds_for(entropy, tolerance=1e-6)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_containment_is_reflexive(seed):
    query = random_query(3, 3, relations=(("R", 2),), seed=seed)
    result = decide_containment(query, query)
    assert result.status == ContainmentStatus.CONTAINED


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 4))
def test_path_length_differences_are_refuted_with_witnesses(length):
    # Path counts are not monotone in the length (complete digraphs separate
    # them), so the complete procedure must refute both directions and ship a
    # verified witness for at least the longer-vs-shorter direction.
    result = decide_containment(path_query(length), path_query(length - 1))
    assert result.status == ContainmentStatus.NOT_CONTAINED
    if result.witness is not None:
        assert result.witness.hom_q1 > result.witness.hom_q2
