"""Property-based tests (hypothesis) for entropies and set functions."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.structures import Relation
from repro.infotheory.entropy import projection_log_sizes, relation_entropy
from repro.infotheory.imeasure import from_mobius_inverse, mobius_inverse
from repro.infotheory.polymatroid import is_polymatroid
from repro.infotheory.setfunction import SetFunction

ATTRIBUTES = ("a", "b", "c")


def relations(min_rows=1, max_rows=10, domain=3):
    row = st.tuples(*[st.integers(0, domain - 1) for _ in ATTRIBUTES])
    return st.frozensets(row, min_size=min_rows, max_size=max_rows).map(
        lambda rows: Relation(attributes=ATTRIBUTES, rows=rows)
    )


@settings(max_examples=40, deadline=None)
@given(relations())
def test_relation_entropy_is_entropic_polymatroid(relation):
    entropy = relation_entropy(relation)
    assert is_polymatroid(entropy, tolerance=1e-7)


@settings(max_examples=40, deadline=None)
@given(relations())
def test_relation_entropy_bounded_by_projection_sizes(relation):
    entropy = relation_entropy(relation)
    log_sizes = projection_log_sizes(relation)
    # H(X) <= log2 |Π_X(P)| with equality iff the marginal is uniform.
    assert log_sizes.dominates(entropy, tolerance=1e-7)


@settings(max_examples=40, deadline=None)
@given(relations())
def test_total_entropy_is_log_cardinality(relation):
    entropy = relation_entropy(relation)
    assert abs(entropy.total() - math.log2(len(relation))) < 1e-7


@settings(max_examples=40, deadline=None)
@given(relations(), relations())
def test_domain_product_adds_entropies(left, right):
    product = left.domain_product(right)
    combined = relation_entropy(product)
    expected = relation_entropy(left) + relation_entropy(right)
    assert combined.is_close_to(expected, tolerance=1e-6)


def set_functions():
    values = st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=7, max_size=7
    )
    return values.map(lambda vector: SetFunction.from_vector(ATTRIBUTES, vector))


@settings(max_examples=60, deadline=None)
@given(set_functions())
def test_mobius_inverse_roundtrip(function):
    inverse = mobius_inverse(function)
    rebuilt = from_mobius_inverse(function.ground, inverse)
    assert rebuilt.is_close_to(function, tolerance=1e-6)


@settings(max_examples=60, deadline=None)
@given(set_functions(), set_functions())
def test_set_function_addition_commutes(left, right):
    assert (left + right).is_close_to(right + left)


@settings(max_examples=40, deadline=None)
@given(set_functions(), st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
def test_scaling_distributes_over_evaluation(function, scale):
    scaled = scale * function
    for subset in function.subsets():
        assert abs(scaled(subset) - scale * function(subset)) < 1e-7
