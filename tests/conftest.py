"""Shared fixtures: the paper's running examples and small helper queries.

The terminal-summary hook reports solver-path coverage along two axes: how
many ``Γn`` cone decisions ran through the dense elemental matrix vs. lazy
row generation, and how many were served by each solver backend (scipy's
one-shot HiGHS, the incremental test loop, native ``highspy``).  The tier-1
CI job greps this line to prove that every path that should have run did:
``dense``, ``rowgen`` and the ``scipy`` backend always, the ``highs``
backend only on legs where ``highspy`` is installed.
"""

from __future__ import annotations

import pytest

from repro.lp.backends import highs_available
from repro.lp.solver import backend_path_counts, solver_path_counts


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    counts = solver_path_counts()
    backends = backend_path_counts()
    if not any(counts.values()) and not any(backends.values()):
        return
    missing = [name for name in ("dense", "rowgen") if not counts.get(name)]
    # The scipy fallback must always be exercised; the optional highspy
    # backend only counts as missing when it is actually installed.
    expected_backends = ["scipy"] + (["highs"] if highs_available() else [])
    missing += [
        f"backend:{name}" for name in expected_backends if not backends.get(name)
    ]
    shown_backends = sorted(backends, key=lambda name: (name != "scipy", name))
    terminalreporter.write_sep("-", "solver-path coverage")
    terminalreporter.write_line(
        "solver-path coverage: "
        + ", ".join(f"{name}={counts.get(name, 0)}" for name in ("dense", "rowgen"))
        + "; backend "
        + ", ".join(f"{name}={backends.get(name, 0)}" for name in shown_backends)
        + ("" if not missing else f"  (WARNING: {', '.join(missing)} never exercised)")
    )

from repro.cq.parser import parse_query
from repro.cq.structures import Relation, Structure
from repro.infotheory.functions import parity_function
from repro.workloads.paper_examples import (
    example_3_5,
    example_3_8_inequality,
    example_5_2_inequality,
    vee_example,
)


@pytest.fixture
def triangle_query():
    """The triangle query of Example 4.3 (Q1)."""
    return parse_query("R(X1,X2), R(X2,X3), R(X3,X1)", name="triangle")


@pytest.fixture
def path2_query():
    """The length-2 path query of Example 4.3 (Q2)."""
    return parse_query("R(Y1,Y2), R(Y1,Y3)", name="path2")


@pytest.fixture
def vee_pair():
    return vee_example()


@pytest.fixture
def example_35_pair():
    return example_3_5()


@pytest.fixture
def example_38_max_ii():
    return example_3_8_inequality()


@pytest.fixture
def example_52_expression():
    return example_5_2_inequality()


@pytest.fixture
def parity():
    """The parity function on three variables (entropic, not normal)."""
    return parity_function(("X1", "X2", "X3"))


@pytest.fixture
def small_database():
    """A small database with a full binary relation on {0, 1}."""
    return Structure.from_facts(
        [("R", (0, 0)), ("R", (0, 1)), ("R", (1, 0)), ("R", (1, 1))]
    )


@pytest.fixture
def triangle_database():
    """A directed 3-cycle database."""
    return Structure.from_facts([("R", (0, 1)), ("R", (1, 2)), ("R", (2, 0))])


@pytest.fixture
def diagonal_relation():
    """The witness relation {(u,u,v,v)} of Example 3.5 with n = 2."""
    return Relation(
        attributes=("x1", "x2", "xp1", "xp2"),
        rows={(u, u, v, v) for u in range(2) for v in range(2)},
    )
