"""Integration tests of the paper's theorems on generated instances."""

import pytest

from repro.core.brute_force import containment_holds_on_small_databases
from repro.core.containment import ContainmentStatus, decide_containment
from repro.core.containment_inequality import build_containment_inequality
from repro.core.convex_certificate import find_convex_certificate
from repro.core.reduction import reduce_max_iip_to_containment, uniformize
from repro.cq.decompositions import has_simple_junction_tree, is_acyclic, junction_tree
from repro.cq.homomorphism import count_query_homomorphisms
from repro.infotheory.expressions import LinearExpression, MaxInformationInequality
from repro.infotheory.maxiip import decide_max_ii
from repro.infotheory.normalization import normal_lower_bound
from repro.infotheory.shannon import ShannonProver
from repro.workloads.generators import (
    path_query,
    random_chordal_simple_query,
    random_database,
    random_max_ii,
    random_query,
    star_query,
)


class TestTheorem42Soundness:
    """Theorem 4.2: a Γn-valid Eq. (8) inequality implies containment on real databases."""

    @pytest.mark.parametrize("seed", range(6))
    def test_contained_verdicts_hold_on_random_databases(self, seed):
        q1 = random_query(3, 4, seed=seed)
        q2 = path_query(2)
        result = decide_containment(q1, q2)
        if result.status != ContainmentStatus.CONTAINED:
            pytest.skip("pair not contained; covered by the refutation tests")
        for db_seed in range(4):
            database = random_database(
                {"R": 2, "S": 2}, domain_size=3, tuples_per_relation=4, seed=db_seed
            )
            assert count_query_homomorphisms(q1, database) <= count_query_homomorphisms(
                q2, database
            )


class TestTheorem31Completeness:
    """Theorem 3.1: the decision procedure agrees with brute-force ground truth."""

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_with_small_database_enumeration(self, seed):
        q1 = random_query(3, 3, relations=(("R", 2),), seed=seed)
        q2 = random_chordal_simple_query(2, clique_size=2, seed=seed)
        assert has_simple_junction_tree(q2)
        result = decide_containment(q1, q2)
        assert result.status in (
            ContainmentStatus.CONTAINED,
            ContainmentStatus.NOT_CONTAINED,
        )
        if result.status == ContainmentStatus.NOT_CONTAINED:
            assert result.witness is not None
            assert result.witness.hom_q1 > result.witness.hom_q2
        else:
            assert containment_holds_on_small_databases(
                q1, q2, domain_size=2, max_tuples_per_relation=2
            )

    def test_star_into_path(self):
        # Stars and paths are both in the decidable fragment.
        result = decide_containment(star_query(3), path_query(1))
        assert result.status in (
            ContainmentStatus.CONTAINED,
            ContainmentStatus.NOT_CONTAINED,
        )
        assert result.method == "theorem-3.1"


class TestTheorem36EssentiallyShannon:
    """Theorem 3.6: simple containment inequalities agree over Γn and Nn."""

    @pytest.mark.parametrize("seed", range(4))
    def test_gamma_normal_agreement_on_simple_inequalities(self, seed):
        q1 = random_query(3, 4, relations=(("R", 2),), seed=seed)
        q2 = random_chordal_simple_query(2, clique_size=2, seed=seed + 100)
        inequality = build_containment_inequality(q1, q2, [junction_tree(q2)])
        if inequality.is_trivially_false:
            pytest.skip("no homomorphism; nothing to compare")
        assert inequality.all_branches_simple
        max_ii = inequality.as_max_ii()
        gamma = decide_max_ii(max_ii, over="gamma", ground=inequality.ground).valid
        normal = decide_max_ii(max_ii, over="normal", ground=inequality.ground).valid
        assert gamma == normal

    def test_normalization_preserves_simple_branch_values(self):
        # The engine of Theorem 3.6(ii): for every polymatroid h, the normal
        # lower bound h' has E(h') <= E(h) for simple conditional expressions
        # while h'(V) = h(V).
        from repro.infotheory.functions import uniform_function

        ground = ("A", "B", "C", "D")
        h = uniform_function(ground, rank=2)
        h_prime = normal_lower_bound(h)
        expression = LinearExpression.entropy_term(
            ground, {"A", "B"}
        ) + LinearExpression.conditional_term(ground, {"C"}, {"A"})
        assert expression.evaluate(h_prime) <= expression.evaluate(h) + 1e-9
        assert h_prime.total() == pytest.approx(h.total())


class TestTheorem51Reduction:
    """Theorem 5.1: the reduction preserves Γn-validity through the query pair."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reduction_on_random_inequalities(self, seed):
        inequality = random_max_ii(2, 1, terms_per_branch=2, seed=seed)
        uniform = uniformize(inequality)
        original = decide_max_ii(inequality, over="gamma").valid
        lifted = decide_max_ii(uniform.as_max_ii(), over="gamma").valid
        assert original == lifted

    def test_reduction_output_is_bagcqc_a_instance(self):
        inequality = random_max_ii(2, 2, terms_per_branch=2, seed=5)
        result = reduce_max_iip_to_containment(inequality)
        assert is_acyclic(result.q2)
        assert result.q1.is_boolean and result.q2.is_boolean


class TestTheorem61:
    """Theorem 6.1: convex certificates exist exactly for Γn-valid Max-IIs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_certificate_existence_matches_validity(self, seed):
        inequality = random_max_ii(3, 2, terms_per_branch=2, seed=seed)
        valid = decide_max_ii(inequality, over="gamma").valid
        certificate = find_convex_certificate(
            list(inequality.branches), ground=inequality.ground
        )
        assert (certificate is not None) == valid
        if certificate is not None:
            prover = ShannonProver(tuple(inequality.ground))
            assert certificate.verify(list(inequality.branches), prover)
