"""Integration tests replaying every worked example of the paper end to end."""

import pytest

from repro.core.containment import ContainmentStatus, decide_containment
from repro.core.containment_inequality import build_containment_inequality
from repro.core.witness import witness_from_relation
from repro.cq.decompositions import (
    has_simple_junction_tree,
    is_acyclic,
    is_chordal,
    junction_tree,
)
from repro.cq.homomorphism import (
    count_query_homomorphisms,
    query_to_query_homomorphisms,
)
from repro.cq.projection import induced_database
from repro.cq.reductions import to_boolean_pair
from repro.infotheory.imeasure import is_normal_function
from repro.infotheory.maxiip import decide_max_ii
from repro.infotheory.polymatroid import is_polymatroid
from repro.workloads.paper_examples import (
    chaudhuri_vardi_example,
    example_3_5,
    example_3_5_normal_witness,
    example_3_8_inequality,
    example_e2_queries,
    parity_example,
    vee_example,
)


class TestExample43Vee:
    """Example 4.3: the triangle is bag-contained in the length-2 path."""

    def test_query_shapes(self):
        pair = vee_example()
        assert not is_acyclic(pair.q1) and is_chordal(pair.q1)
        assert is_acyclic(pair.q2) and has_simple_junction_tree(pair.q2)

    def test_three_homomorphisms(self):
        pair = vee_example()
        assert len(query_to_query_homomorphisms(pair.q2, pair.q1)) == 3

    def test_containment_verdict_matches_paper(self):
        pair = vee_example()
        result = decide_containment(pair.q1, pair.q2)
        assert result.status == ContainmentStatus.CONTAINED

    def test_counts_on_concrete_databases(self):
        from repro.workloads.generators import random_database

        pair = vee_example()
        for seed in range(5):
            database = random_database({"R": 2}, domain_size=3, tuples_per_relation=5, seed=seed)
            assert count_query_homomorphisms(pair.q1, database) <= count_query_homomorphisms(
                pair.q2, database
            )


class TestExample38:
    """Example 3.8: the 3-branch max-inequality is essentially Shannon."""

    def test_valid_over_all_polyhedral_cones(self):
        inequality = example_3_8_inequality()
        for cone in ("gamma", "normal", "modular"):
            assert decide_max_ii(inequality, over=cone).valid

    def test_matches_vee_containment_inequality(self):
        pair = vee_example()
        built = build_containment_inequality(pair.q1, pair.q2)
        assert len(built.branches) == 3
        assert built.all_branches_simple
        # Each branch has the shape h(XiXj) + h(Xj|Xi).
        for branch in built.branch_expressions():
            positive = [c for c in branch.coefficients.values() if c > 0]
            negative = [c for c in branch.coefficients.values() if c < 0]
            assert sum(positive) == pytest.approx(2.0)
            assert sum(negative) == pytest.approx(-1.0)


class TestExample35:
    """Example 3.5: normal witness exists, product witness does not."""

    def test_q2_shape(self):
        pair = example_3_5()
        assert is_acyclic(pair.q2)
        assert has_simple_junction_tree(pair.q2)
        tree = junction_tree(pair.q2)
        assert len(tree.bags) == 3

    def test_paper_witness_verifies(self):
        pair = example_3_5()
        for n in (2, 3):
            relation = example_3_5_normal_witness(n)
            database = induced_database(pair.q1, relation)
            assert count_query_homomorphisms(pair.q1, database) >= n * n
            assert count_query_homomorphisms(pair.q2, database) == n
            witness = witness_from_relation(pair.q1, pair.q2, relation)
            assert witness is not None

    def test_decision_procedure_refutes(self):
        pair = example_3_5()
        result = decide_containment(pair.q1, pair.q2)
        assert result.status == ContainmentStatus.NOT_CONTAINED
        assert result.witness is not None

    def test_no_small_product_witness(self):
        from repro.core.brute_force import search_product_witness

        pair = example_3_5()
        assert search_product_witness(pair.q1, pair.q2, max_column_size=3) is None


class TestExampleA2:
    """Example A.2: the Boolean reduction on the Chaudhuri–Vardi queries."""

    def test_reduction_and_verdict(self):
        q1, q2 = chaudhuri_vardi_example()
        b1, b2 = to_boolean_pair(q1, q2)
        assert b1.is_boolean and b2.is_boolean
        result = decide_containment(q1, q2)
        # Q2 merges the two S-atoms onto a single y, so it has at least as
        # many homomorphisms as Q1 on every database: containment holds.
        assert result.status == ContainmentStatus.CONTAINED


class TestParityExamples:
    """Examples B.4 / E.2: the parity function and its limits."""

    def test_parity_entropic_but_not_normal(self):
        parity = parity_example()
        assert is_polymatroid(parity)
        assert not is_normal_function(parity)

    def test_example_e2_containment_holds(self):
        pair = example_e2_queries()
        result = decide_containment(pair.q1, pair.q2)
        assert result.status == ContainmentStatus.CONTAINED
