"""Integration tests tying the bag relational-algebra engine to the core results.

The RA engine is an independent implementation of bag-set semantics; these
tests make it confirm the core machinery's claims end to end:

* witness databases produced by ``decide_containment`` really violate
  containment when re-counted through compiled plans;
* the paper's Example 3.5 hand witness and Example 4.3 verdicts re-verify
  through the plan pipeline;
* Yannakakis set evaluation agrees with the homomorphism evaluator on the
  acyclic containing queries used by the decision procedure.
"""

import pytest

from repro.core.containment import ContainmentStatus, decide_containment
from repro.cq.decompositions import is_acyclic
from repro.cq.evaluation import evaluate_bag, evaluate_set
from repro.cq.projection import induced_database
from repro.ra.compile import (
    evaluate_query_bag,
    evaluate_query_set,
    yannakakis_set_evaluation,
)
from repro.ra.sql import to_sql
from repro.workloads.generators import cycle_query, path_query, star_query
from repro.workloads.graph_families import random_graph_database
from repro.workloads.paper_examples import (
    example_3_5,
    example_3_5_normal_witness,
    vee_example,
)


def total(answer) -> int:
    return sum(answer.values())


def test_example_3_5_witness_recounted_through_plans():
    pair = example_3_5()
    result = decide_containment(pair.q1, pair.q2)
    assert result.status == ContainmentStatus.NOT_CONTAINED
    witness_db = result.witness.database
    q1_counts = evaluate_query_bag(pair.q1, witness_db)
    q2_counts = evaluate_query_bag(pair.q2, witness_db)
    assert total(q1_counts) > total(q2_counts)
    # And the two evaluators agree exactly.
    assert q1_counts == evaluate_bag(pair.q1, witness_db)
    assert q2_counts == evaluate_bag(pair.q2, witness_db)


def test_example_3_5_hand_witness_through_plans():
    pair = example_3_5()
    relation = example_3_5_normal_witness(n=3)
    database = induced_database(pair.q1, relation)
    q1_total = total(evaluate_query_bag(pair.q1, database))
    q2_total = total(evaluate_query_bag(pair.q2, database))
    assert q1_total == 9 ** 2 or q1_total >= len(relation.rows)
    assert q1_total > q2_total


def test_vee_example_verdict_consistent_with_plan_counts():
    pair = vee_example()
    result = decide_containment(pair.q1, pair.q2)
    assert result.status == ContainmentStatus.CONTAINED
    for seed in range(3):
        database = random_graph_database(5, 0.4, seed=seed)
        q1_total = total(evaluate_query_bag(pair.q1, database))
        q2_total = total(evaluate_query_bag(pair.q2, database))
        assert q1_total <= q2_total


@pytest.mark.parametrize(
    "query_factory",
    [lambda: path_query(2), lambda: path_query(3), lambda: star_query(3)],
    ids=["path2", "path3", "star3"],
)
def test_yannakakis_agrees_on_acyclic_containing_queries(query_factory):
    query = query_factory()
    assert is_acyclic(query)
    database = random_graph_database(6, 0.35, seed=13)
    assert yannakakis_set_evaluation(query, database) == evaluate_set(query, database)
    assert evaluate_query_set(query, database) == evaluate_set(query, database)


def test_cyclic_query_counts_still_agree_between_evaluators():
    triangle = cycle_query(3)
    database = random_graph_database(6, 0.4, seed=21)
    assert evaluate_query_bag(triangle, database) == evaluate_bag(triangle, database)


def test_sql_rendering_of_paper_queries_is_well_formed():
    pair = example_3_5()
    for query in (pair.q1, pair.q2):
        sql = to_sql(query)
        assert sql.count("JOIN") == 0  # joins are expressed via WHERE equalities
        assert sql.endswith(";")
        assert "COUNT(*)" in sql
