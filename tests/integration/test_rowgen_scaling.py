"""Large-arity row-generation cases (the `slow` tier).

At ``n = 10`` the dense elemental matrix (11 530 rows) is still buildable,
so the two paths can be cross-checked directly; at ``n = 12`` (67 596 rows)
the dense path is outside the tier-1 budget and row generation is checked
against analytically known verdicts instead.  These cases run in the
separate non-blocking CI job (``pytest -m slow``).
"""

from __future__ import annotations

import pytest

from repro.infotheory.cones import cone_by_name
from repro.infotheory.expressions import LinearExpression
from repro.infotheory.polymatroid import is_polymatroid
from repro.infotheory.shannon import ShannonProver

pytestmark = pytest.mark.slow


def ground_of(n):
    return tuple(f"X{i}" for i in range(1, n + 1))


def han_inequality(ground):
    """Σ_i h(V \\ i) - (n-1)·h(V) ≥ 0 — Shannon-valid at every n."""
    full = frozenset(ground)
    return LinearExpression(
        ground=ground,
        coefficients={
            **{full - {v}: 1.0 for v in ground},
            full: -(len(ground) - 1),
        },
    )


def invalid_inequality(ground):
    """h(1) + h(2) - 1.5·h(12) ≥ 0 fails on modular points at every n."""
    return LinearExpression(
        ground=ground,
        coefficients={
            frozenset({ground[0]}): 1.0,
            frozenset({ground[1]}): 1.0,
            frozenset({ground[0], ground[1]}): -1.5,
        },
    )


@pytest.mark.parametrize("n", [10])
def test_n10_rowgen_matches_dense(n):
    ground = ground_of(n)
    prover = ShannonProver(ground)
    for expression in (han_inequality(ground), invalid_inequality(ground)):
        dense = prover.is_valid(expression, method="dense")
        lazy = prover.is_valid(expression, method="rowgen")
        assert dense == lazy


@pytest.mark.parametrize("n", [12])
def test_n12_rowgen_decides_known_valid_inequality(n):
    # The invalid direction at n = 12 is covered by the feasibility test
    # below (the violating point search), so only the valid verdict — the
    # one that needs the full lower-bound early stop — runs here.
    ground = ground_of(n)
    prover = ShannonProver(ground)
    assert prover.is_valid(han_inequality(ground), method="rowgen")


@pytest.mark.parametrize("n", [12])
def test_n12_cone_feasibility_returns_verified_point(n):
    ground = ground_of(n)
    cone = cone_by_name("gamma", ground)
    bad = invalid_inequality(ground)
    point = cone.find_point_below([bad], method="rowgen")
    assert point is not None
    assert is_polymatroid(point.function, tolerance=1e-6)
    assert bad.evaluate(point.function) <= -1.0 + 1e-6
    good = han_inequality(ground)
    assert cone.find_point_below([good], method="rowgen") is None


@pytest.mark.parametrize("n", [12])
def test_n12_certificate_from_active_rows_verifies(n):
    ground = ground_of(n)
    prover = ShannonProver(ground)
    certificate = prover.certificate(han_inequality(ground), method="rowgen")
    assert certificate is not None
    assert certificate.verify(han_inequality(ground), tolerance=1e-5)
    # The proof touches a vanishing fraction of the 67 596 elemental rows.
    assert len(certificate) < 1000
