"""End-to-end daemon lifecycle: a real child process, the real CLI.

This is the in-repo version of the ``daemon-smoke`` CI job: spawn a
detached daemon with ``repro daemon start``, replay a workload through
``repro batch --daemon`` twice, assert the second replay is answered
entirely from the plan cache with zero new LP solves, and shut the daemon
down cleanly.
"""

import io
import json
import os
import signal

import pytest

from repro.cli import main
from repro.service.daemon import DaemonUnavailable, daemon_available, spawn_daemon


def run_cli(*argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


PAIRS_TEXT = (
    "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
    "R(u,v), R(v,w), R(w,u) | R(s,t), R(s,p)\n"
    "R(a,b) | S(c,d)\n"
)


@pytest.fixture
def spawned_daemon(tmp_path):
    socket_path = str(tmp_path / "e2e.sock")
    log_path = str(tmp_path / "daemon.log")
    pid = spawn_daemon(socket_path, extra_args=["--jobs", "2"], log_path=log_path)
    yield socket_path, pid, log_path
    if daemon_available(socket_path, timeout=1.0):
        try:
            run_cli("daemon", "stop", "--socket", socket_path)
        except DaemonUnavailable:
            pass
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        pass


def test_spawn_replay_twice_and_stop(spawned_daemon, tmp_path, capsys):
    socket_path, pid, log_path = spawned_daemon
    pairs = tmp_path / "pairs.txt"
    pairs.write_text(PAIRS_TEXT)

    code, output = run_cli(
        "batch", str(pairs), "--daemon", socket_path, "--daemon-only", "--stats"
    )
    assert code == 0, output
    first_records = [json.loads(line) for line in output.splitlines()]
    first_stats = json.loads(capsys.readouterr().err.splitlines()[-1])["stats"]
    assert [r["status"] for r in first_records] == [
        "contained",
        "contained",
        "not_contained",
    ]

    code, output = run_cli(
        "batch", str(pairs), "--daemon", socket_path, "--daemon-only", "--stats"
    )
    assert code == 0, output
    second_records = [json.loads(line) for line in output.splitlines()]
    second_stats = json.loads(capsys.readouterr().err.splitlines()[-1])["stats"]

    # Every pair of the replay is answered from the warm plan cache …
    assert all(r["source"] == "plan-cache" for r in second_records)
    assert second_stats["cache_hits"] - first_stats["cache_hits"] == len(second_records)
    # … with zero new pipelines and zero new LP solves.
    assert second_stats["pipelines_run"] == first_stats["pipelines_run"]
    assert second_stats["block_solves"] == first_stats["block_solves"]
    assert second_stats["scalar_solves"] == first_stats["scalar_solves"]

    code, _ = run_cli("daemon", "stop", "--socket", socket_path)
    assert code == 0
    assert not daemon_available(socket_path, timeout=1.0)
    assert not os.path.exists(socket_path)


def test_start_refuses_a_second_daemon_on_the_same_socket(spawned_daemon):
    socket_path, _, _ = spawned_daemon
    with pytest.raises(DaemonUnavailable):
        spawn_daemon(socket_path)


def test_restart_over_stale_socket_after_sigkill(spawned_daemon, tmp_path):
    socket_path, pid, _ = spawned_daemon
    # SIGKILL skips the daemon's cleanup: the socket file stays behind.
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)
    assert os.path.exists(socket_path)
    assert not daemon_available(socket_path, timeout=1.0)

    # A fresh start must clear the dead socket and bind cleanly.
    new_pid = spawn_daemon(
        socket_path,
        extra_args=["--jobs", "2"],
        log_path=str(tmp_path / "restart.log"),
    )
    try:
        assert daemon_available(socket_path, timeout=1.0)
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch", str(pairs), "--daemon", socket_path, "--daemon-only"
        )
        assert code == 0, output
    finally:
        try:
            os.kill(new_pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass


def test_refuses_to_replace_a_regular_file(tmp_path):
    from repro.service.daemon import _clear_stale_socket
    from repro.service.protocol import parse_address

    decoy = tmp_path / "not-a-socket"
    decoy.write_text("precious data\n")
    with pytest.raises(DaemonUnavailable, match="not a socket"):
        _clear_stale_socket(parse_address(str(decoy)))
    # The file survives untouched.
    assert decoy.read_text() == "precious data\n"


def test_restarted_daemon_replays_from_store(tmp_path, capsys):
    socket_path = str(tmp_path / "store.sock")
    store_path = str(tmp_path / "verdicts.sqlite")
    pairs = tmp_path / "pairs.txt"
    pairs.write_text(PAIRS_TEXT)

    def start():
        return spawn_daemon(
            socket_path,
            extra_args=["--jobs", "2", "--store", store_path],
            log_path=str(tmp_path / "daemon-store.log"),
        )

    pid = start()
    try:
        code, _ = run_cli(
            "batch", str(pairs), "--daemon", socket_path, "--daemon-only"
        )
        assert code == 0
        code, _ = run_cli("daemon", "stop", "--socket", socket_path)
        assert code == 0
    finally:
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    # Restart: the store warms the new process, so the replay makes zero
    # new LP solves.
    pid = start()
    try:
        code, output = run_cli(
            "batch", str(pairs), "--daemon", socket_path, "--daemon-only", "--stats"
        )
        assert code == 0, output
        records = [json.loads(line) for line in output.splitlines()]
        stats = json.loads(capsys.readouterr().err.splitlines()[-1])["stats"]
        assert all(
            r["source"] in ("store", "plan-cache", "batch-dedup") for r in records
        )
        assert stats["store_hits"] > 0
        assert stats["pipelines_run"] == 0
        assert stats["block_solves"] == 0 and stats["scalar_solves"] == 0

        code, output = run_cli("daemon", "status", "--socket", socket_path)
        assert code == 0
        status = json.loads(output)
        assert status["store"]["path"] == store_path
        assert status["store"]["entries"] > 0

        code, _ = run_cli("daemon", "stop", "--socket", socket_path)
        assert code == 0
    finally:
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
