"""CLI tests for the observability surface: --trace, --stats-json, summarize."""

import io
import json
import sys

import pytest

from repro.cli import main
from repro.obs.tracer import active_tracer, read_spans_jsonl

PAIR_LINES = (
    "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
    "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
    "R(x,y), R(y,z) | R(a,b), R(a,c), R(c,d)\n"
)


@pytest.fixture
def pairs_file(tmp_path):
    path = tmp_path / "pairs.txt"
    path.write_text(PAIR_LINES)
    return path


def run_cli(*argv):
    out = io.StringIO()
    stderr, sys.stderr = sys.stderr, io.StringIO()
    try:
        code = main(list(argv), out=out)
        captured = sys.stderr.getvalue()
    finally:
        sys.stderr = stderr
    return code, out.getvalue(), captured


def test_batch_trace_exports_a_wellformed_jsonl(tmp_path, pairs_file):
    trace_file = tmp_path / "spans.jsonl"
    code, output, captured = run_cli("batch", str(pairs_file), "--trace", str(trace_file))
    assert code == 0
    assert f"wrote" in captured and str(trace_file) in captured
    assert active_tracer() is None  # the CLI must always deactivate
    records = read_spans_jsonl(str(trace_file))
    names = {record.name for record in records}
    assert {"batch", "pair", "canonicalize", "plan-cache"} <= names
    ids = {record.span_id for record in records}
    for record in records:
        assert record.parent_id is None or record.parent_id in ids


def test_batch_stats_json_and_group_table(tmp_path, pairs_file):
    stats_file = tmp_path / "stats.json"
    code, output, captured = run_cli(
        "batch", str(pairs_file), "--stats", "--stats-json", str(stats_file)
    )
    assert code == 0
    stats = json.loads(stats_file.read_text())
    assert stats["pairs_submitted"] == 3
    assert stats["batch_duplicates"] == 1
    assert "groups" in stats
    # --stats prints the JSON line plus the per-arity table on stderr.
    assert '"stats"' in captured
    if stats["groups"]:
        assert "group" in captured and "chunks" in captured


def test_trace_summarize_renders_text_and_json(tmp_path, pairs_file):
    trace_file = tmp_path / "spans.jsonl"
    code, _, _ = run_cli("batch", str(pairs_file), "--trace", str(trace_file))
    assert code == 0

    code, output, _ = run_cli("trace", "summarize", str(trace_file))
    assert code == 0
    assert "critical path:" in output
    assert "pair" in output

    code, output, _ = run_cli("trace", "summarize", str(trace_file), "--json")
    assert code == 0
    summary = json.loads(output)
    assert summary["spans"] == len(read_spans_jsonl(str(trace_file)))
    assert summary["critical_path"][0]["name"] == "request"
