"""Unit tests for the entropy-based dependency analysis (Lee's theorems)."""

import pytest

from repro.analysis.dependencies import (
    FunctionalDependency,
    MultivaluedDependency,
    decomposition_gap,
    discover_functional_dependencies,
    discover_multivalued_dependencies,
    functional_dependency_holds,
    is_lossless_decomposition,
    key_attributes,
    multivalued_dependency_holds,
    suggest_binary_decompositions,
)
from repro.analysis.profile import profile_relation
from repro.cq.structures import Relation
from repro.exceptions import StructureError


@pytest.fixture
def employee_relation():
    """employee → department, department → building (a classic FD chain)."""
    rows = [
        ("alice", "sales", "hq"),
        ("bob", "sales", "hq"),
        ("carol", "research", "lab"),
        ("dave", "research", "lab"),
    ]
    return Relation(attributes=("employee", "department", "building"), rows=set(rows))


@pytest.fixture
def course_relation():
    """course ↠ teacher and course ↠ book independently (the classic MVD example)."""
    rows = [
        ("db", t, b)
        for t in ("ann", "bea")
        for b in ("ramakrishnan", "ullman")
    ] + [("os", "cid", "tanenbaum")]
    return Relation(attributes=("course", "teacher", "book"), rows=set(rows))


@pytest.fixture
def product_relation():
    return Relation.product_relation({"x": [1, 2], "y": ["a", "b", "c"]})


# ---------------------------------------------------------------------- #
# Functional dependencies
# ---------------------------------------------------------------------- #
def test_fd_holds_via_entropy(employee_relation):
    assert functional_dependency_holds(employee_relation, ["employee"], "department")
    assert functional_dependency_holds(employee_relation, ["department"], "building")
    assert not functional_dependency_holds(employee_relation, ["building"], "employee")


def test_discovered_fds_are_minimal(employee_relation):
    fds = discover_functional_dependencies(employee_relation)
    as_pairs = {(tuple(sorted(fd.determinant)), fd.dependent) for fd in fds}
    assert (("employee",), "department") in as_pairs
    assert (("department",), "building") in as_pairs
    # employee → building also holds and {employee} is minimal for it (the
    # empty set does not determine the building), so it is reported too.
    assert (("employee",), "building") in as_pairs
    # Minimality: no reported determinant strictly contains another reported
    # determinant for the same dependent attribute.
    for fd in fds:
        for other in fds:
            if fd is not other and fd.dependent == other.dependent:
                assert not other.determinant < fd.determinant
    # No FD with a determinant containing the dependent.
    assert all(fd.dependent not in fd.determinant for fd in fds)


def test_fd_discovery_respects_max_size(employee_relation):
    fds = discover_functional_dependencies(employee_relation, max_determinant_size=0)
    assert fds == []


def test_no_fds_in_product_relation(product_relation):
    assert discover_functional_dependencies(product_relation) == []


def test_constant_column_gives_empty_determinant():
    relation = Relation(attributes=("a", "b"), rows={(1, "x"), (2, "x")})
    fds = discover_functional_dependencies(relation)
    assert FunctionalDependency(determinant=frozenset(), dependent="b") in fds


def test_fd_str_rendering():
    fd = FunctionalDependency(determinant=frozenset({"a", "b"}), dependent="c")
    assert "->" in str(fd) and "c" in str(fd)


def test_keys(employee_relation, product_relation):
    keys = key_attributes(employee_relation)
    assert frozenset({"employee"}) in keys
    # In a product relation only the full attribute set is a key.
    assert key_attributes(product_relation) == [frozenset({"x", "y"})]


# ---------------------------------------------------------------------- #
# Multivalued dependencies
# ---------------------------------------------------------------------- #
def test_mvd_holds_in_course_relation(course_relation):
    assert multivalued_dependency_holds(course_relation, ["course"], ["teacher"])
    assert multivalued_dependency_holds(course_relation, ["course"], ["book"])


def test_mvd_discovery_reports_course_split(course_relation):
    mvds = discover_multivalued_dependencies(course_relation)
    splits = {(tuple(sorted(m.determinant)), tuple(sorted(m.dependents))) for m in mvds}
    assert (("course",), ("teacher",)) in splits or (("course",), ("book",)) in splits


def test_mvd_trivial_cases_hold(course_relation):
    # Empty dependents or dependents covering everything else are trivially true.
    assert multivalued_dependency_holds(course_relation, ["course"], [])
    assert multivalued_dependency_holds(
        course_relation, ["course"], ["teacher", "book"]
    )


def test_mvd_str_rendering():
    mvd = MultivaluedDependency(determinant=frozenset({"x"}), dependents=frozenset({"y"}))
    assert "->>" in str(mvd)


def test_product_relation_has_unconditional_mvd(product_relation):
    assert multivalued_dependency_holds(product_relation, [], ["x"])


# ---------------------------------------------------------------------- #
# Lossless decompositions
# ---------------------------------------------------------------------- #
def test_lossless_decomposition_of_fd_chain(employee_relation):
    bags = [("employee", "department"), ("department", "building")]
    assert is_lossless_decomposition(employee_relation, bags)
    assert decomposition_gap(employee_relation, bags) == pytest.approx(0.0, abs=1e-9)


def test_lossy_decomposition_detected():
    # One teacher teaching two courses with different books: joining the
    # (course, teacher) and (teacher, book) projections creates spurious
    # course/book combinations, and the entropy gap detects it.
    relation = Relation(
        attributes=("course", "teacher", "book"),
        rows={("db", "ann", "ramakrishnan"), ("ml", "ann", "bishop")},
    )
    bags = [("course", "teacher"), ("teacher", "book")]
    assert not is_lossless_decomposition(relation, bags)
    assert decomposition_gap(relation, bags) == pytest.approx(1.0)


def test_decomposition_must_cover_attributes(employee_relation):
    with pytest.raises(StructureError):
        decomposition_gap(employee_relation, [("employee", "department")])
    with pytest.raises(StructureError):
        decomposition_gap(employee_relation, [])


def test_suggest_binary_decompositions(employee_relation, product_relation):
    suggestions = suggest_binary_decompositions(employee_relation)
    assert (
        frozenset({"employee", "department"}),
        frozenset({"department", "building"}),
    ) in suggestions or (
        frozenset({"department", "building"}),
        frozenset({"employee", "department"}),
    ) in suggestions
    # A product relation splits along its independent attributes.
    product_suggestions = suggest_binary_decompositions(product_relation)
    assert (frozenset({"x"}), frozenset({"y"})) in product_suggestions or (
        frozenset({"y"}),
        frozenset({"x"}),
    ) in product_suggestions


# ---------------------------------------------------------------------- #
# Profiles
# ---------------------------------------------------------------------- #
def test_profile_relation_reports_consistent_statistics(employee_relation):
    profile = profile_relation(employee_relation)
    assert profile.row_count == 4
    assert profile.total_entropy == pytest.approx(2.0)
    assert profile.distinct_per_attribute["department"] == 2
    assert frozenset({"employee"}) in profile.keys
    assert profile.modular_gap >= 0
    text = str(profile)
    assert "functional deps" in text and "rows" in text


def test_profile_of_product_relation_is_independent(product_relation):
    profile = profile_relation(product_relation)
    assert profile.modular_gap == pytest.approx(0.0, abs=1e-9)
    assert profile.is_totally_uniform
    assert profile.entropy_is_normal


def test_profile_rejects_empty_relation():
    with pytest.raises(StructureError):
        profile_relation(Relation(attributes=("a",), rows=set()))


def test_dependency_helpers_reject_bad_inputs():
    with pytest.raises(StructureError):
        functional_dependency_holds("not a relation", ["a"], "b")
    with pytest.raises(StructureError):
        discover_functional_dependencies(Relation(attributes=("a",), rows=set()))
