"""Unit tests for structures, relations and canonical structures."""

import pytest

from repro.cq.parser import parse_query
from repro.cq.structures import Relation, Structure, canonical_structure
from repro.exceptions import StructureError


def test_structure_from_facts_active_domain():
    database = Structure.from_facts([("R", (0, 1)), ("S", (1, 2))])
    assert database.domain == frozenset({0, 1, 2})
    assert database.tuples("R") == frozenset({(0, 1)})
    assert database.arity("S") == 2
    assert database.total_tuples() == 2


def test_structure_rejects_mixed_arity():
    with pytest.raises(StructureError):
        Structure(domain={0, 1}, relations={"R": {(0,), (0, 1)}})


def test_structure_rejects_out_of_domain_values():
    with pytest.raises(StructureError):
        Structure(domain={0}, relations={"R": {(0, 1)}})


def test_structure_disjoint_union_counts():
    left = Structure.from_facts([("R", (0, 1))])
    right = Structure.from_facts([("R", (0, 1)), ("R", (1, 0))])
    union = left.disjoint_union(right)
    assert len(union.domain) == 4
    assert len(union.tuples("R")) == 3


def test_structure_product_multiplies_relations():
    left = Structure.from_facts([("R", (0, 1))])
    right = Structure.from_facts([("R", ("a", "b")), ("R", ("b", "a"))])
    product = left.product(right)
    assert len(product.tuples("R")) == 2
    assert ((0, "a"), (1, "b")) in product.tuples("R")


def test_structure_rename_must_be_injective():
    database = Structure.from_facts([("R", (0, 1))])
    with pytest.raises(StructureError):
        database.rename_domain({0: "x", 1: "x"})


def test_canonical_structure(triangle_query):
    structure = canonical_structure(triangle_query)
    assert structure.domain == frozenset({"X1", "X2", "X3"})
    assert ("X1", "X2") in structure.tuples("R")
    assert len(structure.tuples("R")) == 3


def test_canonical_structure_repeated_variables():
    query = parse_query("R(x, x, y)")
    structure = canonical_structure(query)
    assert ("x", "x", "y") in structure.tuples("R")


def test_relation_basics(diagonal_relation):
    assert len(diagonal_relation) == 4
    assert diagonal_relation.attribute_set == {"x1", "x2", "xp1", "xp2"}
    assert diagonal_relation.active_domain() == frozenset({0, 1})


def test_relation_attributes_must_be_distinct():
    with pytest.raises(StructureError):
        Relation(attributes=("a", "a"), rows={(1, 2)})


def test_relation_row_width_checked():
    with pytest.raises(StructureError):
        Relation(attributes=("a", "b"), rows={(1, 2, 3)})


def test_relation_project(diagonal_relation):
    projected = diagonal_relation.project(("x1", "xp1"))
    assert projected.rows == {(0, 0), (0, 1), (1, 0), (1, 1)}


def test_relation_product_relation():
    relation = Relation.product_relation({"a": [0, 1], "b": [0, 1, 2]})
    assert len(relation) == 6


def test_relation_step_relation():
    relation = Relation.step_relation(("a", "b", "c"), low_part=("c",))
    assert len(relation) == 2
    rows = sorted(relation.rows)
    assert (1, 1, 1) in relation.rows
    assert (2, 2, 1) in relation.rows
    assert len(rows) == 2


def test_relation_step_relation_unknown_attribute():
    with pytest.raises(StructureError):
        Relation.step_relation(("a", "b"), low_part=("z",))


def test_relation_natural_join():
    left = Relation(attributes=("a", "b"), rows={(1, 2), (3, 4)})
    right = Relation(attributes=("b", "c"), rows={(2, 5), (9, 9)})
    joined = left.natural_join(right)
    assert joined.attributes == ("a", "b", "c")
    assert joined.rows == {(1, 2, 5)}


def test_relation_semijoin():
    left = Relation(attributes=("a", "b"), rows={(1, 2), (3, 4)})
    right = Relation(attributes=("b",), rows={(2,)})
    assert left.semijoin(right).rows == {(1, 2)}


def test_relation_domain_product_sizes():
    left = Relation.step_relation(("a", "b"), low_part=("a",))
    right = Relation.step_relation(("a", "b"), low_part=("b",))
    product = left.domain_product(right)
    assert len(product) == 4


def test_relation_domain_product_requires_same_attributes():
    left = Relation(attributes=("a",), rows={(1,)})
    right = Relation(attributes=("b",), rows={(1,)})
    with pytest.raises(StructureError):
        left.domain_product(right)


def test_relation_total_uniformity(diagonal_relation):
    assert diagonal_relation.is_totally_uniform()
    skewed = Relation(attributes=("a", "b"), rows={(0, 0), (0, 1), (1, 0)})
    assert not skewed.is_totally_uniform()


def test_relation_select_and_rename():
    relation = Relation(attributes=("a", "b"), rows={(1, 2), (1, 3), (2, 2)})
    assert len(relation.select_equal("a", 1)) == 2
    renamed = relation.rename({"a": "x"})
    assert renamed.attributes == ("x", "b")
