"""Unit tests for the workload generators and paper-example constructors."""

import pytest

from repro.cq.decompositions import (
    has_simple_junction_tree,
    is_acyclic,
    is_chordal,
)
from repro.workloads.generators import (
    clique_query,
    cycle_query,
    mixed_containment_pairs,
    path_query,
    random_chordal_simple_query,
    random_database,
    random_max_ii,
    random_query,
    star_query,
    stream_containment_pairs,
)
from repro.workloads.paper_examples import (
    chaudhuri_vardi_example,
    example_3_5,
    example_3_8_inequality,
    example_5_2_inequality,
    example_e2_queries,
    parity_example,
    vee_example,
)


def test_path_query_shapes():
    for length in (1, 2, 4):
        query = path_query(length)
        assert len(query.atoms) == length
        assert is_acyclic(query)
        assert has_simple_junction_tree(query)
    with pytest.raises(ValueError):
        path_query(0)


def test_cycle_query_shapes():
    assert not is_acyclic(cycle_query(3))
    assert is_chordal(cycle_query(3))
    assert not is_chordal(cycle_query(4))
    with pytest.raises(ValueError):
        cycle_query(1)


def test_star_query_shapes():
    query = star_query(4)
    assert len(query.variables) == 5
    assert is_acyclic(query)
    with pytest.raises(ValueError):
        star_query(0)


def test_clique_query_shapes():
    query = clique_query(3)
    assert len(query.variables) == 3
    assert is_chordal(query)
    assert has_simple_junction_tree(query)  # a single bag has no separators
    with pytest.raises(ValueError):
        clique_query(1)


def test_random_query_is_deterministic_and_covers_variables():
    first = random_query(4, 5, seed=7)
    second = random_query(4, 5, seed=7)
    assert first.atoms == second.atoms
    assert len(first.variables) == 4


def test_random_chordal_simple_query_in_fragment():
    for seed in range(5):
        query = random_chordal_simple_query(3, clique_size=3, seed=seed)
        assert is_chordal(query)
        assert has_simple_junction_tree(query)
    with pytest.raises(ValueError):
        random_chordal_simple_query(0)


def test_random_database_shape():
    database = random_database({"R": 2, "S": 3}, domain_size=4, tuples_per_relation=5, seed=1)
    assert database.arity("R") == 2
    assert database.arity("S") == 3
    assert len(database.tuples("R")) <= 5
    assert database.domain == frozenset(range(4))


def test_random_max_ii_integer_coefficients():
    inequality = random_max_ii(3, 2, seed=3)
    assert len(inequality) == 2
    for branch in inequality.branches:
        for coefficient in branch.coefficients.values():
            assert float(coefficient).is_integer()


def test_paper_example_constructors():
    assert vee_example().contained
    assert not example_3_5().contained
    assert example_e2_queries().contained
    assert len(example_3_8_inequality().branches) == 3
    assert example_5_2_inequality().coefficients[frozenset({"X2"})] == 2.0
    q1, q2 = chaudhuri_vardi_example()
    assert q1.head == ("x", "z") and q2.head == ("x", "z")
    parity = parity_example()
    assert parity.total() == 2.0


def test_mixed_containment_pairs_deterministic_and_sized():
    first = mixed_containment_pairs(25, seed=4)
    second = mixed_containment_pairs(25, seed=4)
    assert len(first) == 25
    assert [(str(a), str(b)) for a, b in first] == [
        (str(a), str(b)) for a, b in second
    ]
    assert mixed_containment_pairs(0) == []


def test_mixed_containment_pairs_contain_duplicates_and_renames():
    pairs = mixed_containment_pairs(
        40, seed=8, duplicate_fraction=0.4, isomorphic_fraction=0.4
    )
    texts = [(str(a), str(b)) for a, b in pairs]
    assert len(set(texts)) < len(texts)  # exact repeats present
    assert any("__iso" in a for a, _ in texts)  # renamed copies present


def test_mixed_containment_pairs_heads_always_aligned():
    for q1, q2 in mixed_containment_pairs(40, seed=12):
        assert len(q1.head) == len(q2.head)


def test_stream_containment_pairs_is_deterministic():
    from itertools import islice

    first = list(islice(stream_containment_pairs(seed=9), 30))
    second = list(islice(stream_containment_pairs(seed=9), 30))
    assert [(str(a), str(b)) for a, b in first] == [
        (str(a), str(b)) for a, b in second
    ]


def test_stream_containment_pairs_salts_duplicates_from_recent_window():
    from itertools import islice

    pairs = list(
        islice(
            stream_containment_pairs(
                seed=6, duplicate_fraction=0.4, isomorphic_fraction=0.4
            ),
            60,
        )
    )
    texts = [(str(a), str(b)) for a, b in pairs]
    assert len(set(texts)) < len(texts)  # exact repeats present
    assert any("__iso" in a for a, _ in texts)  # renamed copies present
    for q1, q2 in pairs:
        assert len(q1.head) == len(q2.head)


def test_stream_containment_pairs_rejects_bad_window():
    with pytest.raises(ValueError):
        next(stream_containment_pairs(history_window=0))
