"""Unit tests for the copy-lemma strengthened prover."""

import pytest

from repro.exceptions import ExpressionError
from repro.infotheory.copy_lemma import (
    CopyLemmaProver,
    CopyStep,
    copy_steps,
    prove_with_copy_lemma,
    zhang_yeung_copy_step,
)
from repro.infotheory.expressions import InformationInequality, LinearExpression
from repro.infotheory.non_shannon import (
    is_shannon_provable,
    zhang_yeung_inequality,
)

GROUND = ("A", "B", "C", "D")


def test_copy_step_validation():
    with pytest.raises(ExpressionError):
        CopyStep(copied=(), over=("A",))
    with pytest.raises(ExpressionError):
        CopyStep(copied=("A",), over=("A", "B"))


def test_copy_steps_builder_assigns_unique_suffixes():
    steps = copy_steps((("C",), ("A",)), (("D",), ("B",)))
    assert steps[0].suffix != steps[1].suffix
    assert steps[0].copy_names() == ("C_cp1",)
    assert steps[1].copy_names() == ("D_cp2",)


def test_extended_ground_contains_copies_in_order():
    prover = CopyLemmaProver(GROUND, [zhang_yeung_copy_step(GROUND)])
    assert prover.extended_ground == GROUND + ("A_cp1",)


def test_unknown_variable_in_step_rejected():
    with pytest.raises(ExpressionError):
        CopyLemmaProver(GROUND, [CopyStep(copied=("E",), over=("A",))])


def test_copy_name_clash_rejected():
    step = CopyStep(copied=("A",), over=("C",), suffix="")  # copy name equals "A"
    with pytest.raises(ExpressionError):
        CopyLemmaProver(GROUND, [step])


def test_constraint_count_reports_lp_shape():
    prover = CopyLemmaProver(GROUND, [zhang_yeung_copy_step(GROUND)])
    counts = prover.constraint_count()
    assert counts["variables"] == 5
    assert counts["columns"] == 2 ** 5
    assert counts["copy_equalities"] > 0
    assert counts["elementals"] == 5 + 10 * 2 ** 3


def test_shannon_inequalities_remain_provable_with_copy_steps():
    # Submodularity I(A;B) >= 0 is Shannon; adding copy constraints can only help.
    expression = (
        LinearExpression.entropy_term(GROUND, {"A"})
        + LinearExpression.entropy_term(GROUND, {"B"})
        - LinearExpression.entropy_term(GROUND, {"A", "B"})
    )
    prover = CopyLemmaProver(GROUND, [zhang_yeung_copy_step(GROUND)])
    assert prover.is_valid(expression)


def test_invalid_inequality_stays_invalid():
    # -h(A) >= 0 is false for entropic functions; no copy step can prove it.
    expression = -1.0 * LinearExpression.entropy_term(GROUND, {"A"})
    prover = CopyLemmaProver(GROUND, [zhang_yeung_copy_step(GROUND)])
    assert not prover.is_valid(expression)


def test_zhang_yeung_not_shannon_but_copy_provable():
    zy = zhang_yeung_inequality(GROUND)
    assert not is_shannon_provable(zy)
    assert prove_with_copy_lemma(zy, [zhang_yeung_copy_step(GROUND)])


def test_zhang_yeung_not_proved_by_a_wrong_copy_step():
    # Copying D over (A, B) does not close the gap — the prover must not
    # over-claim validity.
    zy = zhang_yeung_inequality(GROUND)
    wrong = CopyStep(copied=("D",), over=("A", "B"), suffix="_cp1")
    assert not prove_with_copy_lemma(zy, [wrong])


def test_expression_outside_ground_rejected():
    prover = CopyLemmaProver(GROUND, [])
    stray = LinearExpression.entropy_term(("E",), {"E"})
    with pytest.raises(ExpressionError):
        prover.is_valid(stray)


def test_prover_without_steps_matches_shannon_prover():
    expression = (
        LinearExpression.entropy_term(GROUND, {"A", "B"})
        - LinearExpression.entropy_term(GROUND, {"A"})
    )
    prover = CopyLemmaProver(GROUND, [])
    assert prover.is_valid(expression)
    assert prover.is_valid_inequality(InformationInequality(expression))
    assert prover.constraint_count()["copy_equalities"] == 0


def test_minimum_returns_function_on_extended_ground():
    prover = CopyLemmaProver(GROUND, [zhang_yeung_copy_step(GROUND)])
    zy = zhang_yeung_inequality(GROUND)
    value, function = prover.minimum(zy.expression.with_ground(prover.extended_ground))
    assert value >= -1e-7
    assert function.ground_set == frozenset(prover.extended_ground)
