"""Unit tests for bag-set / set semantics evaluation."""

import pytest

from repro.cq.evaluation import (
    bag_contained_on,
    bag_multiplicity,
    enumerate_databases,
    evaluate_bag,
    evaluate_set,
    set_contained_on,
)
from repro.cq.parser import parse_query
from repro.cq.query import Vocabulary
from repro.cq.structures import Structure


@pytest.fixture
def head_query():
    return parse_query("(x) :- R(x, y)")


@pytest.fixture
def fan_database():
    return Structure.from_facts(
        [("R", (0, 1)), ("R", (0, 2)), ("R", (1, 2))]
    )


def test_evaluate_bag_groups_by_head(head_query, fan_database):
    answer = evaluate_bag(head_query, fan_database)
    assert answer == {(0,): 2, (1,): 1}


def test_evaluate_set(head_query, fan_database):
    assert evaluate_set(head_query, fan_database) == frozenset({(0,), (1,)})


def test_boolean_query_bag_answer(fan_database):
    query = parse_query("R(x, y), R(y, z)")
    answer = evaluate_bag(query, fan_database)
    # The only length-2 path in the fan database is 0 -> 1 -> 2.
    assert answer == {(): 1}


def test_bag_multiplicity(head_query, fan_database):
    assert bag_multiplicity(head_query, fan_database, (0,)) == 2
    assert bag_multiplicity(head_query, fan_database, (2,)) == 0


def test_bag_containment_on_single_database(fan_database):
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("(x) :- R(x, y), R(x, z)")
    # q2 counts pairs of out-edges, so q1(D) <= q2(D) pointwise here.
    assert bag_contained_on(q1, q2, fan_database)
    assert not bag_contained_on(q2, q1, fan_database)


def test_set_containment_on_single_database(fan_database):
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("(x) :- R(x, y), R(x, z)")
    assert set_contained_on(q1, q2, fan_database)
    assert set_contained_on(q2, q1, fan_database)


def test_containment_checks_require_same_head_arity(fan_database):
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("R(x, y)")
    with pytest.raises(ValueError):
        bag_contained_on(q1, q2, fan_database)
    with pytest.raises(ValueError):
        set_contained_on(q1, q2, fan_database)


def test_enumerate_databases_counts():
    vocabulary = Vocabulary({"R": 1})
    databases = list(enumerate_databases(vocabulary, domain_size=2))
    # Unary relation over a 2-element domain: 4 possible relations.
    assert len(databases) == 4
    sizes = sorted(len(db.tuples("R")) for db in databases)
    assert sizes == [0, 1, 1, 2]


def test_enumerate_databases_with_cap():
    vocabulary = Vocabulary({"R": 2})
    databases = list(
        enumerate_databases(vocabulary, domain_size=2, max_tuples_per_relation=1)
    )
    # Empty relation plus the four singleton relations.
    assert len(databases) == 5
