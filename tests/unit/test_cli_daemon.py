"""Unit tests for the CLI daemon surface (parsing, fallback, wire path).

The socket-backed cases serve the daemon from a background thread inside
this process — `repro daemon run` itself is exercised end to end (with a
real child process) by ``tests/integration/test_daemon_e2e.py``.
"""

import io
import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.service import BatchOptions
from repro.service.daemon import ShedOptions, serve
from repro.service.protocol import parse_address


def run_cli(*argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


PAIRS_TEXT = (
    "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
    "R(u,v), R(v,w), R(w,u) | R(s,t), R(s,p)\n"
)


@pytest.fixture
def live_daemon(tmp_path):
    socket_path = str(tmp_path / "cli-daemon.sock")
    ready = threading.Event()
    thread = threading.Thread(
        target=serve,
        args=(parse_address(socket_path),),
        kwargs={
            "options": BatchOptions(on_error="capture"),
            "shed": ShedOptions(),
            "ready_callback": lambda daemon: ready.set(),
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)
    yield socket_path
    code, _ = run_cli("daemon", "stop", "--socket", socket_path)
    assert code == 0
    thread.join(timeout=10)


class TestArgumentParsing:
    def test_daemon_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["daemon", "run", "--socket", "/tmp/x.sock", "--jobs", "4"],
            ["daemon", "start", "--max-queue-depth", "8", "--shed-policy", "degrade"],
            ["daemon", "stop"],
            ["daemon", "status", "--socket", "localhost:7411"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_warmup_flag_defaults_off(self):
        parser = build_parser()
        args = parser.parse_args(["daemon", "run"])
        assert args.warmup is False
        args = parser.parse_args(["daemon", "run", "--warmup"])
        assert args.warmup is True

    def test_batch_daemon_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["batch", "p.txt", "--daemon", "--deadline", "5", "--priority", "high"]
        )
        assert args.daemon == ""  # empty string = the default socket path
        assert args.deadline == 5.0
        assert args.priority == "high"
        args = parser.parse_args(["batch", "p.txt", "--daemon", "/tmp/x.sock"])
        assert args.daemon == "/tmp/x.sock"
        args = parser.parse_args(["batch", "p.txt"])
        assert args.daemon is None

    def test_worker_mode_flag(self):
        parser = build_parser()
        args = parser.parse_args(["batch", "p.txt", "--worker-mode", "process"])
        assert args.worker_mode == "process"
        with pytest.raises(SystemExit):
            parser.parse_args(["batch", "p.txt", "--worker-mode", "greenlet"])


class TestBatchViaDaemon:
    def test_batch_through_live_daemon(self, live_daemon, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch", str(pairs), "--daemon", live_daemon, "--daemon-only"
        )
        assert code == 0
        records = [json.loads(line) for line in output.splitlines()]
        assert [r["status"] for r in records] == ["contained", "contained"]
        assert records[1]["source"] == "batch-dedup"
        # Replay: the daemon's plan cache answers without new pipelines.
        code, output = run_cli(
            "batch", str(pairs), "--daemon", live_daemon, "--daemon-only"
        )
        assert code == 0
        records = [json.loads(line) for line in output.splitlines()]
        assert all(r["source"] == "plan-cache" for r in records)

    def test_daemon_status_command(self, live_daemon):
        code, output = run_cli("daemon", "status", "--socket", live_daemon)
        assert code == 0
        status = json.loads(output)
        assert status["queue_depth"] == 0
        assert "stats" in status and "cache_hits" in status["stats"]

    def test_engine_flags_warn_when_daemon_side(self, live_daemon, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, _ = run_cli(
            "batch", str(pairs), "--daemon", live_daemon, "--daemon-only",
            "--jobs", "4", "--lp-method", "rowgen",
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "--jobs" in err and "--lp-method" in err and "ignored" in err

    def test_fallback_when_no_daemon(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch", str(pairs), "--daemon", str(tmp_path / "missing.sock")
        )
        assert code == 0
        records = [json.loads(line) for line in output.splitlines()]
        assert [r["status"] for r in records] == ["contained", "contained"]
        assert "deciding in-process instead" in capsys.readouterr().err

    def test_daemon_only_fails_without_daemon(self, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch",
            str(pairs),
            "--daemon",
            str(tmp_path / "missing.sock"),
            "--daemon-only",
        )
        assert code == 1
        assert "error:" in output

    def test_stop_without_daemon_reports_error(self, tmp_path):
        code, output = run_cli(
            "daemon", "stop", "--socket", str(tmp_path / "missing.sock")
        )
        assert code == 1
        assert "error:" in output
