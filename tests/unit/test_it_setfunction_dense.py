"""Representation-equivalence tests for the dense bitmask SetFunction core.

The vectorized operations must agree with a retained pure-dict reference
implementation (the pre-refactor semantics) on random set functions.  Every
test is parametrized over ground sizes up to n = 6 and several random seeds,
covering algebra, dominance, conditioning, the Möbius transform and the
elemental-matrix rows.
"""

import random
from itertools import chain, combinations

import numpy as np
import pytest

from repro.infotheory.imeasure import from_mobius_inverse, mobius_inverse
from repro.infotheory.polymatroid import elemental_inequalities
from repro.infotheory.setfunction import SetFunction
from repro.utils.lattice import lattice_context


# --------------------------------------------------------------------- #
# Pure-dict reference implementation (the pre-vectorization semantics)
# --------------------------------------------------------------------- #
def _all_subsets(items):
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )


class DictSetFunction:
    """Reference ``h : 2^V → R`` backed by a frozenset-keyed dict."""

    def __init__(self, ground, values):
        self.ground = tuple(ground)
        self.values = {frozenset(s): float(v) for s, v in values.items() if s}

    def __call__(self, subset):
        return self.values.get(frozenset(subset), 0.0)

    def subsets(self):
        return [frozenset(s) for s in _all_subsets(self.ground) if s]

    def add(self, other):
        return {s: self(s) + other(s) for s in self.subsets()}

    def sub(self, other):
        return {s: self(s) - other(s) for s in self.subsets()}

    def scale(self, scalar):
        return {s: scalar * self(s) for s in self.subsets()}

    def dominates(self, other, tolerance=1e-9):
        return all(self(s) >= other(s) - tolerance for s in self.subsets())

    def conditioned_on(self, given):
        given = frozenset(given)
        remaining = tuple(v for v in self.ground if v not in given)
        return {
            frozenset(s): self(frozenset(s) | given) - self(given)
            for s in _all_subsets(remaining)
            if s
        }

    def mobius_inverse(self):
        subsets = [frozenset(s) for s in _all_subsets(self.ground)]
        result = {}
        for lower in subsets:
            value = 0.0
            for upper in subsets:
                if lower <= upper:
                    sign = -1.0 if (len(upper) - len(lower)) % 2 else 1.0
                    value += sign * self(upper)
            result[lower] = value
        return result


def _random_pair(n, seed):
    ground = tuple(f"X{i}" for i in range(n))
    rng = random.Random(seed)
    values = {
        frozenset(s): rng.uniform(-2.0, 2.0) for s in _all_subsets(ground) if s
    }
    return (
        ground,
        values,
        SetFunction(ground=ground, values=values),
        DictSetFunction(ground, values),
    )


CASES = [(n, seed) for n in range(1, 7) for seed in (0, 1, 2)]


@pytest.mark.parametrize("n,seed", CASES)
def test_algebra_matches_reference(n, seed):
    ground, _, dense_a, ref_a = _random_pair(n, seed)
    _, _, dense_b, ref_b = _random_pair(n, seed + 100)
    for dense_result, ref_result in [
        (dense_a + dense_b, ref_a.add(ref_b)),
        (dense_a - dense_b, ref_a.sub(ref_b)),
        (3.25 * dense_a, ref_a.scale(3.25)),
        (dense_a * -0.5, ref_a.scale(-0.5)),
    ]:
        for subset, expected in ref_result.items():
            assert dense_result(subset) == pytest.approx(expected, abs=1e-12)


@pytest.mark.parametrize("n,seed", CASES)
def test_evaluation_and_vector_roundtrip(n, seed):
    ground, values, dense, ref = _random_pair(n, seed)
    for subset in ref.subsets():
        assert dense(subset) == pytest.approx(ref(subset))
    assert dense(()) == 0.0
    vector = dense.to_vector()
    assert np.allclose(vector, [ref(s) for s in dense.subsets()])
    rebuilt = SetFunction.from_vector(ground, vector)
    assert rebuilt.is_close_to(dense, tolerance=0.0)


@pytest.mark.parametrize("n,seed", CASES)
def test_dominates_matches_reference(n, seed):
    _, _, dense_a, ref_a = _random_pair(n, seed)
    _, _, dense_b, ref_b = _random_pair(n, seed + 100)
    assert dense_a.dominates(dense_b) == ref_a.dominates(ref_b)
    assert dense_b.dominates(dense_a) == ref_b.dominates(ref_a)
    assert dense_a.dominates(dense_a)
    bumped = dense_a + SetFunction(
        ground=dense_a.ground, values={frozenset([dense_a.ground[0]]): 0.25}
    )
    assert bumped.dominates(dense_a)
    assert not dense_a.dominates(bumped)


@pytest.mark.parametrize("n,seed", CASES)
def test_conditioned_on_matches_reference(n, seed):
    ground, _, dense, ref = _random_pair(n, seed)
    rng = random.Random(seed + 7)
    given = frozenset(v for v in ground if rng.random() < 0.5)
    conditioned = dense.conditioned_on(given)
    expected = ref.conditioned_on(given)
    assert conditioned.ground == tuple(v for v in ground if v not in given)
    for subset, value in expected.items():
        assert conditioned(subset) == pytest.approx(value, abs=1e-12)


@pytest.mark.parametrize("n,seed", CASES)
def test_mobius_transform_matches_reference(n, seed):
    ground, _, dense, ref = _random_pair(n, seed)
    vectorized = mobius_inverse(dense)
    reference = ref.mobius_inverse()
    assert set(vectorized) == set(reference)
    for subset, value in reference.items():
        assert vectorized[subset] == pytest.approx(value, abs=1e-9)
    # Round trip: ζ(μ(h)) = h.
    rebuilt = from_mobius_inverse(ground, vectorized)
    assert rebuilt.is_close_to(dense, tolerance=1e-9)


@pytest.mark.parametrize("n", range(1, 7))
def test_elemental_matrix_rows_match_inequalities(n):
    ground = tuple(f"X{i}" for i in range(n))
    lattice = lattice_context(ground)
    matrix = lattice.elemental_matrix().toarray()
    inequalities = elemental_inequalities(ground)
    assert matrix.shape == (len(inequalities), 2**n - 1)
    index = {subset: i for i, subset in enumerate(lattice.nonempty_subsets)}
    for row, inequality in enumerate(inequalities):
        expected = np.zeros(2**n - 1)
        for subset, coefficient in inequality.as_dict().items():
            expected[index[subset]] += coefficient
        assert np.array_equal(matrix[row], expected), inequality.description


@pytest.mark.parametrize("n,seed", CASES)
def test_elemental_evaluate_matches_matrix(n, seed):
    _, _, dense, _ = _random_pair(n, seed)
    matrix = dense.lattice.elemental_matrix()
    via_matrix = matrix @ dense.to_vector()
    via_evaluate = np.array(
        [ineq.evaluate(dense) for ineq in elemental_inequalities(dense.ground)]
    )
    assert np.allclose(via_matrix, via_evaluate, atol=1e-9)


@pytest.mark.parametrize("n,seed", [(3, 0), (5, 1)])
def test_restrict_and_rename_match_reference(n, seed):
    ground, _, dense, ref = _random_pair(n, seed)
    kept = ground[: max(1, n - 1)]
    restricted = dense.restrict(kept)
    for s in _all_subsets(kept):
        if s:
            assert restricted(s) == pytest.approx(ref(s))
    renamed = dense.rename({ground[0]: "Z"})
    assert renamed.ground[0] == "Z"
    for s in ref.subsets():
        image = frozenset("Z" if v == ground[0] else v for v in s)
        assert renamed(image) == pytest.approx(ref(s))


def test_reversed_ground_order_algebra_aligns():
    ground = ("a", "b", "c")
    values = {
        frozenset(s): float(len(s) * 10 + i)
        for i, s in enumerate(x for x in _all_subsets(ground) if x)
    }
    forward = SetFunction(ground=ground, values=values)
    backward = SetFunction(ground=tuple(reversed(ground)), values=values)
    total = forward + backward
    for subset in forward.subsets():
        assert total(subset) == pytest.approx(forward(subset) + backward(subset))
    assert forward.dominates(backward) == all(
        forward(s) >= backward(s) - 1e-9 for s in forward.subsets()
    )
