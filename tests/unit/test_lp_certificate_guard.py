"""Certificate extraction must reject targets outside the active row span.

The row-generation certificate path solves the multiplier system over the
*active* row set only.  A natural-but-wrong implementation restricts the
equality system to the columns the active rows touch and silently drops the
target's other coordinates — producing a "certificate" for a different
expression.  These tests pin the required behaviour: a target with support
outside the active rows' column support is *rejected* (raised, for the
support-restricted fast path; ``None``, for the full-width solve), never
truncated.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import CertificateError
from repro.lp.certificates import (
    nonnegative_combination,
    nonnegative_combination_over_support,
)

# Active rows touching only columns 0 and 1 (of a width-3 coordinate space).
ACTIVE_ROWS = np.array(
    [
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
    ]
)


def test_supported_target_matches_full_solve():
    target = np.array([3.0, 2.0, 0.0])  # = 1·row0 + 2·row1
    restricted = nonnegative_combination_over_support(ACTIVE_ROWS, target)
    full = nonnegative_combination(ACTIVE_ROWS, target)
    assert restricted is not None and full is not None
    np.testing.assert_allclose(restricted @ ACTIVE_ROWS, target, atol=1e-7)
    np.testing.assert_allclose(full @ ACTIVE_ROWS, target, atol=1e-7)


def test_unsupported_target_raises_instead_of_truncating():
    # Restricted to the touched columns {0, 1} the system *would* have the
    # solution λ = (1, 2) — but the target also needs coordinate 2, which no
    # active row can produce.  Truncation would silently return that λ.
    target = np.array([3.0, 2.0, 5.0])
    with pytest.raises(CertificateError):
        nonnegative_combination_over_support(ACTIVE_ROWS, target)


def test_unsupported_target_raises_for_sparse_generators():
    target = np.array([3.0, 2.0, 5.0])
    with pytest.raises(CertificateError):
        nonnegative_combination_over_support(sp.csr_matrix(ACTIVE_ROWS), target)


def test_full_width_solve_still_returns_none_not_a_truncated_lambda():
    target = np.array([3.0, 2.0, 5.0])
    assert nonnegative_combination(ACTIVE_ROWS, target) is None


def test_infeasible_but_supported_target_returns_none():
    # Support is fine (columns 0-1) but the combination needs a negative
    # multiplier; must come back None from both entry points, not raise.
    target = np.array([-1.0, 0.0, 0.0])
    assert nonnegative_combination_over_support(ACTIVE_ROWS, target) is None
    assert nonnegative_combination(ACTIVE_ROWS, target) is None
