"""Unit tests for the Shannon prover, the cones and the Max-II decision layer."""

import pytest

from repro.infotheory.cones import GammaCone, ModularCone, NormalCone, cone_by_name
from repro.infotheory.expressions import (
    InformationInequality,
    LinearExpression,
    MaxInformationInequality,
)
from repro.infotheory.functions import modular_function, parity_function, step_function
from repro.infotheory.imeasure import is_normal_function
from repro.infotheory.maxiip import decide_ii, decide_max_ii, essentially_shannon_agreement
from repro.infotheory.polymatroid import is_polymatroid
from repro.infotheory.shannon import ShannonProver

GROUND = ("X1", "X2", "X3")


def submodularity_expression(ground=GROUND):
    return (
        LinearExpression.entropy_term(ground, {"X1"})
        + LinearExpression.entropy_term(ground, {"X2"})
        - LinearExpression.entropy_term(ground, {"X1", "X2"})
    )


def test_shannon_prover_accepts_submodularity():
    prover = ShannonProver(GROUND)
    assert prover.is_valid(submodularity_expression())


def test_shannon_prover_rejects_reverse_submodularity():
    prover = ShannonProver(GROUND)
    reverse = -1.0 * submodularity_expression()
    assert not prover.is_valid(reverse)
    violating = prover.find_violating_polymatroid(reverse)
    assert violating is not None
    assert is_polymatroid(violating)
    assert reverse.evaluate(violating) < 0


def test_shannon_prover_certificate_verifies():
    prover = ShannonProver(GROUND)
    # A non-elemental Shannon inequality: h(X1X2X3) <= h(X1X2) + h(X3).
    expression = (
        LinearExpression.entropy_term(GROUND, {"X1", "X2"})
        + LinearExpression.entropy_term(GROUND, {"X3"})
        - LinearExpression.entropy_term(GROUND, GROUND)
    )
    assert prover.is_valid(expression)
    certificate = prover.certificate(expression)
    assert certificate is not None
    assert certificate.verify(expression)
    assert len(certificate) >= 1
    # The certificate must not verify a different expression.
    assert not certificate.verify(submodularity_expression())


def test_shannon_prover_no_certificate_for_invalid():
    prover = ShannonProver(GROUND)
    assert prover.certificate(-1.0 * submodularity_expression()) is None


def test_shannon_prover_inequality_wrapper():
    prover = ShannonProver(GROUND)
    inequality = InformationInequality(submodularity_expression())
    assert prover.is_valid_inequality(inequality)


def test_gamma_cone_membership(parity):
    cone = GammaCone(GROUND)
    assert cone.contains(parity)
    bad = parity + step_function(GROUND, low_part=("X1",)) * -3.0
    assert not cone.contains(bad)


def test_normal_and_modular_cone_membership(parity):
    normal_cone = NormalCone(GROUND)
    modular_cone = ModularCone(GROUND)
    step = step_function(GROUND, low_part=("X1",))
    modular = modular_function({"X1": 1.0, "X2": 2.0, "X3": 0.0})
    assert normal_cone.contains(step)
    assert normal_cone.contains(modular)
    assert modular_cone.contains(modular)
    assert not modular_cone.contains(step)
    assert not normal_cone.contains(parity)


def test_find_point_below_returns_generator_coefficients():
    cone = NormalCone(GROUND)
    # A single branch that can be made very negative: -h(X1).
    branch = -1.0 * LinearExpression.entropy_term(GROUND, {"X1"})
    point = cone.find_point_below([branch])
    assert point is not None
    assert point.coefficients is not None
    assert branch.evaluate(point.function) <= -1.0 + 1e-7
    assert is_normal_function(point.function)


def test_find_point_below_infeasible_for_valid_inequality():
    cone = GammaCone(GROUND)
    # Submodularity is valid, so no polymatroid makes it <= -1.
    assert cone.find_point_below([submodularity_expression()]) is None


def test_cone_by_name():
    assert isinstance(cone_by_name("gamma", GROUND), GammaCone)
    assert isinstance(cone_by_name("normal", GROUND), NormalCone)
    assert isinstance(cone_by_name("modular", GROUND), ModularCone)
    with pytest.raises(ValueError):
        cone_by_name("entropic", GROUND)


def test_decide_ii_valid_with_certificate():
    verdict = decide_ii(
        InformationInequality(submodularity_expression()),
        over="gamma",
        with_certificate=True,
    )
    assert verdict.valid
    assert verdict.certificate is not None
    assert verdict.certificate.verify(submodularity_expression())


def test_decide_ii_invalid_returns_violating_function():
    verdict = decide_ii(
        InformationInequality(-1.0 * submodularity_expression()), over="gamma"
    )
    assert not verdict.valid
    assert verdict.violating_function is not None
    assert is_polymatroid(verdict.violating_function)


def test_decide_max_ii_example_38(example_38_max_ii):
    for cone in ("gamma", "normal", "modular"):
        assert decide_max_ii(example_38_max_ii, over=cone).valid


def test_decide_max_ii_invalid_over_all_cones():
    # max(-h(X1), -h(X2)) >= 0 fails on any function with both entropies positive.
    branches = (
        -1.0 * LinearExpression.entropy_term(GROUND, {"X1"}),
        -1.0 * LinearExpression.entropy_term(GROUND, {"X2"}),
    )
    inequality = MaxInformationInequality(branches=branches)
    agreement = essentially_shannon_agreement(inequality)
    assert agreement == {"gamma": False, "normal": False, "modular": False}
    verdict = decide_max_ii(inequality, over="normal")
    assert verdict.violating_coefficients is not None


def test_decide_max_ii_respects_extra_ground():
    branch = -1.0 * LinearExpression.entropy_term(("X1",), {"X1"})
    inequality = MaxInformationInequality(branches=(branch,))
    verdict = decide_max_ii(inequality, over="gamma", ground=GROUND)
    assert not verdict.valid
    assert set(verdict.violating_function.ground) == set(GROUND)


def test_max_weaker_than_each_branch():
    # max(E1, E2) >= 0 can be valid even when neither branch alone is valid.
    e1 = LinearExpression.entropy_term(GROUND, {"X1"}) - LinearExpression.entropy_term(
        GROUND, {"X2"}
    )
    e2 = -1.0 * e1
    max_ii = MaxInformationInequality(branches=(e1, e2))
    assert decide_max_ii(max_ii, over="gamma").valid
    assert not decide_ii(InformationInequality(e1), over="gamma").valid
    assert not decide_ii(InformationInequality(e2), over="gamma").valid
