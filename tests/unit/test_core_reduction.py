"""Unit tests for the Section 5 reduction Max-IIP ≤m BagCQC-A."""

import pytest

from repro.cq.decompositions import is_acyclic
from repro.cq.homomorphism import count_query_to_query_homomorphisms
from repro.core.reduction import (
    UniformExpression,
    build_query_pair,
    reduce_max_iip_to_containment,
    uniformize,
)
from repro.exceptions import ReductionError
from repro.infotheory.expressions import LinearExpression, MaxInformationInequality
from repro.infotheory.maxiip import decide_max_ii
from repro.workloads.paper_examples import example_5_2_inequality

GROUND = ("X1", "X2", "X3")


def single_ii(expression):
    return MaxInformationInequality.single(expression)


def test_uniformize_example_52(example_52_expression):
    uniform = uniformize(single_ii(example_52_expression))
    assert len(uniform.branches) == 1
    branch = uniform.branches[0]
    # Example 5.2 / Eq. (20): two negative terms, so n = 2 and q = 3.
    assert branch.unconditioned_count == 2
    assert branch.total_coefficient == 3
    assert branch.distinguished in branch.ground
    assert set(GROUND) < set(branch.ground)


def test_uniform_expression_validation():
    with pytest.raises(ReductionError):
        UniformExpression(
            ground=("A", "U"),
            distinguished="U",
            unconditioned_count=1,
            chain=((frozenset({"A"}), frozenset({"A"})),),  # X_0 must be empty
            total_coefficient=1,
        )
    with pytest.raises(ReductionError):
        UniformExpression(
            ground=("A", "U"),
            distinguished="U",
            unconditioned_count=1,
            chain=(
                (frozenset({"U"}), frozenset()),
                (frozenset({"A"}), frozenset({"A"})),  # U missing from X_1
            ),
            total_coefficient=1,
        )


def test_uniformize_rejects_non_integer_coefficients():
    expression = LinearExpression(GROUND, {frozenset({"X1"}): 0.5})
    with pytest.raises(ReductionError):
        uniformize(single_ii(expression))


def test_uniformize_rejects_clashing_distinguished_name():
    expression = LinearExpression(GROUND, {frozenset({"X1"}): 1.0})
    with pytest.raises(ReductionError):
        uniformize(single_ii(expression), distinguished="X1")


def test_uniformize_preserves_gamma_validity(example_52_expression):
    # The uniformized Max-II is valid over Γn iff the original is — for both a
    # valid and an invalid input.
    valid_input = single_ii(example_52_expression)
    assert decide_max_ii(valid_input, over="gamma").valid
    assert decide_max_ii(uniformize(valid_input).as_max_ii(), over="gamma").valid

    invalid_input = single_ii(
        -1.0 * LinearExpression.entropy_term(GROUND, {"X1"})
    )
    assert not decide_max_ii(invalid_input, over="gamma").valid
    assert not decide_max_ii(uniformize(invalid_input).as_max_ii(), over="gamma").valid


def test_uniformize_multibranch_shapes():
    branches = (
        LinearExpression(GROUND, {frozenset({"X1"}): 1.0, frozenset({"X1", "X2"}): -1.0}),
        LinearExpression(GROUND, {frozenset({"X2"}): 2.0}),
    )
    uniform = uniformize(MaxInformationInequality(branches=branches))
    assert len(uniform.branches) == 2
    first, second = uniform.branches
    # All branches share the uniform parameters.
    assert first.unconditioned_count == second.unconditioned_count
    assert first.chain_length == second.chain_length
    assert first.total_coefficient == second.total_coefficient


def test_build_query_pair_structure(example_52_expression):
    uniform = uniformize(single_ii(example_52_expression))
    q1, q2 = build_query_pair(uniform)
    assert q2.is_boolean and q1.is_boolean
    assert is_acyclic(q2)
    # Q2 has n isolated S-atoms plus the chain of p+1 R-atoms.
    n = uniform.unconditioned_count
    p = uniform.chain_length
    assert len(q2.atoms) == n + p + 1
    # Q1 contains q adorned copies; at least one atom per relation name of Q2.
    q2_relations = {atom.relation for atom in q2.atoms}
    q1_relations = {atom.relation for atom in q1.atoms}
    assert q2_relations == q1_relations
    # There is at least one homomorphism Q2 -> Q1.
    assert count_query_to_query_homomorphisms(q2, q1) >= 1


def test_full_reduction_details(example_52_expression):
    result = reduce_max_iip_to_containment(single_ii(example_52_expression))
    assert result.details["q"] == 3
    assert result.details["n"] == 2
    assert result.details["q2_atoms"] == len(result.q2.atoms)
    assert is_acyclic(result.q2)


def test_reduction_of_valid_input_yields_gamma_valid_containment_inequality():
    # For a Shannon-valid input, the Eq. (8) inequality of the constructed pair
    # must itself be valid over Γn (so the sufficient condition proves Q1 ⊑ Q2).
    # A two-variable monotonicity instance keeps Q1 small enough (8 variables)
    # for the Γn LP; the full Example 5.2 instance (15 variables, ~860k
    # elemental inequalities) is exercised structurally elsewhere.
    from repro.core.containment_inequality import build_containment_inequality
    from repro.cq.decompositions import join_tree

    small_valid = LinearExpression(
        ("X1", "X2"),
        {frozenset({"X1", "X2"}): 1.0, frozenset({"X1"}): -1.0},
    )
    result = reduce_max_iip_to_containment(single_ii(small_valid))
    inequality = build_containment_inequality(
        result.q1, result.q2, [join_tree(result.q2)]
    )
    assert not inequality.is_trivially_false
    verdict = decide_max_ii(
        inequality.as_max_ii(), over="gamma", ground=inequality.ground
    )
    assert verdict.valid
