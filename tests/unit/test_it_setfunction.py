"""Unit tests for SetFunction."""

import numpy as np
import pytest

from repro.exceptions import EntropyError
from repro.infotheory.setfunction import SetFunction


@pytest.fixture
def simple_function():
    return SetFunction(
        ground=("a", "b"),
        values={
            frozenset({"a"}): 1.0,
            frozenset({"b"}): 1.0,
            frozenset({"a", "b"}): 1.5,
        },
    )


def test_empty_set_is_zero(simple_function):
    assert simple_function(()) == 0.0
    assert simple_function(frozenset()) == 0.0


def test_lookup_and_total(simple_function):
    assert simple_function({"a"}) == 1.0
    assert simple_function(("a", "b")) == 1.5
    assert simple_function.total() == 1.5


def test_string_argument_means_singleton(simple_function):
    assert simple_function("a") == 1.0


def test_unknown_variable_rejected(simple_function):
    with pytest.raises(EntropyError):
        simple_function({"z"})


def test_repeated_ground_rejected():
    with pytest.raises(EntropyError):
        SetFunction(ground=("a", "a"), values={})


def test_value_outside_ground_rejected():
    with pytest.raises(EntropyError):
        SetFunction(ground=("a",), values={frozenset({"z"}): 1.0})


def test_conditional_and_mutual_information(simple_function):
    assert simple_function.conditional({"b"}, {"a"}) == pytest.approx(0.5)
    assert simple_function.mutual_information({"a"}, {"b"}) == pytest.approx(0.5)


def test_vector_roundtrip(simple_function):
    vector = simple_function.to_vector()
    assert isinstance(vector, np.ndarray)
    rebuilt = SetFunction.from_vector(simple_function.ground, vector)
    assert rebuilt.is_close_to(simple_function)


def test_from_vector_length_checked():
    with pytest.raises(EntropyError):
        SetFunction.from_vector(("a", "b"), [1.0, 2.0])


def test_arithmetic(simple_function):
    doubled = 2 * simple_function
    assert doubled({"a", "b"}) == pytest.approx(3.0)
    summed = simple_function + simple_function
    assert summed.is_close_to(doubled)
    difference = doubled - simple_function
    assert difference.is_close_to(simple_function)


def test_dominates(simple_function):
    bigger = simple_function + SetFunction(
        ground=("a", "b"), values={frozenset({"a"}): 0.1}
    )
    assert bigger.dominates(simple_function)
    assert not simple_function.dominates(bigger)


def test_restrict(simple_function):
    restricted = simple_function.restrict(("a",))
    assert restricted.ground == ("a",)
    assert restricted({"a"}) == 1.0


def test_conditioned_on(simple_function):
    conditioned = simple_function.conditioned_on({"a"})
    assert conditioned.ground == ("b",)
    assert conditioned({"b"}) == pytest.approx(0.5)


def test_rename(simple_function):
    renamed = simple_function.rename({"a": "x"})
    assert renamed({"x", "b"}) == pytest.approx(1.5)
    with pytest.raises(EntropyError):
        simple_function.rename({"a": "b"})


def test_from_callable():
    cardinality = SetFunction.from_callable(("a", "b", "c"), lambda s: float(len(s)))
    assert cardinality({"a", "c"}) == 2.0
    assert len(cardinality.subsets()) == 7
