"""Unit tests for Gaifman graphs, acyclicity, chordality and junction trees."""

import networkx as nx
import pytest

from repro.cq.decompositions import (
    TreeDecomposition,
    candidate_tree_decompositions,
    has_simple_junction_tree,
    has_totally_disconnected_junction_tree,
    heuristic_tree_decomposition,
    is_acyclic,
    is_chordal,
    join_tree,
    junction_tree,
)
from repro.cq.gaifman import gaifman_graph, is_clique, maximal_cliques
from repro.cq.parser import parse_query
from repro.exceptions import DecompositionError
from repro.workloads.generators import clique_query, cycle_query, path_query, star_query


def test_gaifman_graph_triangle(triangle_query):
    graph = gaifman_graph(triangle_query)
    assert set(graph.nodes) == {"X1", "X2", "X3"}
    assert graph.number_of_edges() == 3
    assert is_clique(graph, ("X1", "X2", "X3"))


def test_gaifman_graph_isolated_variable():
    query = parse_query("R(x, x), S(y, z)")
    graph = gaifman_graph(query)
    assert "x" in graph.nodes
    assert graph.degree("x") == 0


def test_maximal_cliques_path():
    graph = gaifman_graph(path_query(3))
    cliques = maximal_cliques(graph)
    assert len(cliques) == 3
    assert all(len(c) == 2 for c in cliques)


def test_acyclicity_of_families():
    assert is_acyclic(path_query(4))
    assert is_acyclic(star_query(4))
    assert is_acyclic(cycle_query(2))
    assert not is_acyclic(cycle_query(3))
    assert not is_acyclic(cycle_query(5))


def test_acyclicity_single_atom_and_clique_query():
    assert is_acyclic(parse_query("R(x, y, z)"))
    # The clique query has one atom per pair: cyclic for size >= 3.
    assert not is_acyclic(clique_query(3))


def test_join_tree_path(path2_query):
    tree = join_tree(path2_query)
    assert tree.is_valid(path2_query)
    assert tree.is_simple()
    assert {frozenset(bag) for bag in tree.bags.values()} == {
        frozenset({"Y1", "Y2"}),
        frozenset({"Y1", "Y3"}),
    }


def test_join_tree_rejects_cyclic(triangle_query):
    with pytest.raises(DecompositionError):
        join_tree(triangle_query)


def test_chordality():
    assert is_chordal(parse_query("R(x, y, z)"))
    assert is_chordal(triangle := cycle_query(3)) and triangle is not None
    assert not is_chordal(cycle_query(4))
    assert is_chordal(path_query(5))


def test_junction_tree_triangle(triangle_query):
    tree = junction_tree(triangle_query)
    assert tree.is_valid(triangle_query)
    assert len(tree.bags) == 1
    assert set(tree.bags.values()) == {frozenset({"X1", "X2", "X3"})}
    assert tree.is_junction_tree(triangle_query)


def test_junction_tree_rejects_non_chordal():
    with pytest.raises(DecompositionError):
        junction_tree(cycle_query(4))


def test_simple_junction_tree_detection():
    # Example 3.5's Q2 has the simple junction tree {y1,y3}-{y1,y2}-{y2,y4}.
    q2 = parse_query("A(y1,y2), B(y1,y3), C(y4,y2)")
    assert has_simple_junction_tree(q2)
    # Two triangles glued on an edge share a 2-element separator: not simple.
    glued = parse_query("R(a,b), R(b,c), R(c,a), R(b,d), R(c,d)")
    assert is_chordal(glued)
    assert not has_simple_junction_tree(glued)
    assert not has_simple_junction_tree(cycle_query(4))


def test_totally_disconnected_junction_tree():
    disconnected = parse_query("R(a,b), S(c,d)")
    assert has_totally_disconnected_junction_tree(disconnected)
    assert not has_totally_disconnected_junction_tree(path_query(2))


def test_heuristic_decomposition_covers_cyclic_query():
    query = cycle_query(5)
    decomposition = heuristic_tree_decomposition(query)
    decomposition.validate(query)
    assert decomposition.width() >= 1


def test_candidate_decompositions_deduplicate(path2_query):
    candidates = candidate_tree_decompositions(path2_query)
    signatures = {candidate.signature() for candidate in candidates}
    assert len(signatures) == len(candidates)
    assert all(candidate.is_valid(path2_query) for candidate in candidates)


def test_decomposition_validation_catches_errors(triangle_query):
    tree = nx.Graph()
    tree.add_nodes_from([0, 1])
    bags = {0: frozenset({"X1", "X2"}), 1: frozenset({"X2", "X3"})}
    decomposition = TreeDecomposition(tree=tree, bags=bags)
    # Running intersection ok (no edge between nodes sharing X2 -> fails).
    assert not decomposition.is_valid()
    tree2 = nx.Graph()
    tree2.add_edge(0, 1)
    decomposition2 = TreeDecomposition(tree=tree2, bags=bags)
    # Coverage fails: the atom R(X3, X1) is in no bag.
    assert decomposition2.is_valid()
    assert not decomposition2.is_valid(triangle_query)


def test_rooting_and_atom_assignment(path2_query):
    tree = join_tree(path2_query)
    parents = tree.rooted_parents()
    roots = [node for node, parent in parents.items() if parent is None]
    assert len(roots) == 1
    order = tree.topological_order()
    assert order[0] in roots
    assignment = tree.assign_atoms(path2_query)
    assigned_atoms = [atom for atoms in assignment.values() for atom in atoms]
    assert sorted(map(str, assigned_atoms)) == sorted(map(str, path2_query.atoms))


def test_separators_and_width(path2_query):
    tree = join_tree(path2_query)
    assert tree.separators() == [frozenset({"Y1"})]
    assert tree.width() == 1
    assert tree.all_variables() == frozenset({"Y1", "Y2", "Y3"})
