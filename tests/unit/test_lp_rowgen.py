"""The lazy (rowgen) solver entry points agree with the dense path.

These tests exercise the ``lazy_rows``/``method`` knob of
:mod:`repro.lp.solver` directly, below the infotheory layer: the same cone
problems solved through ``method="dense"`` and ``method="rowgen"`` must
return identical feasibility verdicts and matching objectives, the auto
threshold must dispatch on the row count, and the reports must show that
row generation really solved with a fraction of the rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LPError
from repro.lp.rowgen import (
    AUTO_ROW_THRESHOLD,
    RowGenOptions,
    resolve_method,
    shannon_row_oracle,
)
from repro.lp.solver import (
    FeasibilityBlock,
    LPStatus,
    check_feasibility,
    minimize,
    minimize_many,
    record_solver_path,
    solve_feasibility_blocks,
    solver_path_counts,
)
from repro.utils.lattice import lattice_context

GROUND = tuple(f"X{i}" for i in range(1, 5))  # n = 4, 32 elemental rows


def _canonical_index(ground, subset):
    lattice = lattice_context(ground)
    return lattice.canon_pos[lattice.mask_of(subset)] - 1


def _objective(ground, coefficients):
    lattice = lattice_context(ground)
    vector = np.zeros(lattice.size - 1)
    for subset, coefficient in coefficients.items():
        vector[_canonical_index(ground, subset)] += coefficient
    return vector


def _normalization_row(ground):
    lattice = lattice_context(ground)
    row = np.zeros((1, lattice.size - 1))
    row[0, _canonical_index(ground, ground)] = 1.0
    return row


# A Shannon-valid objective (Han-type: Σ h(V\i) - (n-1)·h(V) ≥ 0 on Γn)
VALID = {frozenset(GROUND) - {v}: 1.0 for v in GROUND}
VALID[frozenset(GROUND)] = -(len(GROUND) - 1)

# An invalid objective (negative somewhere on Γn).
INVALID = {
    frozenset({"X1"}): 1.0,
    frozenset({"X2"}): 1.0,
    frozenset({"X1", "X2"}): -1.5,
}


@pytest.mark.parametrize("coefficients,expected_negative", [(VALID, False), (INVALID, True)])
def test_minimize_rowgen_matches_dense(coefficients, expected_negative):
    oracle = shannon_row_oracle(GROUND)
    objective = _objective(GROUND, coefficients)
    dense = minimize(
        objective,
        A_ub=_normalization_row(GROUND),
        b_ub=[1.0],
        lazy_rows=oracle,
        method="dense",
    )
    lazy = minimize(
        objective,
        A_ub=_normalization_row(GROUND),
        b_ub=[1.0],
        bounds=(0, 1),
        lazy_rows=oracle,
        method="rowgen",
    )
    assert dense.status == lazy.status == LPStatus.OPTIMAL
    assert lazy.objective == pytest.approx(dense.objective, abs=1e-7)
    assert (dense.objective < -1e-7) == expected_negative
    assert lazy.rowgen is not None
    assert lazy.rowgen.rows_used <= oracle.row_count
    assert lazy.rowgen.total_rows == oracle.row_count
    # The rowgen solution must satisfy every elemental inequality.
    cuts, _ = oracle.separate(oracle.dense_from_canonical(lazy.solution), 1e-7)
    assert cuts.size == 0


def test_check_feasibility_rowgen_matches_dense():
    oracle = shannon_row_oracle(GROUND)
    width = lattice_context(GROUND).size - 1
    branch_invalid = _objective(GROUND, INVALID).reshape(1, width)
    branch_valid = _objective(GROUND, VALID).reshape(1, width)
    for branch, expected in [(branch_invalid, True), (branch_valid, False)]:
        dense_feasible, _ = check_feasibility(
            width, A_ub=branch, b_ub=[-1.0], lazy_rows=oracle, method="dense"
        )
        lazy_feasible, solution = check_feasibility(
            width, A_ub=branch, b_ub=[-1.0], lazy_rows=oracle, method="rowgen"
        )
        assert dense_feasible == lazy_feasible == expected
        if expected:
            assert (branch @ solution)[0] <= -1.0 + 1e-7
            cuts, _ = oracle.separate(oracle.dense_from_canonical(solution), 1e-7)
            assert cuts.size == 0


def test_solve_feasibility_blocks_rowgen_matches_dense():
    oracle = shannon_row_oracle(GROUND)
    width = lattice_context(GROUND).size - 1
    blocks = [
        FeasibilityBlock(
            num_variables=width,
            A_soft=_objective(GROUND, coefficients).reshape(1, width),
            b_soft=[-1.0],
        )
        for coefficients in (INVALID, VALID, INVALID)
    ]
    dense_results = solve_feasibility_blocks(blocks, lazy_rows=oracle, method="dense")
    lazy_results = solve_feasibility_blocks(blocks, lazy_rows=oracle, method="rowgen")
    assert [r.feasible for r in dense_results] == [r.feasible for r in lazy_results]
    assert [r.feasible for r in lazy_results] == [True, False, True]
    for result in lazy_results:
        assert result.rows_used is not None
        assert result.rows_used <= oracle.row_count
    # The *feasible* blocks terminate on a point of Γn found early; only the
    # infeasible block may have needed the full description.
    assert lazy_results[0].rows_used < oracle.row_count


def test_minimize_many_rowgen_shares_the_active_set():
    oracle = shannon_row_oracle(GROUND)
    objectives = [_objective(GROUND, VALID), _objective(GROUND, INVALID)]
    dense_results = minimize_many(
        objectives,
        A_ub=_normalization_row(GROUND),
        b_ub=[1.0],
        lazy_rows=oracle,
        method="dense",
    )
    lazy_results = minimize_many(
        objectives,
        A_ub=_normalization_row(GROUND),
        b_ub=[1.0],
        bounds=(0, 1),
        lazy_rows=oracle,
        method="rowgen",
    )
    for dense, lazy in zip(dense_results, lazy_results):
        assert lazy.objective == pytest.approx(dense.objective, abs=1e-7)
    # Warm start: the second solve's report reflects the shared active set.
    assert lazy_results[1].rowgen.rows_used >= lazy_results[0].rowgen.rows_used


def test_auto_threshold_dispatch():
    assert resolve_method("dense", 10**9) == "dense"
    assert resolve_method("rowgen", 1) == "rowgen"
    assert resolve_method("auto", AUTO_ROW_THRESHOLD) == "dense"
    assert resolve_method("auto", AUTO_ROW_THRESHOLD + 1) == "rowgen"
    with pytest.raises(LPError):
        resolve_method("typo", 1)


def test_rowgen_rejects_equality_constraints():
    oracle = shannon_row_oracle(GROUND)
    width = lattice_context(GROUND).size - 1
    with pytest.raises(LPError):
        minimize(
            np.zeros(width),
            A_eq=np.ones((1, width)),
            b_eq=[1.0],
            lazy_rows=oracle,
            method="rowgen",
        )


def test_unbounded_relaxation_raises_instead_of_guessing():
    # Minimizing -h(V) over the cone *without* the normalization row is
    # unbounded on the true problem too, but the loop cannot distinguish the
    # cases and must refuse rather than answer.
    oracle = shannon_row_oracle(GROUND)
    objective = _objective(GROUND, {frozenset(GROUND): -1.0})
    with pytest.raises(LPError):
        minimize(objective, lazy_rows=oracle, method="rowgen")


def test_tight_cut_budget_still_converges():
    oracle = shannon_row_oracle(GROUND)
    objective = _objective(GROUND, VALID)
    result = minimize(
        objective,
        A_ub=_normalization_row(GROUND),
        b_ub=[1.0],
        bounds=(0, 1),
        lazy_rows=oracle,
        method="rowgen",
        rowgen_options=RowGenOptions(max_cuts_per_round=1),
    )
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(0.0, abs=1e-7)
    assert result.rowgen.rounds >= result.rowgen.cuts_added


def test_solver_path_counters_tally_both_paths():
    # Delta-based so this test never erases the session-wide tally the
    # terminal-summary coverage line (and the CI grep) reports.
    before = solver_path_counts()
    record_solver_path("dense")
    record_solver_path("rowgen")
    record_solver_path("rowgen")
    after = solver_path_counts()
    assert after["dense"] - before["dense"] == 1
    assert after["rowgen"] - before["rowgen"] == 2
