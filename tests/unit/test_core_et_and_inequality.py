"""Unit tests for the E_T expression and the Eq. (8) containment inequality."""

import pytest

from repro.cq.decompositions import join_tree, junction_tree
from repro.cq.parser import parse_query
from repro.core.containment_inequality import build_containment_inequality
from repro.core.et_expression import (
    et_expression,
    et_expression_inclusion_exclusion,
    et_substituted,
)
from repro.exceptions import QueryError
from repro.infotheory.functions import parity_function
from repro.workloads.generators import path_query, star_query


def test_et_expression_for_path2(path2_query, parity):
    tree = join_tree(path2_query)
    expression = et_expression(tree)
    assert expression.is_simple
    # E_T = h(Y1Y2) + h(Y3|Y1) = h(Y1Y2) + h(Y1Y3) - h(Y1).
    linear = expression.to_linear()
    assert linear.coefficients[frozenset({"Y1", "Y2"})] == pytest.approx(1.0)
    assert linear.coefficients[frozenset({"Y1", "Y3"})] == pytest.approx(1.0)
    assert linear.coefficients[frozenset({"Y1"})] == pytest.approx(-1.0)


def test_et_edge_form_matches_conditional_form(path2_query):
    tree = join_tree(path2_query)
    conditional = et_expression(tree).to_linear()
    edge_form = et_expression_inclusion_exclusion(tree)
    assert conditional.coefficients == edge_form.coefficients


def test_et_edge_form_matches_on_larger_queries():
    for query in (path_query(4), star_query(4), parse_query("R(a,b,c), S(c,d), T(d,e)")):
        tree = join_tree(query)
        assert (
            et_expression(tree).to_linear().coefficients
            == et_expression_inclusion_exclusion(tree).coefficients
        )


def test_et_lee_identity_on_acyclic_relation():
    # Lee's theorem: E_T(h) = h(V) when the relation decomposes along T.
    from repro.cq.structures import Relation
    from repro.infotheory.entropy import relation_entropy

    query = parse_query("R(Y1,Y2), S(Y1,Y3)")
    tree = join_tree(query)
    relation = Relation(
        attributes=("Y1", "Y2", "Y3"),
        rows={(u, v, w) for u in range(2) for v in range(2) for w in range(2)},
    )
    entropy = relation_entropy(relation)
    assert et_expression(tree, ground=("Y1", "Y2", "Y3")).evaluate(
        entropy
    ) == pytest.approx(entropy.total())


def test_et_substituted_is_pullback(path2_query, triangle_query, parity):
    tree = join_tree(path2_query)
    homomorphism = {"Y1": "X1", "Y2": "X2", "Y3": "X2"}
    substituted = et_substituted(tree, homomorphism, triangle_query.variables)
    # (E_T ∘ φ)(h) = h(X1X2) + h(X2|X1) = 2 + 1 = 3 for the parity function.
    assert substituted.evaluate(parity) == pytest.approx(3.0)
    assert substituted.is_simple


def test_containment_inequality_vee(triangle_query, path2_query, parity):
    inequality = build_containment_inequality(triangle_query, path2_query)
    assert inequality.ground == ("X1", "X2", "X3")
    assert len(inequality.branches) == 3
    assert inequality.all_branches_simple
    assert not inequality.is_trivially_false
    # It is exactly Example 3.8 and holds on the parity function.
    assert inequality.holds_for(parity)
    assert inequality.right_hand_side(parity) == pytest.approx(3.0)


def test_containment_inequality_requires_boolean_queries():
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("(x) :- R(x, y)")
    with pytest.raises(QueryError):
        build_containment_inequality(q1, q2)


def test_containment_inequality_no_homomorphism():
    q1 = parse_query("R(x, y)")
    q2 = parse_query("S(u, v)")
    inequality = build_containment_inequality(q1, q2)
    assert inequality.is_trivially_false
    with pytest.raises(QueryError):
        inequality.as_max_ii()


def test_containment_inequality_deduplicates_branches():
    # Two homomorphisms that induce the same substituted expression collapse.
    q1 = parse_query("R(x, x)")
    q2 = parse_query("R(y1, y2), R(y2, y3)")
    inequality = build_containment_inequality(q1, q2)
    assert len(inequality.branches) == 1


def test_containment_inequality_example_35(example_35_pair):
    inequality = build_containment_inequality(
        example_35_pair.q1, example_35_pair.q2, [junction_tree(example_35_pair.q2)]
    )
    assert inequality.all_branches_simple
    assert len(inequality.branches) >= 2
    assert set(inequality.ground) == {"x1", "x2", "xp1", "xp2"}
