"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import _parse_structure, main
from repro.exceptions import ReproError


def run_cli(*argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


def test_contain_contained_pair():
    code, output = run_cli(
        "contain", "R(x1,x2), R(x2,x3), R(x3,x1)", "R(y1,y2), R(y1,y3)"
    )
    assert code == 0
    assert "verdict : contained" in output
    assert "theorem-3.1" in output


def test_contain_refuted_pair_prints_witness():
    code, output = run_cli(
        "contain",
        "A(x1,x2), B(x1,x2), A(u1,u2), B(u1,u2)",
        "A(y1,y2), B(y1,y3)",
    )
    assert code == 0
    assert "verdict : not_contained" in output
    assert "witness" in output


def test_contain_with_method_flag():
    code, output = run_cli(
        "contain",
        "R(x1,x2), R(x2,x3), R(x3,x1)",
        "R(y1,y2), R(y1,y3)",
        "--method",
        "sufficient",
    )
    assert code == 0
    assert "sufficient-gamma" in output


def test_inspect_reports_structure():
    code, output = run_cli("inspect", "A(y1,y2), B(y1,y3), C(y4,y2)")
    assert code == 0
    assert "acyclic   : True" in output
    assert "simple junction tree : True" in output


def test_dominate_command():
    code, output = run_cli(
        "dominate", "--base", "R:0,1;1,2;2,0", "--dominating", "R:a,b;a,c"
    )
    assert code == 0
    assert "verdict : contained" in output


def test_structure_parser():
    structure = _parse_structure("R:0,1;1,2 S:a")
    assert len(structure.tuples("R")) == 2
    assert len(structure.tuples("S")) == 1
    with pytest.raises(ReproError):
        _parse_structure("no-colon-here")
    with pytest.raises(ReproError):
        _parse_structure("R:")


def test_cli_error_handling():
    code, output = run_cli("contain", "R(x,y)", "R(x)")
    assert code == 1
    assert "error:" in output


def test_batch_command_jsonl_verdicts(tmp_path):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text(
        "# comment line\n"
        "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
        '{"q1": "R(u,v), R(v,w), R(w,u)", "q2": "R(s,t), R(s,p)"}\n'
        "\n"
        "R(x,y), R(y,z) | S(a,b)\n"
    )
    code, output = run_cli("batch", str(pairs))
    assert code == 0
    records = [json.loads(line) for line in output.splitlines()]
    assert [r["status"] for r in records] == [
        "contained",
        "contained",
        "not_contained",
    ]
    # The JSON pair is isomorphic to the first and must fold into it.
    assert records[1]["source"] == "batch-dedup"
    assert records[2]["witness_rows"] >= 1


def test_batch_command_with_knobs(tmp_path):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text("R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n")
    code, output = run_cli(
        "batch", str(pairs), "--jobs", "2", "--chunk-size", "4", "--method", "auto"
    )
    assert code == 0
    assert json.loads(output.splitlines()[0])["status"] == "contained"


def test_batch_command_bad_line(tmp_path):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text("R(x,y) without separator\n")
    code, output = run_cli("batch", str(pairs))
    assert code == 1
    assert "error:" in output


def test_batch_command_empty_file(tmp_path):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text("# nothing here\n")
    code, output = run_cli("batch", str(pairs))
    assert code == 1
    assert "error:" in output


def test_batch_command_non_string_json_values(tmp_path):
    pairs = tmp_path / "pairs.txt"
    pairs.write_text('{"q1": 5, "q2": "R(x,y)"}\n')
    code, output = run_cli("batch", str(pairs))
    assert code == 1
    assert "error:" in output
    assert "query strings" in output
