"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import _parse_structure, main
from repro.exceptions import ReproError


def run_cli(*argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


def test_contain_contained_pair():
    code, output = run_cli(
        "contain", "R(x1,x2), R(x2,x3), R(x3,x1)", "R(y1,y2), R(y1,y3)"
    )
    assert code == 0
    assert "verdict : contained" in output
    assert "theorem-3.1" in output


def test_contain_refuted_pair_prints_witness():
    code, output = run_cli(
        "contain",
        "A(x1,x2), B(x1,x2), A(u1,u2), B(u1,u2)",
        "A(y1,y2), B(y1,y3)",
    )
    assert code == 0
    assert "verdict : not_contained" in output
    assert "witness" in output


def test_contain_with_method_flag():
    code, output = run_cli(
        "contain",
        "R(x1,x2), R(x2,x3), R(x3,x1)",
        "R(y1,y2), R(y1,y3)",
        "--method",
        "sufficient",
    )
    assert code == 0
    assert "sufficient-gamma" in output


def test_inspect_reports_structure():
    code, output = run_cli("inspect", "A(y1,y2), B(y1,y3), C(y4,y2)")
    assert code == 0
    assert "acyclic   : True" in output
    assert "simple junction tree : True" in output


def test_dominate_command():
    code, output = run_cli(
        "dominate", "--base", "R:0,1;1,2;2,0", "--dominating", "R:a,b;a,c"
    )
    assert code == 0
    assert "verdict : contained" in output


def test_structure_parser():
    structure = _parse_structure("R:0,1;1,2 S:a")
    assert len(structure.tuples("R")) == 2
    assert len(structure.tuples("S")) == 1
    with pytest.raises(ReproError):
        _parse_structure("no-colon-here")
    with pytest.raises(ReproError):
        _parse_structure("R:")


def test_cli_error_handling():
    code, output = run_cli("contain", "R(x,y)", "R(x)")
    assert code == 1
    assert "error:" in output
