"""Tests for canonical query labeling and structural pair keys."""

import random

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.parser import parse_query
from repro.service.canonical import (
    canonical_query,
    canonical_query_key,
    pair_key,
)
from repro.workloads.generators import (
    clique_query,
    cycle_query,
    path_query,
    random_query,
    star_query,
)


def _shuffled_rename(query, seed):
    """An isomorphic copy: random variable names AND shuffled atom order."""
    rng = random.Random(seed)
    variables = list(query.variables)
    fresh = [f"z{seed}_{i}" for i in range(len(variables))]
    rng.shuffle(fresh)
    renamed = query.rename(dict(zip(variables, fresh)))
    atoms = list(renamed.atoms)
    rng.shuffle(atoms)
    return ConjunctiveQuery(atoms=tuple(atoms), head=renamed.head, name="shuffled")


class TestCanonicalQueryKey:
    def test_key_invariant_under_renaming_and_atom_order(self):
        queries = [
            path_query(3),
            cycle_query(4),
            star_query(3),
            clique_query(3),
            parse_query("R(x,y), S(y,z), R(z,x)"),
            random_query(4, 5, seed=11),
        ]
        for query in queries:
            key = canonical_query_key(query)
            for seed in range(5):
                copy = _shuffled_rename(query, seed)
                assert canonical_query_key(copy) == key, str(query)

    def test_distinct_structures_get_distinct_keys(self):
        keys = {
            canonical_query_key(q)
            for q in (
                path_query(2),
                path_query(3),
                cycle_query(3),
                cycle_query(4),
                star_query(2),
                clique_query(3),
                parse_query("R(x,x)"),
            )
        }
        assert len(keys) == 7

    def test_head_positions_distinguish_queries(self):
        body = (Atom("R", ("x", "y")),)
        q_xy = ConjunctiveQuery(atoms=body, head=("x", "y"))
        q_yx = ConjunctiveQuery(atoms=body, head=("y", "x"))
        q_bool = ConjunctiveQuery(atoms=body, head=())
        assert canonical_query_key(q_xy) != canonical_query_key(q_bool)
        assert canonical_query_key(q_xy) != canonical_query_key(q_yx)

    def test_repeated_variables_matter(self):
        assert canonical_query_key(parse_query("R(x,x)")) != canonical_query_key(
            parse_query("R(x,y)")
        )

    def test_relation_names_matter(self):
        assert canonical_query_key(parse_query("R(x,y)")) != canonical_query_key(
            parse_query("S(x,y)")
        )


class TestCanonicalQuery:
    def test_canonical_query_is_isomorphic_relabeling(self):
        query = parse_query("R(x,y), S(y,z), R(z,x)")
        canonical = canonical_query(query)
        assert len(canonical.atoms) == len(query.atoms)
        assert len(canonical.variables) == len(query.variables)
        assert canonical_query_key(canonical) == canonical_query_key(query)
        assert all(v.startswith("c") for v in canonical.variables)

    def test_canonical_form_identical_across_copies(self):
        query = cycle_query(5)
        forms = {
            str(canonical_query(_shuffled_rename(query, seed))) for seed in range(4)
        }
        assert len(forms) == 1


class TestPairKey:
    def test_pair_key_invariant_under_independent_renamings(self):
        q1, q2 = cycle_query(3), path_query(2)
        assert pair_key(q1, q2) == pair_key(
            _shuffled_rename(q1, 1), _shuffled_rename(q2, 2)
        )

    def test_pair_order_matters(self):
        q1, q2 = cycle_query(3), path_query(2)
        assert pair_key(q1, q2) != pair_key(q2, q1)
