"""Unit tests for repro.utils.subsets."""

from repro.utils.subsets import (
    all_subsets,
    bitmask_of,
    nonempty_subsets,
    powerset_indexed,
    proper_subsets,
    subset_from_bitmask,
    subsets_of_size,
)


def test_all_subsets_count():
    items = ("a", "b", "c")
    assert len(list(all_subsets(items))) == 8


def test_all_subsets_includes_empty_and_full():
    items = ("a", "b")
    subsets = list(all_subsets(items))
    assert () in subsets
    assert ("a", "b") in subsets


def test_nonempty_subsets_excludes_empty():
    assert () not in list(nonempty_subsets(("a", "b")))
    assert len(list(nonempty_subsets(("a", "b", "c")))) == 7


def test_proper_subsets_excludes_full_set():
    items = ("a", "b", "c")
    subsets = list(proper_subsets(items))
    assert ("a", "b", "c") not in subsets
    assert len(subsets) == 7  # includes the empty set


def test_subsets_of_size():
    assert list(subsets_of_size(("a", "b", "c"), 2)) == [
        ("a", "b"),
        ("a", "c"),
        ("b", "c"),
    ]


def test_powerset_indexed_is_bitmask():
    index = powerset_indexed(("a", "b", "c"))
    assert index[frozenset()] == 0
    assert index[frozenset({"a"})] == 1
    assert index[frozenset({"b"})] == 2
    assert index[frozenset({"a", "c"})] == 5
    assert index[frozenset({"a", "b", "c"})] == 7
    assert len(index) == 8


def test_bitmask_roundtrip():
    items = ("x", "y", "z", "w")
    positions = {item: i for i, item in enumerate(items)}
    for subset in all_subsets(items):
        mask = bitmask_of(subset, positions)
        assert subset_from_bitmask(mask, items) == frozenset(subset)


def test_deterministic_order():
    assert list(all_subsets(("a", "b"))) == list(all_subsets(("a", "b")))
