"""Unit tests for the conjunctive-query parser."""

import pytest

from repro.cq.parser import parse_atom, parse_query
from repro.exceptions import ParseError


def test_parse_atom_simple():
    atom = parse_atom("R(x, y)")
    assert atom.relation == "R"
    assert atom.args == ("x", "y")


def test_parse_atom_repeated_variables():
    atom = parse_atom("R(x, x, y)")
    assert atom.args == ("x", "x", "y")


def test_parse_atom_primed_variables():
    atom = parse_atom("A(x', y')")
    assert atom.args == ("x'", "y'")


def test_parse_atom_errors():
    with pytest.raises(ParseError):
        parse_atom("R(x")
    with pytest.raises(ParseError):
        parse_atom("R()")
    with pytest.raises(ParseError):
        parse_atom("(x, y)")


def test_parse_boolean_query():
    query = parse_query("R(x, y), R(y, z)")
    assert query.is_boolean
    assert query.variables == ("x", "y", "z")
    assert len(query.atoms) == 2


def test_parse_query_with_conjunction_symbols():
    query = parse_query("R(x, y) ∧ S(y, z) & T(z)")
    assert len(query.atoms) == 3


def test_parse_query_with_head():
    query = parse_query("(x, z) :- P(x), S(u, x), S(v, z), R(z)")
    assert query.head == ("x", "z")
    assert len(query.atoms) == 4


def test_parse_query_with_named_head():
    query = parse_query("Q5(x) :- R(x, y)")
    assert query.name == "Q5"
    assert query.head == ("x",)


def test_parse_query_empty_head():
    query = parse_query("() :- R(x, y)")
    assert query.head == ()


def test_parse_query_errors():
    with pytest.raises(ParseError):
        parse_query("")
    with pytest.raises(ParseError):
        parse_query("x, y")
    with pytest.raises(ParseError):
        parse_query("R(x,, y)")


def test_parse_roundtrip_variables():
    text = "R(X1,X2), R(X2,X3), R(X3,X1)"
    query = parse_query(text)
    assert query.variables == ("X1", "X2", "X3")
    assert {atom.relation for atom in query.atoms} == {"R"}
