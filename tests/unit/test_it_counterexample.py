"""Unit tests for the entropic counterexample searcher (Lemma B.9 in practice)."""

import pytest

from repro.exceptions import SearchBudgetExceeded
from repro.infotheory.counterexample import CounterexampleSearcher
from repro.infotheory.expressions import LinearExpression, MaxInformationInequality
from repro.infotheory.polymatroid import is_polymatroid

GROUND = ("X1", "X2", "X3")


def invalid_single_branch():
    # -h(X1) >= 0 fails on any function with positive h(X1).
    return MaxInformationInequality.single(
        -1.0 * LinearExpression.entropy_term(GROUND, {"X1"})
    )


def valid_single_branch():
    return MaxInformationInequality.single(
        LinearExpression.entropy_term(GROUND, {"X1"})
    )


def test_search_finds_counterexample_for_invalid():
    searcher = CounterexampleSearcher(GROUND)
    found = searcher.search(invalid_single_branch())
    assert found is not None
    assert invalid_single_branch().max_value(found.function) < 0
    assert is_polymatroid(found.function)
    assert found.source in {"modular", "normal", "group", "relation"}


def test_search_returns_none_for_valid():
    searcher = CounterexampleSearcher(GROUND, max_coefficient=1, random_relations=5)
    assert searcher.search(valid_single_branch(), budget=500) is None


def test_search_or_raise():
    searcher = CounterexampleSearcher(GROUND, max_coefficient=1, random_relations=5)
    with pytest.raises(SearchBudgetExceeded):
        searcher.search_or_raise(valid_single_branch(), budget=200)
    assert searcher.search_or_raise(invalid_single_branch()) is not None


def test_search_respects_budget():
    searcher = CounterexampleSearcher(GROUND)
    # With a budget of zero candidates nothing can be found.
    assert searcher.search(invalid_single_branch(), budget=0) is None


def test_candidates_are_entropic_like():
    searcher = CounterexampleSearcher(GROUND, max_coefficient=1, random_relations=10)
    count = 0
    for candidate in searcher.candidates():
        assert is_polymatroid(candidate.function, tolerance=1e-6)
        count += 1
        if count >= 200:
            break
    assert count >= 50


def test_max_ii_needs_all_branches_negative():
    # max(h(X1) - h(X2), h(X2) - h(X1)) is always >= 0: no counterexample.
    e1 = LinearExpression.entropy_term(GROUND, {"X1"}) - LinearExpression.entropy_term(
        GROUND, {"X2"}
    )
    inequality = MaxInformationInequality(branches=(e1, -1.0 * e1))
    searcher = CounterexampleSearcher(GROUND, max_coefficient=1, random_relations=10)
    assert searcher.search(inequality, budget=1000) is None
