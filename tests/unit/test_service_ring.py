"""Tests for the consistent-hash ring behind fleet routing.

The contract under test is the one the gateway leans on: deterministic,
order-insensitive construction (so every gateway built from the same
manifest routes identically), drain expressed as an eligibility filter
(so only the drained member's keys move), and bounded reshuffle on
membership change (~1/n of a key sample, not all of it).
"""

import random

import pytest

from repro.service.ring import (
    DEFAULT_VNODES,
    HashRing,
    assignment_counts,
    reshuffle_fraction,
    ring_point,
)


def sample_hashes(count=1000, seed=99):
    rng = random.Random(seed)
    return [rng.getrandbits(256) for _ in range(count)]


class TestConstruction:
    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError):
            HashRing(["a", "a"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_point_count_is_members_times_vnodes(self):
        assert len(HashRing(["a", "b", "c"], vnodes=16)) == 48

    def test_ring_point_is_deterministic(self):
        assert ring_point("replica-0#3") == ring_point("replica-0#3")
        assert ring_point("replica-0#3") != ring_point("replica-0#4")


class TestOwnership:
    def test_single_member_owns_everything(self):
        ring = HashRing(["only"], vnodes=8)
        assert all(ring.owner(h) == "only" for h in sample_hashes(200))

    def test_owner_is_deterministic_and_order_insensitive(self):
        # Same member set, different declaration order: identical routing.
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])
        for h in sample_hashes(500):
            assert first.owner(h) == second.owner(h)

    def test_all_members_drained_raises(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(LookupError):
            ring.owner(7, eligible=[])

    def test_unknown_eligible_member_raises(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(KeyError):
            ring.owner(7, eligible=["ghost"])

    def test_drain_moves_only_the_drained_members_keys(self):
        ring = HashRing(["a", "b", "c"])
        hashes = sample_hashes()
        for h in hashes:
            owner = ring.owner(h)
            if owner != "b":
                assert ring.owner(h, eligible=["a", "c"]) == owner
            else:
                assert ring.owner(h, eligible=["a", "c"]) in ("a", "c")

    def test_reroute_when_every_primary_choice_is_drained(self):
        # Walking clockwise past *all* other members still terminates on
        # the one survivor, wherever the key lands.
        ring = HashRing(["a", "b", "c", "d"])
        for h in sample_hashes(200):
            assert ring.owner(h, eligible=["d"]) == "d"

    def test_load_is_roughly_balanced(self):
        ring = HashRing([f"replica-{i}" for i in range(4)], vnodes=DEFAULT_VNODES)
        counts = assignment_counts(ring, sample_hashes(4000))
        for member_count in counts.values():
            assert 0.5 * 1000 < member_count < 2.0 * 1000


class TestReshuffle:
    """Membership changes remap ~1/n of a 1k-key sample, not the world."""

    TOLERANCE = 0.10

    def test_add_one_member_reshuffles_at_most_one_nth(self):
        hashes = sample_hashes(1000)
        for n in (1, 2, 4):
            members = [f"replica-{i}" for i in range(n)]
            before = HashRing(members)
            after = HashRing(members + [f"replica-{n}"])
            moved = reshuffle_fraction(before, after, hashes)
            assert moved <= 1.0 / (n + 1) + self.TOLERANCE
            # The new member actually takes a shard: some keys must move.
            assert moved > 0.0

    def test_remove_one_member_reshuffles_at_most_one_nth(self):
        hashes = sample_hashes(1000)
        for n in (2, 3, 5):
            members = [f"replica-{i}" for i in range(n)]
            before = HashRing(members)
            after = HashRing(members[:-1])
            moved = reshuffle_fraction(before, after, hashes)
            assert moved <= 1.0 / n + self.TOLERANCE

    def test_identical_membership_reshuffles_nothing(self):
        members = ["a", "b", "c"]
        assert (
            reshuffle_fraction(
                HashRing(members), HashRing(members), sample_hashes(500)
            )
            == 0.0
        )

    def test_empty_sample_is_zero_not_an_error(self):
        assert reshuffle_fraction(HashRing(["a"]), HashRing(["a", "b"]), []) == 0.0
