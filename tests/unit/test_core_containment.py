"""Unit tests for the containment decision procedures."""

import pytest

from repro.core.containment import (
    ContainmentStatus,
    decide_containment,
    sufficient_containment_check,
    theorem_3_1_decision,
)
from repro.cq.parser import parse_query
from repro.exceptions import QueryError
from repro.workloads.generators import clique_query, cycle_query, path_query


def test_vee_example_is_contained(vee_pair):
    result = decide_containment(vee_pair.q1, vee_pair.q2)
    assert result.status == ContainmentStatus.CONTAINED
    assert result.method == "theorem-3.1"
    assert result.inequality is not None
    assert result.verdict.valid


def test_example_35_not_contained_with_witness(example_35_pair):
    result = decide_containment(example_35_pair.q1, example_35_pair.q2)
    assert result.status == ContainmentStatus.NOT_CONTAINED
    assert result.witness is not None
    assert result.witness.hom_q1 > result.witness.hom_q2
    assert "normal" in result.witness.description


def test_identical_queries_contained():
    query = parse_query("R(x, y), S(y, z)")
    result = decide_containment(query, query)
    assert result.status == ContainmentStatus.CONTAINED


def test_adding_atoms_over_same_variables_is_contained():
    # When Q2's atoms are a subset of Q1's and both use the same variables,
    # every homomorphism of Q1 is one of Q2, so Q1 ⊑ Q2.
    q1 = parse_query("R(x, y), S(x, y)")
    q2 = parse_query("R(x, y)")
    result = decide_containment(q1, q2)
    assert result.status == ContainmentStatus.CONTAINED


def test_existential_projection_is_not_contained():
    # Q1 = R(x,y) ∧ S(y,z) is NOT bag-contained in Q2 = R(x,y): a database
    # with one R-tuple and many S-tuples separates them.
    q1 = parse_query("R(x, y), S(y, z)")
    q2 = parse_query("R(x, y)")
    result = decide_containment(q1, q2)
    assert result.status == ContainmentStatus.NOT_CONTAINED


def test_projection_direction_not_contained():
    # R(x,y) has n^2-style counts while R(x,y),R(x,z) counts out-degree pairs:
    # the first is NOT bounded by the second on databases with low out-degree,
    # and vice versa the second is not bounded by the first either; check one
    # direction which must be refuted by a witness.
    q1 = parse_query("R(x, y), R(x, z)")
    q2 = parse_query("R(u, v)")
    result = decide_containment(q1, q2)
    assert result.status == ContainmentStatus.NOT_CONTAINED
    assert result.witness is not None


def test_no_homomorphism_means_not_contained():
    q1 = parse_query("R(x, y)")
    q2 = parse_query("S(u, v)")
    result = decide_containment(q1, q2)
    assert result.status == ContainmentStatus.NOT_CONTAINED
    assert result.witness is not None
    assert result.witness.hom_q2 == 0


def test_theorem_31_requires_simple_junction_tree():
    q1 = parse_query("R(x, y)")
    q2_not_simple = parse_query("R(a,b), R(b,c), R(c,a), R(b,d), R(c,d)")
    with pytest.raises(QueryError):
        theorem_3_1_decision(q1, q2_not_simple)


def test_theorem_31_on_path_queries():
    # Path counts are NOT monotone in the length: on the complete digraph with
    # self-loops, hom(path_k) = n^(k+1), so neither direction is contained.
    # Both directions are inside the decidable fragment and must be refuted
    # with verified witnesses.
    longer_vs_shorter = theorem_3_1_decision(path_query(3), path_query(2))
    assert longer_vs_shorter.status == ContainmentStatus.NOT_CONTAINED
    assert longer_vs_shorter.witness is not None
    shorter_vs_longer = theorem_3_1_decision(path_query(2), path_query(3))
    assert shorter_vs_longer.status == ContainmentStatus.NOT_CONTAINED
    # A path is trivially contained in itself.
    same = theorem_3_1_decision(path_query(3), path_query(3))
    assert same.status == ContainmentStatus.CONTAINED


def test_cycle_in_clique_contained():
    # The 4-cycle maps into the triangle pattern; triangle (clique) is chordal
    # with a single bag, hence a simple junction tree.
    q1 = cycle_query(4)
    q2 = clique_query(3)
    result = decide_containment(q1, q2)
    assert result.method == "theorem-3.1"
    assert result.status in (
        ContainmentStatus.CONTAINED,
        ContainmentStatus.NOT_CONTAINED,
    )


def test_sufficient_check_only():
    result = decide_containment(
        parse_query("R(x1,x2), R(x2,x3), R(x3,x1)"),
        parse_query("R(y1,y2), R(y1,y3)"),
        method="sufficient",
    )
    assert result.status == ContainmentStatus.CONTAINED
    assert result.method == "sufficient-gamma"


def test_sufficient_check_unknown_when_invalid(example_35_pair):
    result = sufficient_containment_check(example_35_pair.q1, example_35_pair.q2)
    assert result.status == ContainmentStatus.UNKNOWN
    assert result.verdict is not None and not result.verdict.valid


def test_brute_force_method(example_35_pair):
    result = decide_containment(
        example_35_pair.q1, example_35_pair.q2, method="brute-force"
    )
    assert result.status == ContainmentStatus.NOT_CONTAINED


def test_brute_force_method_inconclusive(vee_pair):
    result = decide_containment(vee_pair.q1, vee_pair.q2, method="brute-force")
    assert result.status == ContainmentStatus.UNKNOWN


def test_unknown_method_rejected(vee_pair):
    with pytest.raises(QueryError):
        decide_containment(vee_pair.q1, vee_pair.q2, method="magic")


def test_head_queries_supported():
    # Same variables, Q2's atoms a subset of Q1's: contained per head tuple.
    q1 = parse_query("(x) :- R(x, y), S(x, y)")
    q2 = parse_query("(x) :- R(x, y)")
    result = decide_containment(q1, q2)
    assert result.status == ContainmentStatus.CONTAINED
    # Fanning out over an existential variable breaks containment.
    fanned = parse_query("(x) :- R(x, y), S(y, z)")
    assert (
        decide_containment(fanned, q2).status == ContainmentStatus.NOT_CONTAINED
    )
    with pytest.raises(QueryError):
        decide_containment(q1, parse_query("R(x, y)"))


def test_non_chordal_containing_query_falls_back():
    # Q2 is a 4-cycle (not chordal): the complete procedure does not apply,
    # but identical queries are trivially contained and the sufficient check
    # finds the identity-homomorphism branch h(V) <= h(V).
    q = cycle_query(4)
    result = decide_containment(q, q)
    assert result.status == ContainmentStatus.CONTAINED
    assert result.method == "sufficient-gamma"
