"""Tests for the daemon wire protocol (JSONL messages and addresses)."""

import json

import pytest

from repro.service.protocol import (
    Address,
    BatchRequest,
    BatchResponse,
    ControlRequest,
    PairSpec,
    PairVerdict,
    ProtocolError,
    encode_batch_response,
    encode_request,
    parse_address,
    parse_batch_response,
    parse_request,
    parse_response,
)


class TestRequests:
    @pytest.mark.parametrize("op", ["ping", "status", "stop"])
    def test_control_round_trip(self, op):
        line = encode_request(ControlRequest(op))
        request = parse_request(line)
        assert isinstance(request, ControlRequest)
        assert request.op == op

    def test_batch_round_trip(self):
        request = BatchRequest(
            pairs=(PairSpec("R(x,y)", "R(a,b)"), PairSpec("S(x)", "S(y)")),
            deadline_seconds=12.5,
            priority="high",
        )
        parsed = parse_request(encode_request(request))
        assert parsed == request

    def test_batch_defaults(self):
        parsed = parse_request('{"op": "batch", "pairs": [{"q1": "R(x,y)", "q2": "R(y,x)"}]}')
        assert parsed.deadline_seconds is None
        assert parsed.priority == "normal"

    def test_bytes_accepted(self):
        assert parse_request(b'{"op": "ping"}') == ControlRequest("ping")

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "reboot"}',
            '{"op": "batch"}',
            '{"op": "batch", "pairs": []}',
            '{"op": "batch", "pairs": ["R(x,y)"]}',
            '{"op": "batch", "pairs": [{"q1": "R(x,y)"}]}',
            '{"op": "batch", "pairs": [{"q1": 3, "q2": "R(x,y)"}]}',
            '{"op": "batch", "pairs": [{"q1": "a", "q2": "b"}], "deadline_seconds": -1}',
            '{"op": "batch", "pairs": [{"q1": "a", "q2": "b"}], "deadline_seconds": true}',
            '{"op": "batch", "pairs": [{"q1": "a", "q2": "b"}], "priority": "urgent"}',
        ],
    )
    def test_malformed_requests_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)


class TestResponses:
    def test_batch_response_round_trip(self):
        response = BatchResponse(
            ok=True,
            verdicts=(
                PairVerdict(0, "contained", "theorem-3.1", "solved"),
                PairVerdict(1, "not_contained", "theorem-3.1", "plan-cache", witness_rows=4),
            ),
            stats={"cache_hits": 1},
            degraded=True,
        )
        parsed = parse_batch_response(encode_batch_response(response))
        assert parsed == response

    def test_rejection_round_trip(self):
        response = BatchResponse(
            ok=False, error="queue-full", shed="rejected", stats={"requests_rejected": 1}
        )
        parsed = parse_batch_response(encode_batch_response(response))
        assert not parsed.ok
        assert parsed.error == "queue-full"
        assert parsed.shed == "rejected"
        assert parsed.stats == {"requests_rejected": 1}

    def test_every_response_carries_protocol_version(self):
        line = encode_batch_response(BatchResponse(ok=True))
        assert json.loads(line)["protocol"] == 1

    def test_response_requires_ok(self):
        with pytest.raises(ProtocolError):
            parse_response('{"verdicts": []}')

    def test_batch_response_requires_verdict_list(self):
        with pytest.raises(ProtocolError):
            parse_batch_response('{"ok": true}')
        with pytest.raises(ProtocolError):
            parse_batch_response('{"ok": true, "verdicts": [{"index": 0}]}')


class TestAddresses:
    def test_unix_path(self):
        address = parse_address("/tmp/repro.sock")
        assert address == Address(kind="unix", path="/tmp/repro.sock")
        assert str(address) == "/tmp/repro.sock"

    def test_tcp_host_port(self):
        address = parse_address("127.0.0.1:7411")
        assert address == Address(kind="tcp", host="127.0.0.1", port=7411)
        assert str(address) == "127.0.0.1:7411"

    def test_explicit_prefixes(self):
        assert parse_address("unix:./relative.sock").kind == "unix"
        assert parse_address("tcp:localhost:9000") == Address(
            kind="tcp", host="localhost", port=9000
        )

    def test_path_with_colon_but_no_port_is_unix(self):
        assert parse_address("/tmp/odd:name").kind == "unix"

    def test_path_with_trailing_colon_stays_unix_when_it_has_a_slash(self):
        # A directory separator disambiguates: this is a path, not a typo'd
        # TCP endpoint, even though it ends in a colon.
        assert parse_address("/tmp/odd:").kind == "unix"

    def test_port_boundaries(self):
        assert parse_address("localhost:1").port == 1
        assert parse_address("localhost:65535").port == 65535

    @pytest.mark.parametrize("text", ["", "tcp:nohost", "tcp::123", "tcp:host:0", "unix:"])
    def test_bad_addresses(self, text):
        with pytest.raises(ProtocolError):
            parse_address(text)

    @pytest.mark.parametrize(
        "text, hint",
        [
            # Port 0 and out-of-range ports: rejected eagerly, not left to
            # fail inside socket.connect much later.
            ("localhost:0", "out of range"),
            ("localhost:65536", "out of range"),
            ("tcp:localhost:99999", "out of range"),
            # A bare integer is ambiguous (port? relative path?): refuse.
            ("8080", "ambiguous"),
            # A colon-bearing name with the port missing is a typo'd TCP
            # endpoint, not a socket path.
            ("localhost:", "missing its port"),
            # Missing host.
            (":8080", "host:port"),
        ],
    )
    def test_tcp_grammar_edge_cases_fail_eagerly(self, text, hint):
        with pytest.raises(ProtocolError, match=hint):
            parse_address(text)
