"""Tests for engine worker modes (thread vs process) and batch deadlines.

The acceptance bar for ``worker_mode="process"`` is *pair-for-pair verdict
equivalence* with the thread mode on a mixed workload: both modes drive the
same deterministic pipeline generator with the same grouped LP answers, so
everything observable — status, method, provenance — must coincide.
"""

import pickle

import pytest

from repro.core.containment import ContainmentStatus, decide_containment
from repro.cq.parser import parse_query
from repro.infotheory.maxiip import decide_max_ii
from repro.service import BatchOptions, ContainmentService, PipelineSpec
from repro.service.engine import (
    WORKER_MODES,
    BatchEngine,
    PipelineStep,
    PipelineTask,
    advance_pipeline_task,
)
from repro.service.service import _pair_key_task
from repro.workloads.generators import mixed_containment_pairs

TRIANGLE = parse_query("R(x,y), R(y,z), R(z,x)")
VEE = parse_query("R(a,b), R(a,c)")


class TestWorkerModeKnob:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            BatchEngine(worker_mode="fibers")
        with pytest.raises(ValueError):
            ContainmentService(BatchOptions(worker_mode="fibers")).run([(TRIANGLE, VEE)])

    def test_auto_resolves_to_thread(self):
        assert BatchEngine(worker_mode="auto").resolved_worker_mode == "thread"

    def test_modes_are_documented_tuple(self):
        assert WORKER_MODES == ("thread", "process", "auto")

    def test_rejects_negative_deadline(self):
        with pytest.raises(ValueError):
            BatchEngine(deadline=-1.0)


class TestPicklableBoundary:
    def test_spec_and_task_round_trip(self):
        spec = PipelineSpec(q1=TRIANGLE, q2=VEE)
        task = PipelineTask(index=3, spec=spec)
        restored = pickle.loads(pickle.dumps(task))
        assert restored.index == 3
        assert restored.spec.q1.atoms == TRIANGLE.atoms
        assert restored.spec.q2.atoms == VEE.atoms

    def test_step_round_trips_with_request_and_verdict(self):
        spec = PipelineSpec(q1=TRIANGLE, q2=VEE)
        step = advance_pipeline_task(PipelineTask(index=0, spec=spec))
        restored = pickle.loads(pickle.dumps(step))
        assert restored.request.over == "gamma"
        assert restored.request.seed == "containment"
        verdict = decide_max_ii(
            restored.request.max_ii,
            over=restored.request.over,
            ground=restored.request.ground,
            seed=restored.request.seed,
        )
        # The verdict crosses the boundary on the way back in.
        assert pickle.loads(pickle.dumps(verdict)).valid == verdict.valid

    def test_error_step_round_trips(self):
        mismatched = parse_query("R(x,y)")
        with_head = parse_query("(x) :- S(x, y)")
        spec = PipelineSpec(q1=mismatched, q2=with_head)
        step = advance_pipeline_task(PipelineTask(index=0, spec=spec))
        assert step.error is not None
        restored = pickle.loads(pickle.dumps(step))
        assert str(restored.error) == str(step.error)


class TestReplayAdvancement:
    def test_replay_reaches_the_sequential_result(self):
        spec = PipelineSpec(q1=TRIANGLE, q2=VEE)
        verdicts = []
        while True:
            step = advance_pipeline_task(
                PipelineTask(index=0, spec=spec, verdicts=tuple(verdicts))
            )
            assert step.error is None
            if step.result is not None:
                break
            verdicts.append(
                decide_max_ii(
                    step.request.max_ii,
                    over=step.request.over,
                    ground=step.request.ground,
                    seed=step.request.seed,
                )
            )
        sequential = decide_containment(TRIANGLE, VEE)
        assert step.result.status == sequential.status
        assert step.result.method == sequential.method

    def test_replay_is_deterministic(self):
        spec = PipelineSpec(q1=TRIANGLE, q2=VEE)
        first = advance_pipeline_task(PipelineTask(index=0, spec=spec))
        second = advance_pipeline_task(PipelineTask(index=0, spec=spec))
        assert first.request.max_ii == second.request.max_ii
        assert first.request.ground == second.request.ground


class TestProcessModeEquivalence:
    def test_process_equals_thread_on_mixed_32_pair_workload(self):
        # The ISSUE-5 acceptance workload: 32 mixed pairs (Theorem 3.1
        # routes, general routes, no-homomorphism refutations, head
        # variables, duplicates and isomorphic copies).
        pairs = mixed_containment_pairs(32, seed=11)
        thread_report = ContainmentService(
            BatchOptions(worker_mode="thread", max_workers=4, on_error="capture")
        ).run(pairs)
        process_report = ContainmentService(
            BatchOptions(worker_mode="process", max_workers=4, on_error="capture")
        ).run(pairs)
        thread_triples = [
            (o.result.status, o.result.method, o.source)
            for o in thread_report.outcomes
        ]
        process_triples = [
            (o.result.status, o.result.method, o.source)
            for o in process_report.outcomes
        ]
        assert thread_triples == process_triples

    def test_process_mode_single_pair_and_dedup(self):
        service = ContainmentService(
            BatchOptions(worker_mode="process", max_workers=2)
        )
        report = service.run([(TRIANGLE, VEE), (TRIANGLE, VEE)])
        assert [r.status for r in report.results] == [
            ContainmentStatus.CONTAINED,
            ContainmentStatus.CONTAINED,
        ]
        assert report.outcomes[1].source == "batch-dedup"
        # A second call hits the plan cache without any worker involvement.
        again = service.run([(TRIANGLE, VEE)])
        assert again.outcomes[0].source == "plan-cache"

    def test_process_mode_captures_pair_errors(self):
        bad = parse_query("(x) :- R(x, y)")
        good = parse_query("R(a,b)")
        report = ContainmentService(
            BatchOptions(worker_mode="process", max_workers=2, on_error="capture")
        ).run([(bad, good), (TRIANGLE, VEE)])
        assert report.results[0].method == "error"
        assert report.results[1].status == ContainmentStatus.CONTAINED

    def test_map_query_side_matches_inline(self):
        pairs = mixed_containment_pairs(8, seed=3)
        with BatchEngine(worker_mode="process", max_workers=2) as engine:
            fanned = engine.map_query_side(_pair_key_task, pairs)
        inline = [_pair_key_task(pair) for pair in pairs]
        assert fanned == inline


class TestDeadline:
    def test_zero_deadline_sheds_every_pair_without_raising(self):
        report = ContainmentService(BatchOptions(deadline=0.0)).run(
            [(TRIANGLE, VEE), (VEE, TRIANGLE)]
        )
        for result in report.results:
            assert result.status == ContainmentStatus.UNKNOWN
            assert result.method == "deadline-exceeded"
        assert report.stats["pairs_deadline_exceeded"] == 2

    def test_zero_deadline_sheds_in_process_mode_too(self):
        report = ContainmentService(
            BatchOptions(deadline=0.0, worker_mode="process", max_workers=2)
        ).run([(TRIANGLE, VEE), (VEE, TRIANGLE)])
        assert [r.method for r in report.results] == ["deadline-exceeded"] * 2

    def test_per_call_deadline_overrides_options(self):
        service = ContainmentService()
        shed = service.run([(TRIANGLE, VEE)], deadline=0.0)
        assert shed.results[0].method == "deadline-exceeded"
        solved = service.run([(TRIANGLE, VEE)])
        assert solved.results[0].status == ContainmentStatus.CONTAINED

    def test_deadline_exceeded_results_are_not_cached(self):
        service = ContainmentService()
        service.run([(TRIANGLE, VEE)], deadline=0.0)
        report = service.run([(TRIANGLE, VEE)])
        assert report.outcomes[0].source == "solved"
        assert report.results[0].status == ContainmentStatus.CONTAINED

    def test_generous_deadline_changes_nothing(self):
        pairs = mixed_containment_pairs(6, seed=2)
        unbounded = ContainmentService(BatchOptions(on_error="capture")).run(pairs)
        bounded = ContainmentService(
            BatchOptions(on_error="capture", deadline=600.0)
        ).run(pairs)
        assert [r.status for r in unbounded.results] == [
            r.status for r in bounded.results
        ]
