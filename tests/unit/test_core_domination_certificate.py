"""Unit tests for the DOM problem and Theorem 6.1 convex certificates."""

from fractions import Fraction

import pytest

from repro.core.containment import ContainmentStatus
from repro.core.convex_certificate import find_convex_certificate
from repro.core.domination import (
    dominates,
    exponent_domination_holds,
    structure_to_query,
)
from repro.cq.structures import Structure
from repro.exceptions import QueryError
from repro.infotheory.expressions import LinearExpression
from repro.infotheory.shannon import ShannonProver
from repro.workloads.paper_examples import example_3_8_inequality

GROUND = ("X1", "X2", "X3")


@pytest.fixture
def triangle_structure():
    return Structure.from_facts([("R", (0, 1)), ("R", (1, 2)), ("R", (2, 0))])


@pytest.fixture
def path_structure():
    return Structure.from_facts([("R", ("a", "b")), ("R", ("a", "c"))])


def test_structure_to_query(triangle_structure):
    query = structure_to_query(triangle_structure)
    assert len(query.atoms) == 3
    assert len(query.variables) == 3
    with pytest.raises(QueryError):
        structure_to_query(Structure(domain={0}, relations={}))


def test_dominates_vee(triangle_structure, path_structure):
    # The 2-path structure dominates the triangle (Example 4.3 in DOM form).
    result = dominates(triangle_structure, path_structure)
    assert result.status == ContainmentStatus.CONTAINED
    # The converse fails: the triangle does not dominate the 2-path.
    reverse = dominates(path_structure, triangle_structure)
    assert reverse.status == ContainmentStatus.NOT_CONTAINED


def test_exponent_domination_square(path_structure):
    # |hom(A, D)|^2 <= |hom(2A, D)| trivially: with exponent 2 the reduction
    # compares 2 disjoint copies of A against 2 disjoint copies of B = A,
    # i.e. equality, hence containment holds.
    result = exponent_domination_holds(
        path_structure, path_structure, Fraction(1, 1)
    )
    assert result.status == ContainmentStatus.CONTAINED


def test_exponent_domination_fractional(triangle_structure, path_structure):
    # |hom(triangle, D)|^(1/2) <= |hom(path2, D)| — weaker than exponent 1,
    # so it must also hold.
    result = exponent_domination_holds(
        triangle_structure, path_structure, Fraction(1, 2)
    )
    assert result.status == ContainmentStatus.CONTAINED


def test_exponent_domination_rejects_negative(triangle_structure, path_structure):
    with pytest.raises(QueryError):
        exponent_domination_holds(triangle_structure, path_structure, Fraction(-1, 2))


def test_convex_certificate_for_example_38():
    branches = list(example_3_8_inequality().branches)
    certificate = find_convex_certificate(branches, ground=GROUND, with_shannon_proof=True)
    assert certificate is not None
    # The paper's proof uses the uniform combination (1/3, 1/3, 1/3).
    assert sum(certificate.lambdas) == pytest.approx(1.0)
    assert all(value == pytest.approx(1 / 3, abs=1e-6) for value in certificate.lambdas)
    prover = ShannonProver(GROUND)
    assert certificate.verify(branches, prover)
    assert certificate.shannon_certificate is not None
    assert certificate.shannon_certificate.verify(certificate.combined)


def test_convex_certificate_single_valid_branch():
    branch = (
        LinearExpression.entropy_term(GROUND, {"X1"})
        + LinearExpression.entropy_term(GROUND, {"X2"})
        - LinearExpression.entropy_term(GROUND, {"X1", "X2"})
    )
    certificate = find_convex_certificate([branch], ground=GROUND)
    assert certificate is not None
    assert certificate.lambdas == (pytest.approx(1.0),)


def test_convex_certificate_absent_for_invalid_max_ii():
    branches = [
        -1.0 * LinearExpression.entropy_term(GROUND, {"X1"}),
        -1.0 * LinearExpression.entropy_term(GROUND, {"X2"}),
    ]
    assert find_convex_certificate(branches, ground=GROUND) is None


def test_convex_certificate_needs_expressions():
    with pytest.raises(ValueError):
        find_convex_certificate([])


def test_convex_certificate_verify_rejects_wrong_lambdas():
    branches = list(example_3_8_inequality().branches)
    certificate = find_convex_certificate(branches, ground=GROUND)
    prover = ShannonProver(GROUND)
    assert not certificate.verify(branches[:2], prover)
