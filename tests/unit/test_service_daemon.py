"""Tests for the persistent containment daemon: gate, shedding, sockets.

The daemon brain (:class:`ContainmentDaemon`) is transport-free, so most of
the admission/deadline/priority logic is tested by calling
``handle_batch``/``handle_line`` directly; one fixture then serves a real
daemon over a Unix socket in a background thread to cover the wire path end
to end (client, JSONL framing, stop semantics).
"""

import json
import socket
import threading
import time

import pytest

from repro.service import BatchOptions
from repro.service.daemon import (
    ContainmentDaemon,
    DaemonClient,
    DaemonConnectionBroken,
    DaemonUnavailable,
    ServiceGate,
    ShedOptions,
    daemon_available,
    serve,
)
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    PairSpec,
    encode_batch_response,
    parse_address,
)

TRIANGLE_TEXT = "R(x,y), R(y,z), R(z,x)"
VEE_TEXT = "R(a,b), R(a,c)"


def batch_request(*pairs, **kwargs):
    return BatchRequest(pairs=tuple(PairSpec(q1, q2) for q1, q2 in pairs), **kwargs)


class TestServiceGate:
    def test_depth_counts_running_and_waiting(self):
        gate = ServiceGate()
        assert gate.depth() == 0
        gate.acquire()
        assert gate.depth() == 1
        gate.release()
        assert gate.depth() == 0

    def test_priority_orders_the_wait_line(self):
        gate = ServiceGate()
        gate.acquire("normal")  # hold the gate so the others have to queue
        order = []

        def worker(priority):
            gate.acquire(priority)
            order.append(priority)
            gate.release()

        threads = []
        for priority in ("low", "normal", "high"):
            thread = threading.Thread(target=worker, args=(priority,))
            thread.start()
            threads.append(thread)
            # Ensure deterministic arrival order before starting the next.
            deadline = time.time() + 5
            while gate.waiting() < len(threads) and time.time() < deadline:
                time.sleep(0.005)
            assert gate.waiting() == len(threads)
        gate.release()
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["high", "normal", "low"]


class TestDaemonBatches:
    def test_batch_verdicts_and_plan_cache_across_requests(self):
        daemon = ContainmentDaemon()
        first = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        assert first.ok
        assert first.verdicts[0].status == "contained"
        assert first.verdicts[0].source == "solved"
        second = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        assert second.verdicts[0].source == "plan-cache"
        assert second.stats["cache_hits"] == 1
        assert second.stats["pipelines_run"] == first.stats["pipelines_run"]
        assert daemon.requests_served == 2

    def test_warmup_pre_solves_so_the_first_request_hits_warm_paths(self):
        daemon = ContainmentDaemon()
        daemon.warmup()
        # The warmup batch went through the real service: replaying a
        # warmup pair must answer from the plan cache, not a fresh solve.
        response = daemon.handle_batch(
            batch_request(ContainmentDaemon.WARMUP_PAIRS[0])
        )
        assert response.ok
        assert response.verdicts[0].source == "plan-cache"
        # Warmup is pre-traffic plumbing, not served traffic.
        assert daemon.requests_served == 1

    def test_warmup_never_raises(self, monkeypatch):
        daemon = ContainmentDaemon()
        monkeypatch.setattr(
            daemon.service, "run", lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("boom")
            )
        )
        daemon.warmup()  # best-effort: a failed warmup must not kill boot

    def test_unparseable_pair_is_a_request_error(self):
        daemon = ContainmentDaemon()
        response = daemon.handle_batch(batch_request(("R(x,y", VEE_TEXT)))
        assert not response.ok
        assert "unparseable" in response.error

    def test_deadline_zero_returns_deadline_exceeded_verdicts(self):
        daemon = ContainmentDaemon()
        response = daemon.handle_batch(
            batch_request((TRIANGLE_TEXT, VEE_TEXT), deadline_seconds=0.0)
        )
        assert response.ok
        assert response.verdicts[0].status == "unknown"
        assert response.verdicts[0].method == "deadline-exceeded"
        assert response.stats["pairs_deadline_exceeded"] == 1

    def test_default_deadline_applies_when_request_has_none(self):
        daemon = ContainmentDaemon(shed=ShedOptions(default_deadline=0.0))
        response = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        assert response.verdicts[0].method == "deadline-exceeded"


def _run_while_gate_is_held(daemon, request):
    """Submit ``request`` while the gate is occupied; release once it queues.

    Exercises the real admission path: the daemon's gate is busy (depth 1)
    when the request arrives, and is released as soon as the request has
    joined the wait line (or was shed without joining).
    """
    daemon.gate.acquire()
    box = {}

    def submit():
        box["response"] = daemon.handle_batch(request)

    thread = threading.Thread(target=submit)
    thread.start()
    deadline = time.time() + 10
    while (
        daemon.gate.waiting() == 0 and thread.is_alive() and time.time() < deadline
    ):
        time.sleep(0.005)
    daemon.gate.release()
    thread.join(timeout=60)
    assert not thread.is_alive()
    return box["response"]


class TestAdmissionControl:
    def test_queue_full_rejection(self):
        daemon = ContainmentDaemon(
            shed=ShedOptions(max_queue_depth=1, policy="reject")
        )
        daemon.gate.acquire()  # one request is running: the line is full
        try:
            response = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        finally:
            daemon.gate.release()
        assert not response.ok
        assert response.error == "queue-full"
        assert response.shed == "rejected"
        assert response.stats["requests_rejected"] == 1
        assert daemon.requests_served == 0
        assert daemon.gate.waiting() == 0  # a shed request never joined the line

    def test_queue_below_bound_admits(self):
        daemon = ContainmentDaemon(
            shed=ShedOptions(max_queue_depth=2, policy="reject")
        )
        response = _run_while_gate_is_held(
            daemon, batch_request((TRIANGLE_TEXT, VEE_TEXT))
        )
        assert response.ok
        assert not response.degraded

    def test_degrade_policy_runs_with_clamped_budget(self):
        daemon = ContainmentDaemon(
            shed=ShedOptions(
                max_queue_depth=1, policy="degrade", degrade_pair_budget=1e-9
            )
        )
        response = _run_while_gate_is_held(
            daemon, batch_request((TRIANGLE_TEXT, VEE_TEXT))
        )
        assert response.ok
        assert response.degraded
        assert response.verdicts[0].method == "budget-exhausted"
        assert response.stats["requests_degraded"] == 1

    def test_degraded_requests_share_the_plan_cache(self):
        daemon = ContainmentDaemon(
            shed=ShedOptions(max_queue_depth=1, policy="degrade", degrade_pair_budget=30.0)
        )
        warm = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        assert warm.verdicts[0].source == "solved"
        degraded = _run_while_gate_is_held(
            daemon, batch_request((TRIANGLE_TEXT, VEE_TEXT))
        )
        assert degraded.degraded
        assert degraded.verdicts[0].source == "plan-cache"

    def test_burst_admission_respects_the_bound(self):
        # Regression for the check-then-act race: N concurrent arrivals must
        # never exceed max_queue_depth, so with the gate held and depth 1,
        # every one of a burst of 4 must be rejected.
        daemon = ContainmentDaemon(
            shed=ShedOptions(max_queue_depth=1, policy="reject")
        )
        daemon.gate.acquire()
        try:
            responses = []
            threads = [
                threading.Thread(
                    target=lambda: responses.append(
                        daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
                    )
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            daemon.gate.release()
        assert len(responses) == 4
        assert all(response.shed == "rejected" for response in responses)
        assert daemon.service.stats.requests_rejected == 4

    def test_internal_errors_become_error_responses(self):
        daemon = ContainmentDaemon()

        def explode(pairs, **kwargs):
            raise RuntimeError("solver went sideways")

        daemon.service.run = explode
        response = daemon.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        assert not response.ok
        assert "solver went sideways" in response.error
        # The gate was released: the daemon still serves the next request.
        daemon.service.run = ContainmentDaemon().service.run
        assert daemon.gate.depth() == 0

    def test_real_contention_rejects_while_a_request_runs(self):
        daemon = ContainmentDaemon(
            shed=ShedOptions(max_queue_depth=1, policy="reject")
        )
        release = threading.Event()
        started = threading.Event()
        original_run = daemon.service.run

        def slow_run(pairs, **kwargs):
            started.set()
            assert release.wait(timeout=10)
            return original_run(pairs, **kwargs)

        daemon.service.run = slow_run
        results = {}

        def first():
            results["first"] = daemon.handle_batch(
                batch_request((TRIANGLE_TEXT, VEE_TEXT))
            )

        thread = threading.Thread(target=first)
        thread.start()
        assert started.wait(timeout=10)
        # The first request is running (depth 1 = the bound): shed this one.
        results["second"] = daemon.handle_batch(
            batch_request((VEE_TEXT, TRIANGLE_TEXT))
        )
        release.set()
        thread.join(timeout=30)
        assert results["second"].shed == "rejected"
        assert results["first"].ok

    def test_shed_options_validation(self):
        with pytest.raises(ValueError):
            ShedOptions(max_queue_depth=0)
        with pytest.raises(ValueError):
            ShedOptions(policy="drop")
        with pytest.raises(ValueError):
            ShedOptions(degrade_pair_budget=0.0)


@pytest.fixture
def live_daemon(tmp_path):
    """A real daemon served over a Unix socket in a background thread."""
    socket_path = str(tmp_path / "daemon.sock")
    ready = threading.Event()
    holder = {}

    def on_ready(daemon):
        holder["daemon"] = daemon
        ready.set()

    thread = threading.Thread(
        target=serve,
        args=(parse_address(socket_path),),
        kwargs={
            "options": BatchOptions(on_error="capture"),
            "shed": ShedOptions(),
            "ready_callback": on_ready,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)
    client = DaemonClient(socket_path, timeout=60.0)
    yield client, holder["daemon"], socket_path
    try:
        client.stop()
    except DaemonUnavailable:
        pass
    thread.join(timeout=10)


class TestDaemonOverTheWire:
    def test_ping_status_and_batch(self, live_daemon):
        client, daemon, socket_path = live_daemon
        assert client.ping()["ok"]
        status = client.status()
        assert status["queue_depth"] == 0
        assert status["address"] == socket_path
        response = client.batch([(TRIANGLE_TEXT, VEE_TEXT), (VEE_TEXT, TRIANGLE_TEXT)])
        assert response.ok
        assert [v.status for v in response.verdicts] == ["contained", "not_contained"]
        replay = client.batch([(TRIANGLE_TEXT, VEE_TEXT)])
        assert replay.verdicts[0].source == "plan-cache"
        assert client.status()["requests_served"] == 2

    def test_malformed_line_gets_an_error_response_and_connection_survives(
        self, live_daemon
    ):
        client, daemon, _ = live_daemon
        response = json.loads(client._roundtrip("this is not json"))
        assert response["ok"] is False
        assert "JSON" in response["error"]
        assert client.ping()["ok"]  # the daemon is still healthy

    def test_stop_shuts_down_and_unlinks_the_socket(self, live_daemon):
        client, daemon, socket_path = live_daemon
        client.stop()
        deadline = time.time() + 10
        while daemon_available(socket_path, timeout=0.3) and time.time() < deadline:
            time.sleep(0.05)
        assert not daemon_available(socket_path, timeout=0.3)
        with pytest.raises(DaemonUnavailable):
            DaemonClient(socket_path, timeout=1.0).ping()


class TestClientErrors:
    def test_unreachable_socket_raises_daemon_unavailable(self, tmp_path):
        with pytest.raises(DaemonUnavailable):
            DaemonClient(str(tmp_path / "nope.sock"), timeout=1.0).ping()

    def test_unreachable_tcp_raises_daemon_unavailable(self):
        # A port from the TEST-NET-reserved range nobody listens on locally.
        with pytest.raises(DaemonUnavailable):
            DaemonClient("127.0.0.1:1", timeout=1.0).ping()

    def test_daemon_available_is_false_without_a_daemon(self, tmp_path):
        assert not daemon_available(str(tmp_path / "ghost.sock"), timeout=0.3)

    def test_batch_read_timeout_follows_the_deadline(self, tmp_path):
        # A deadline-free batch must wait indefinitely (the daemon may
        # legitimately take longer than any control-op timeout); a deadline
        # bounds the wait at deadline + margin.
        client = DaemonClient(str(tmp_path / "x.sock"), timeout=5.0)
        captured = {}

        def fake_roundtrip(line, timeout="unset"):
            captured["timeout"] = timeout
            return encode_batch_response(BatchResponse(ok=True))

        client._roundtrip = fake_roundtrip
        client.batch([(TRIANGLE_TEXT, VEE_TEXT)])
        assert captured["timeout"] is None
        client.batch([(TRIANGLE_TEXT, VEE_TEXT)], deadline_seconds=10.0)
        assert captured["timeout"] == 10.0 + DaemonClient.DEADLINE_MARGIN


class _FakeSocket:
    """A scripted socket: each recv() pops the next chunk (or raises it)."""

    def __init__(self, chunks=()):
        self.chunks = list(chunks)
        self.sent = b""
        self.closed = False

    def sendall(self, data):
        self.sent += data

    def recv(self, _size):
        if not self.chunks:
            return b""  # EOF
        item = self.chunks.pop(0)
        if isinstance(item, BaseException):
            raise item
        return item

    def close(self):
        self.closed = True


class TestClientReadPath:
    """The mid-batch truncation bugfix: connect failures fall back
    (:class:`DaemonUnavailable`), but once the request is on the wire every
    failure is :class:`DaemonConnectionBroken` with partial-read context —
    re-running the batch elsewhere could double-execute it."""

    def _client(self, monkeypatch, fake):
        import repro.service.daemon as daemon_module

        monkeypatch.setattr(daemon_module, "_connect", lambda *a, **k: fake)
        return DaemonClient("/tmp/fake.sock", timeout=5.0)

    def test_broken_is_not_a_fallback_signal(self):
        # The CLI falls back in-process on DaemonUnavailable only; a broken
        # connection must never be mistaken for "no daemon there".
        assert not issubclass(DaemonConnectionBroken, DaemonUnavailable)

    def test_complete_response_roundtrips(self, monkeypatch):
        fake = _FakeSocket([b'{"ok": true}\n'])
        client = self._client(monkeypatch, fake)
        assert client._roundtrip('{"op": "ping"}') == '{"ok": true}\n'
        assert fake.sent == b'{"op": "ping"}\n'
        assert fake.closed

    def test_chunked_response_is_reassembled(self, monkeypatch):
        fake = _FakeSocket([b'{"ok": ', b"tr", b"ue}\n"])
        client = self._client(monkeypatch, fake)
        assert client._roundtrip("x") == '{"ok": true}\n'

    def test_eof_before_any_byte_is_connection_broken(self, monkeypatch):
        client = self._client(monkeypatch, _FakeSocket([]))
        with pytest.raises(DaemonConnectionBroken, match="before sending any"):
            client._roundtrip("x")

    def test_eof_mid_response_carries_partial_read_context(self, monkeypatch):
        fake = _FakeSocket([b'{"ok": tru'])  # EOF mid-line
        client = self._client(monkeypatch, fake)
        with pytest.raises(DaemonConnectionBroken) as excinfo:
            client._roundtrip("x")
        message = str(excinfo.value)
        assert "10 bytes" in message
        assert '{"ok": tru' in message

    def test_read_timeout_is_connection_broken_not_unavailable(self, monkeypatch):
        fake = _FakeSocket([socket.timeout("timed out")])
        client = self._client(monkeypatch, fake)
        with pytest.raises(DaemonConnectionBroken, match="no complete response"):
            client._roundtrip("x")

    def test_reset_mid_read_is_connection_broken(self, monkeypatch):
        fake = _FakeSocket([b'{"ok"', ConnectionResetError("peer reset")])
        client = self._client(monkeypatch, fake)
        with pytest.raises(DaemonConnectionBroken, match="after 5 bytes"):
            client._roundtrip("x")

    def test_send_failure_is_still_unavailable(self, monkeypatch):
        # The request never left: falling back in-process is safe.
        fake = _FakeSocket()
        fake.sendall = lambda data: (_ for _ in ()).throw(BrokenPipeError("gone"))
        client = self._client(monkeypatch, fake)
        with pytest.raises(DaemonUnavailable, match="could not send"):
            client._roundtrip("x")
