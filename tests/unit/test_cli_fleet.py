"""Unit tests for the CLI fleet surface (parsing, routing, no-fallback).

The socket-backed cases serve real daemon replicas and the gateway from
background threads inside this process; the full child-process path
(``repro fleet start`` spawning real replicas) is exercised end to end by
``scripts/fleet_smoke.py`` in the ``fleet-smoke`` CI job.
"""

import asyncio
import io
import json
import threading

import pytest

import repro.cli as cli_module
from repro.cli import build_parser, main
from repro.service import BatchOptions
from repro.service.daemon import DaemonConnectionBroken, ShedOptions, serve
from repro.service.fleet import FleetGateway, ReplicaSpec
from repro.service.protocol import parse_address
from repro.service.ring import DEFAULT_VNODES

PAIRS_TEXT = (
    "R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)\n"
    "R(a,b), R(a,c) | R(x,y), R(y,z), R(z,x)\n"
)


def run_cli(*argv):
    buffer = io.StringIO()
    code = main(argv, out=buffer)
    return code, buffer.getvalue()


@pytest.fixture
def live_fleet(tmp_path):
    """Two in-thread replicas behind an in-thread gateway."""
    replica_paths = [str(tmp_path / f"replica-{i}.sock") for i in range(2)]
    threads = []
    for path in replica_paths:
        ready = threading.Event()
        thread = threading.Thread(
            target=serve,
            args=(parse_address(path),),
            kwargs={
                "options": BatchOptions(on_error="capture"),
                "shed": ShedOptions(),
                "ready_callback": lambda daemon: ready.set(),
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        threads.append(thread)

    gateway_path = str(tmp_path / "gateway.sock")
    gateway = FleetGateway(
        [
            ReplicaSpec(name=f"replica-{i}", address=path)
            for i, path in enumerate(replica_paths)
        ],
        probe_interval=None,
    )
    gateway_ready = threading.Event()
    gateway_thread = threading.Thread(
        target=lambda: asyncio.run(
            gateway.serve(
                parse_address(gateway_path),
                ready_callback=lambda _gw: gateway_ready.set(),
            )
        ),
        daemon=True,
    )
    gateway_thread.start()
    assert gateway_ready.wait(timeout=10)

    yield gateway_path

    for path in (gateway_path, *replica_paths):
        run_cli("daemon", "stop", "--socket", path)
    gateway_thread.join(timeout=10)
    for thread in threads:
        thread.join(timeout=10)


class TestArgumentParsing:
    def test_fleet_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["fleet", "start", "--dir", "/tmp/fleet", "--replicas", "4"],
            ["fleet", "start", "--socket", "/tmp/gw.sock", "--jobs", "2"],
            ["fleet", "stop", "--dir", "/tmp/fleet"],
            ["fleet", "status", "--socket", "/tmp/gw.sock", "--prom"],
            ["fleet", "gateway", "--manifest", "/tmp/fleet/fleet.json"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.handler)

    def test_batch_fleet_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["batch", "p.txt", "--fleet", "/tmp/gw.sock"])
        assert args.fleet == "/tmp/gw.sock"
        args = parser.parse_args(["batch", "p.txt"])
        assert args.fleet is None

    def test_gateway_requires_a_manifest(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "gateway"])

    def test_ring_vnodes_flag_parses_with_a_manifest_stable_default(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "start"])
        assert args.ring_vnodes == DEFAULT_VNODES
        args = parser.parse_args(["fleet", "start", "--ring-vnodes", "16"])
        assert args.ring_vnodes == 16

    def test_dispatch_parallelism_flag_defaults_to_auto(self):
        parser = build_parser()
        args = parser.parse_args(["fleet", "start"])
        assert args.dispatch_parallelism is None  # auto: the host's cores
        args = parser.parse_args(
            ["fleet", "start", "--dispatch-parallelism", "4"]
        )
        assert args.dispatch_parallelism == 4


class TestBatchViaFleet:
    def test_fleet_and_daemon_are_mutually_exclusive(self, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch", str(pairs), "--fleet", "/tmp/gw.sock", "--daemon", "/tmp/d.sock"
        )
        assert code == 2
        assert "mutually exclusive" in output

    def test_batch_through_a_live_gateway(self, live_fleet, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli("batch", str(pairs), "--fleet", live_fleet)
        assert code == 0
        records = [json.loads(line) for line in output.splitlines()]
        assert [r["status"] for r in records] == ["contained", "not_contained"]
        assert [r["index"] for r in records] == [0, 1]

    def test_fleet_status_via_socket(self, live_fleet):
        code, output = run_cli("fleet", "status", "--socket", live_fleet)
        assert code == 0
        status = json.loads(output)
        assert status["role"] == "gateway"
        assert status["fleet_size"] == 2
        assert {r["name"] for r in status["replicas"]} == {
            "replica-0",
            "replica-1",
        }

    def test_fleet_status_prom_exposes_gateway_metrics(self, live_fleet):
        code, output = run_cli("fleet", "status", "--socket", live_fleet, "--prom")
        assert code == 0
        assert "repro_gateway_replicas_healthy" in output

    def test_missing_gateway_is_loud_not_a_silent_fallback(self, tmp_path, capsys):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)
        code, output = run_cli(
            "batch", str(pairs), "--fleet", str(tmp_path / "missing.sock")
        )
        assert code == 1
        assert "error:" in output
        assert "deciding in-process instead" not in capsys.readouterr().err

    def test_connection_broken_never_falls_back_in_process(
        self, tmp_path, monkeypatch, capsys
    ):
        # A mid-batch disconnect means the daemon may already be computing
        # the batch: re-running it in-process would double-execute, so the
        # CLI must surface the error instead of falling back.
        pairs = tmp_path / "pairs.txt"
        pairs.write_text(PAIRS_TEXT)

        class BrokenClient:
            def __init__(self, *args, **kwargs):
                pass

            def batch(self, *args, **kwargs):
                raise DaemonConnectionBroken("closed mid-response after 7 bytes")

        monkeypatch.setattr(cli_module, "DaemonClient", BrokenClient)
        code, output = run_cli(
            "batch", str(pairs), "--daemon", str(tmp_path / "any.sock")
        )
        assert code == 1
        assert "closed mid-response" in output
        assert "deciding in-process instead" not in capsys.readouterr().err
