"""Unit tests for the set-semantics containment baseline (Chandra–Merlin)."""

import pytest

from repro.cq.chandra_merlin import (
    containment_homomorphism,
    set_contained,
    set_equivalent,
)
from repro.cq.parser import parse_query
from repro.exceptions import QueryError


def test_triangle_set_contained_in_path(triangle_query, path2_query):
    # Set semantics: the triangle maps onto the 2-path pattern's image...
    # there is a homomorphism path2 -> triangle, so triangle ⊆_set path2.
    assert set_contained(triangle_query, path2_query)
    # ...but not conversely: no homomorphism triangle -> path2 (path2 has no cycle).
    assert not set_contained(path2_query, triangle_query)


def test_set_containment_with_heads():
    q1 = parse_query("(x) :- R(x, y), R(y, z)")
    q2 = parse_query("(x) :- R(x, y)")
    assert set_contained(q1, q2)
    assert not set_contained(q2, q1)


def test_containment_homomorphism_respects_heads():
    q1 = parse_query("(x, z) :- R(x, y), R(y, z)")
    q2 = parse_query("(a, b) :- R(a, c), R(d, b)")
    witness = containment_homomorphism(q1, q2)
    assert witness is not None
    assert witness["a"] == "x"
    assert witness["b"] == "z"


def test_set_equivalence():
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("(u) :- R(u, v), R(u, w)")
    assert set_equivalent(q1, q2)


def test_bag_set_divergence_example():
    # Classic: under set semantics R(x,y),R(x,z) ≡ R(x,y), but under bag
    # semantics the double atom counts pairs and is NOT contained in the single
    # atom query.  Here we only check the set-semantics side.
    single = parse_query("(x) :- R(x, y)")
    double = parse_query("(x) :- R(x, y), R(x, z)")
    assert set_contained(double, single)
    assert set_contained(single, double)


def test_head_arity_mismatch_rejected():
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("R(x, y)")
    with pytest.raises(QueryError):
        set_contained(q1, q2)
