"""Tests for the batch containment service, engine and plan cache."""

import pytest

from repro.core.containment import ContainmentStatus, decide_containment
from repro.cq.parser import parse_query
from repro.exceptions import QueryError
from repro.infotheory.maxiip import decide_max_ii, decide_max_ii_many
from repro.service import (
    BatchOptions,
    ContainmentService,
    PlanCache,
    decide_containment_many,
)
from repro.workloads.generators import (
    cycle_query,
    mixed_containment_pairs,
    path_query,
    random_max_ii,
)


TRIANGLE = parse_query("R(x,y), R(y,z), R(z,x)")
VEE = parse_query("R(a,b), R(a,c)")
TRIANGLE_ISO = parse_query("R(u,v), R(v,w), R(w,u)")
PATH3 = parse_query("R(a,b), R(b,c), R(c,d)")


class TestDecideMaxIIMany:
    def test_matches_sequential_over_each_cone(self):
        ground = tuple(f"X{i}" for i in range(1, 5))
        inequalities = [random_max_ii(4, 1 + seed % 3, seed=seed) for seed in range(8)]
        for over in ("gamma", "normal", "modular"):
            single = [
                decide_max_ii(iq, over=over, ground=ground).valid for iq in inequalities
            ]
            many = [
                v.valid
                for v in decide_max_ii_many(inequalities, over=over, ground=ground)
            ]
            assert many == single

    def test_violating_points_actually_violate(self):
        ground = tuple(f"X{i}" for i in range(1, 4))
        inequalities = [random_max_ii(3, 2, seed=seed) for seed in range(10)]
        for verdict, inequality in zip(
            decide_max_ii_many(inequalities, over="gamma", ground=ground), inequalities
        ):
            if not verdict.valid:
                worst = max(
                    branch.with_ground(ground).evaluate(verdict.violating_function)
                    for branch in inequality.branches
                )
                assert worst < 0

    def test_empty_input(self):
        assert decide_max_ii_many([], over="gamma", ground=("A",)) == []

    def test_batched_cones_respect_small_margins(self):
        # Regression: the block solver's slack threshold must scale with the
        # margin, or margins ≤ 0.5 flip infeasible blocks to feasible.
        from repro.infotheory.cones import cone_by_name
        from repro.infotheory.expressions import LinearExpression

        ground = ("a", "b")
        entropy = LinearExpression.entropy_term(ground, ("a", "b"))
        for name in ("gamma", "normal", "modular"):
            cone = cone_by_name(name, ground)
            for margin in (0.25, 0.5, 1.0, 2.0):
                single = cone.find_point_below([entropy], margin=margin)
                [batched] = cone.find_points_below_many([[entropy]], margin=margin)
                assert (single is None) == (batched is None), (name, margin)
                assert batched is None  # h(ab) ≤ -margin has no cone solution

    def test_mixed_grounds_need_explicit_ground(self):
        with pytest.raises(ValueError):
            decide_max_ii_many(
                [random_max_ii(2, 1, seed=0), random_max_ii(3, 1, seed=0)]
            )


class TestContainmentService:
    def test_statuses_match_sequential(self):
        pairs = [
            (TRIANGLE, VEE),
            (PATH3, VEE),
            (cycle_query(4), PATH3),
            (path_query(2), path_query(4)),
        ]
        batch = decide_containment_many(pairs)
        for (q1, q2), result in zip(pairs, batch):
            assert result.status == decide_containment(q1, q2).status

    def test_batch_dedup_of_exact_and_isomorphic_pairs(self):
        service = ContainmentService()
        report = service.run(
            [(TRIANGLE, VEE), (TRIANGLE, VEE), (TRIANGLE_ISO, VEE)]
        )
        assert [o.source for o in report.outcomes] == [
            "solved",
            "batch-dedup",
            "batch-dedup",
        ]
        assert service.stats.pipelines_run == 1
        assert service.stats.batch_duplicates == 2
        statuses = {r.status for r in report.results}
        assert statuses == {ContainmentStatus.CONTAINED}

    def test_plan_cache_across_calls(self):
        service = ContainmentService()
        first = service.run([(TRIANGLE, VEE)])
        second = service.run([(TRIANGLE_ISO, VEE)])
        assert first.outcomes[0].source == "solved"
        assert second.outcomes[0].source == "plan-cache"
        assert service.stats.cache_hits == 1
        assert second.results[0].status == ContainmentStatus.CONTAINED

    def test_canonicalize_off_disables_dedup(self):
        service = ContainmentService(canonicalize=False)
        report = service.run([(TRIANGLE, VEE), (TRIANGLE, VEE)])
        assert [o.source for o in report.outcomes] == ["solved", "solved"]
        assert service.stats.batch_duplicates == 0

    def test_chunk_size_one_still_correct(self):
        pairs = mixed_containment_pairs(12, seed=3)
        batch = decide_containment_many(pairs, chunk_size=1)
        for (q1, q2), result in zip(pairs, batch):
            assert result.status == decide_containment(q1, q2).status

    def test_parallel_workers_match_sequential(self):
        pairs = mixed_containment_pairs(16, seed=5)
        batch = decide_containment_many(pairs, max_workers=4, chunk_size=4)
        for (q1, q2), result in zip(pairs, batch):
            assert result.status == decide_containment(q1, q2).status

    def test_head_arity_mismatch_raises_by_default(self):
        q_headed = parse_query("(x) :- R(x, y)")
        with pytest.raises(QueryError):
            decide_containment_many([(q_headed, VEE)])

    def test_on_error_capture_reports_unknown(self):
        q_headed = parse_query("(x) :- R(x, y)")
        results = decide_containment_many(
            [(q_headed, VEE), (TRIANGLE, VEE)], on_error="capture"
        )
        assert results[0].status == ContainmentStatus.UNKNOWN
        assert results[0].method == "error"
        assert results[1].status == ContainmentStatus.CONTAINED

    def test_pair_budget_zero_reports_budget_exhausted(self):
        results = decide_containment_many(
            [(TRIANGLE, VEE)], pair_budget=0.0, on_error="capture"
        )
        assert results[0].status == ContainmentStatus.UNKNOWN
        assert results[0].method == "budget-exhausted"

    def test_budget_exhausted_results_are_not_cached(self):
        service = ContainmentService(pair_budget=0.0)
        service.run([(TRIANGLE, VEE)])
        assert len(service.cache) == 0

    def test_stats_snapshot_counts_grouped_solves(self):
        service = ContainmentService(chunk_size=32)
        service.run(mixed_containment_pairs(20, seed=9))
        stats = service.stats.as_dict()
        assert stats["pairs_submitted"] == 20
        assert stats["block_solves"] >= 1
        assert stats["lp_solves_avoided"] >= 1
        assert stats["groups"]

    def test_single_pair_convenience(self):
        service = ContainmentService()
        result = service.decide(TRIANGLE, VEE)
        assert result.status == ContainmentStatus.CONTAINED

    def test_invalid_pair_type_rejected(self):
        with pytest.raises(QueryError):
            decide_containment_many([("not a query", VEE)])

    def test_options_object_with_overrides(self):
        options = BatchOptions(chunk_size=8)
        service = ContainmentService(options, max_workers=2)
        assert service.options.chunk_size == 8
        assert service.options.max_workers == 2


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        sentinel = decide_containment(TRIANGLE, VEE)
        cache.put("a", sentinel)
        cache.put("b", sentinel)
        assert cache.get("a") is sentinel  # refresh "a"
        cache.put("c", sentinel)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_hit_miss_counters(self):
        cache = PlanCache()
        sentinel = decide_containment(TRIANGLE, VEE)
        assert cache.get("missing") is None
        cache.put("k", sentinel)
        assert cache.get("k") is sentinel
        assert cache.hits == 1
        assert cache.misses == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)
