"""Unit tests for the plan operators, the query compiler and the SQL emitter."""

import pytest

from repro.cq.evaluation import evaluate_bag, evaluate_set
from repro.cq.parser import parse_query
from repro.cq.structures import Structure
from repro.exceptions import DecompositionError, StructureError
from repro.ra.bagrel import BagRelation
from repro.ra.compile import (
    atom_plan,
    bag_database,
    compile_query,
    evaluate_query_bag,
    evaluate_query_set,
    greedy_atom_order,
    yannakakis_set_evaluation,
)
from repro.ra.operators import (
    CountGroupOp,
    DistinctOp,
    JoinOp,
    ProjectOp,
    ScanOp,
    SelectEqualOp,
    UnionAllOp,
    join_all,
)
from repro.ra.sql import containment_check_sql, create_table_statements, to_sql
from repro.cq.query import Atom, ConjunctiveQuery


@pytest.fixture
def graph_db():
    edges = {(0, 1), (1, 2), (2, 0), (1, 0)}
    return Structure(domain=frozenset(range(3)), relations={"R": edges})


@pytest.fixture
def two_table_db():
    return Structure(
        domain=frozenset({"a", "b", "c", 1, 2}),
        relations={
            "Person": {("a",), ("b",), ("c",)},
            "Likes": {("a", 1), ("a", 2), ("b", 1)},
        },
    )


def test_scan_renames_stored_columns(graph_db):
    database = bag_database(graph_db)
    scan = ScanOp(relation="R", columns=("src", "dst"))
    result = scan.evaluate(database)
    assert result.attributes == ("src", "dst")
    assert result.multiplicity((0, 1)) == 1


def test_scan_unknown_relation_raises(graph_db):
    database = bag_database(graph_db)
    with pytest.raises(StructureError):
        ScanOp(relation="S", columns=("x",)).evaluate(database)


def test_scan_arity_mismatch_raises(graph_db):
    database = bag_database(graph_db)
    with pytest.raises(StructureError):
        ScanOp(relation="R", columns=("only_one",)).evaluate(database)


def test_plan_explain_and_metrics(graph_db):
    query = parse_query("R(x,y), R(y,z)")
    plan = compile_query(query)
    text = plan.explain()
    assert "CountGroup" in text and "Join" in text and "Scan R" in text
    assert plan.operator_count() >= 5
    assert plan.depth() >= 3
    assert str(plan) == text


def test_join_all_requires_nodes():
    with pytest.raises(StructureError):
        join_all([])


def test_union_all_and_distinct_operators(graph_db):
    database = bag_database(graph_db)
    scan = ScanOp(relation="R", columns=("a", "b"))
    doubled = UnionAllOp(left=scan, right=scan)
    assert len(doubled.evaluate(database)) == 2 * len(graph_db.tuples("R"))
    assert len(DistinctOp(child=doubled).evaluate(database)) == len(graph_db.tuples("R"))


def test_select_equal_operator(two_table_db):
    database = bag_database(two_table_db)
    scan = ScanOp(relation="Likes", columns=("who", "what"))
    selected = SelectEqualOp(child=scan, attribute="who", value="a").evaluate(database)
    assert len(selected) == 2


def test_atom_plan_handles_repeated_variables(graph_db):
    database = bag_database(graph_db)
    loops = atom_plan(Atom("R", ("x", "x"))).evaluate(database)
    assert loops.attributes == ("x",)
    assert len(loops) == 0  # the fixture has no self-loops


def test_greedy_atom_order_prefers_connected_atoms():
    query = parse_query("S(u,v), R(x,y), R(y,z), T(z,u)")
    ordered = greedy_atom_order(query)
    bound = set(ordered[0].variable_set)
    for atom in ordered[1:-1]:
        # every intermediate atom shares a variable with the already-joined prefix
        # unless the query is disconnected at that point.
        if atom.variable_set & bound:
            assert True
        bound |= atom.variable_set
    assert {a.relation for a in ordered} == {"R", "S", "T"}


def test_compiled_plan_matches_homomorphism_evaluator_boolean(graph_db):
    for text in ["R(x,y), R(y,z)", "R(x,y), R(y,x)", "R(x,x)", "R(x,y), R(y,z), R(z,x)"]:
        query = parse_query(text)
        assert evaluate_query_bag(query, graph_db) == evaluate_bag(query, graph_db)


def test_compiled_plan_matches_homomorphism_evaluator_with_head(two_table_db):
    query = parse_query("Q(p) :- Person(p), Likes(p, i)")
    assert evaluate_query_bag(query, two_table_db) == evaluate_bag(query, two_table_db)
    assert evaluate_query_set(query, two_table_db) == evaluate_set(query, two_table_db)


def test_compiled_plan_on_disconnected_query(graph_db):
    query = parse_query("R(x,y), R(u,v)")
    expected = evaluate_bag(query, graph_db)
    assert evaluate_query_bag(query, graph_db) == expected


def test_count_group_answer_matches_evaluate(two_table_db):
    query = parse_query("Q(p) :- Person(p), Likes(p, i)")
    plan = compile_query(query)
    assert isinstance(plan, CountGroupOp)
    database = bag_database(two_table_db)
    assert plan.answer(database) == plan.child.evaluate(database).group_count(plan.group_attributes)


def test_yannakakis_matches_set_semantics_on_acyclic(two_table_db):
    query = parse_query("Q(p) :- Person(p), Likes(p, i)")
    assert yannakakis_set_evaluation(query, two_table_db) == evaluate_set(query, two_table_db)


def test_yannakakis_on_path_query(graph_db):
    query = parse_query("Q(x, z) :- R(x,y), R(y,z)")
    assert yannakakis_set_evaluation(query, graph_db) == evaluate_set(query, graph_db)


def test_yannakakis_boolean_query(graph_db):
    query = parse_query("R(x,y), R(y,z)")
    result = yannakakis_set_evaluation(query, graph_db)
    assert result == evaluate_set(query, graph_db)


def test_yannakakis_rejects_cyclic_queries(graph_db):
    triangle = parse_query("R(x,y), R(y,z), R(z,x)")
    with pytest.raises(DecompositionError):
        yannakakis_set_evaluation(triangle, graph_db)


# ---------------------------------------------------------------------- #
# SQL rendering
# ---------------------------------------------------------------------- #
def test_to_sql_boolean_query():
    query = parse_query("R(x,y), R(y,z)")
    sql = to_sql(query)
    assert sql.startswith("SELECT COUNT(*) AS multiplicity")
    assert "R AS r0" in sql and "R AS r1" in sql
    assert "r0.a2 = r1.a1" in sql
    assert "GROUP BY" not in sql


def test_to_sql_with_head_and_repeated_variable():
    query = ConjunctiveQuery(
        atoms=(Atom("R", ("x", "x", "y")), Atom("S", ("y",))), head=("y",), name="Q"
    )
    sql = to_sql(query)
    assert "GROUP BY r0.a3" in sql
    assert "r0.a1 = r0.a2" in sql
    assert "COUNT(*)" in sql


def test_to_sql_compact_mode_single_line():
    query = parse_query("R(x,y)")
    assert "\n" not in to_sql(query, pretty=False)


def test_create_table_statements():
    query = parse_query("R(x,y), S(y)")
    statements = create_table_statements(query.vocabulary)
    assert any(s.startswith("CREATE TABLE R (") for s in statements)
    assert any("a1 TEXT NOT NULL" in s for s in statements)


def test_containment_check_sql_mentions_both_queries():
    q1 = parse_query("Q(x) :- R(x,y), R(y,x)", name="Q1")
    q2 = parse_query("Q(x) :- R(x,y)", name="Q2")
    sql1, sql2, comparison = containment_check_sql(q1, q2)
    assert "COUNT(*)" in sql1 and "COUNT(*)" in sql2
    assert "WITH q1 AS" in comparison and "LEFT JOIN" in comparison
