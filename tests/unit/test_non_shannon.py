"""Unit tests for the Zhang–Yeung non-Shannon inequality extension."""

import pytest

from repro.infotheory.counterexample import CounterexampleSearcher
from repro.infotheory.expressions import MaxInformationInequality
from repro.infotheory.non_shannon import (
    is_shannon_provable,
    zhang_yeung_inequality,
    zhang_yeung_violating_polymatroid,
)
from repro.infotheory.polymatroid import is_polymatroid

GROUND = ("A", "B", "C", "D")


def test_zhang_yeung_is_not_shannon_provable():
    inequality = zhang_yeung_inequality(GROUND)
    assert not is_shannon_provable(inequality)


def test_zhang_yeung_violating_polymatroid_is_a_gap_witness():
    inequality = zhang_yeung_inequality(GROUND)
    witness = zhang_yeung_violating_polymatroid(GROUND)
    assert is_polymatroid(witness, tolerance=1e-7)
    assert inequality.expression.evaluate(witness) < -1e-7


def test_zhang_yeung_holds_on_entropic_families():
    # The inequality is valid for entropic functions: the counterexample
    # searcher (normal, modular, group-characterizable, random relations)
    # must not find any violation.
    inequality = zhang_yeung_inequality(GROUND)
    searcher = CounterexampleSearcher(
        GROUND, max_coefficient=1, group_dimension=3, random_relations=30
    )
    assert (
        searcher.search(
            MaxInformationInequality.single(inequality.expression), budget=3000
        )
        is None
    )


def test_zhang_yeung_holds_on_parity_like_functions(parity):
    # Extend the 3-variable parity function with an independent 4th variable.
    from repro.cq.structures import Relation
    from repro.infotheory.entropy import relation_entropy

    rows = {
        (x, y, (x + y) % 2, z) for x in range(2) for y in range(2) for z in range(2)
    }
    entropy = relation_entropy(Relation(attributes=GROUND, rows=rows))
    inequality = zhang_yeung_inequality(GROUND)
    assert inequality.holds_for(entropy, tolerance=1e-7)


def test_zhang_yeung_requires_four_distinct_variables():
    with pytest.raises(Exception):
        zhang_yeung_inequality(("A", "B", "C", "C"))


def test_shannon_inequalities_remain_provable_on_four_variables():
    # Sanity: ordinary submodularity on 4 variables is still Shannon-provable,
    # so the negative answer above is specific to Zhang–Yeung.
    from repro.infotheory.expressions import InformationInequality, LinearExpression

    expression = (
        LinearExpression.entropy_term(GROUND, {"A"})
        + LinearExpression.entropy_term(GROUND, {"B"})
        - LinearExpression.entropy_term(GROUND, {"A", "B"})
    )
    assert is_shannon_provable(InformationInequality(expression), GROUND)
