"""Tests for the daemon-facing telemetry: stats view, metrics verb, soak."""

import json

import pytest

from repro.obs.metrics import MetricsError, MetricsRegistry, parse_exposition
from repro.obs.soak import SoakOptions, format_report, query_to_text, run_soak
from repro.cq.parser import parse_query
from repro.service.daemon import ContainmentDaemon
from repro.service.protocol import (
    BatchRequest,
    ControlRequest,
    PairSpec,
    encode_request,
    parse_response,
)
from repro.service.stats import GroupTiming, ServiceStats

TRIANGLE = "R(x,y), R(y,z), R(z,x)"
VEE = "R(a,b), R(a,c)"


def control(daemon: ContainmentDaemon, op: str) -> dict:
    return parse_response(daemon.handle_line(encode_request(ControlRequest(op)).encode()))


def run_batch(daemon: ContainmentDaemon, *pairs, **kwargs) -> dict:
    request = BatchRequest(pairs=tuple(PairSpec(q1, q2) for q1, q2 in pairs), **kwargs)
    return json.loads(daemon.handle_line(encode_request(request).encode()))


class TestServiceStatsView:
    """ServiceStats is now a view over a registry — the old surface survives."""

    EXPECTED_KEYS = [
        "pairs_submitted",
        "pipelines_run",
        "cache_hits",
        "store_hits",
        "batch_duplicates",
        "pair_errors",
        "pairs_over_budget",
        "pairs_deadline_exceeded",
        "requests_rejected",
        "requests_degraded",
        "lp_requests",
        "block_solves",
        "scalar_solves",
        "lp_solves_avoided",
        "wall_seconds",
        "groups",
    ]

    def test_as_dict_key_order_is_the_wire_format(self):
        assert list(ServiceStats().as_dict().keys()) == self.EXPECTED_KEYS

    def test_attribute_mutation_reaches_the_registry(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        stats.cache_hits += 3
        stats.wall_seconds += 0.5
        assert stats.cache_hits == 3
        assert isinstance(stats.cache_hits, int)
        assert registry.get("repro_plan_cache_hits_total").value() == 3.0
        assert registry.get("repro_batch_wall_seconds_total").value() == 0.5

    def test_counters_refuse_to_run_backwards(self):
        stats = ServiceStats()
        stats.pairs_submitted = 5
        with pytest.raises(MetricsError):
            stats.pairs_submitted = 2

    def test_record_chunk_feeds_counters_and_histogram(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        stats.record_chunk(
            GroupTiming(cone="gamma", ground_size=3, requests=4, rows=8, seconds=0.01)
        )
        assert stats.block_solves == 1
        assert stats.lp_solves_avoided == 3
        assert stats.per_group() == {
            "gamma:n=3": {"chunks": 1, "requests": 4, "rows": 8, "seconds": 0.01}
        }
        hist = registry.get("repro_chunk_solve_seconds")
        assert hist.count(cone="gamma", ground_size="3") == 1

    def test_observe_pair_seconds_lands_in_the_latency_histogram(self):
        registry = MetricsRegistry()
        stats = ServiceStats(registry)
        stats.observe_pair_seconds(0.002)
        assert registry.get("repro_pair_seconds").count() == 1


class TestDaemonMetricsVerb:
    def test_metrics_response_shape_and_parse(self):
        daemon = ContainmentDaemon()
        response = control(daemon, "metrics")
        assert response["ok"] is True
        assert response["content_type"] == "text/plain; version=0.0.4"
        samples = parse_exposition(response["body"])  # must be parse-clean
        for family in (
            "repro_daemon_uptime_seconds",
            "repro_daemon_queue_depth",
            "repro_daemon_workers",
            "repro_daemon_queue_wait_seconds_count",
            "repro_daemon_request_seconds_count",
            "repro_pair_seconds_count",
            "repro_plan_cache_hits_total",
            "repro_pairs_submitted_total",
        ):
            assert family in samples, f"missing {family}"
        assert samples["repro_daemon_uptime_seconds"][()] >= 0.0

    def test_batch_moves_the_daemon_counters(self):
        daemon = ContainmentDaemon()
        assert run_batch(daemon, (TRIANGLE, VEE), (TRIANGLE, VEE))["ok"]
        samples = parse_exposition(control(daemon, "metrics")["body"])
        assert samples["repro_daemon_requests_total"][(("outcome", "ok"),)] == 1.0
        assert samples["repro_daemon_queue_wait_seconds_count"][()] == 1.0
        assert samples["repro_daemon_request_seconds_count"][()] == 1.0
        assert samples["repro_pairs_submitted_total"][()] == 2.0
        assert samples["repro_pair_seconds_count"][()] == 1.0  # one after dedup

    def test_parse_error_outcome_is_counted(self):
        daemon = ContainmentDaemon()
        response = run_batch(daemon, ("R(x,", VEE))
        assert response["ok"] is False
        samples = parse_exposition(control(daemon, "metrics")["body"])
        assert (
            samples["repro_daemon_requests_total"][(("outcome", "parse-error"),)] == 1.0
        )

    def test_lp_counters_from_the_global_registry_are_exposed(self):
        daemon = ContainmentDaemon()
        assert run_batch(daemon, (TRIANGLE, VEE))["ok"]
        samples = parse_exposition(control(daemon, "metrics")["body"])
        # record_solver_path feeds the process-global registry; the daemon's
        # exposition merges it in.
        assert "repro_lp_decisions_total" in samples
        assert sum(samples["repro_lp_decisions_total"].values()) >= 1.0

    def test_status_reports_the_worker_pool(self):
        daemon = ContainmentDaemon()
        status = control(daemon, "status")
        for key in (
            "uptime_seconds",
            "queue_depth",
            "queue_waiting",
            "requests_served",
            "workers",
            "worker_mode",
        ):
            assert key in status, f"status is missing {key}"
        assert status["workers"] == daemon.service.options.max_workers
        assert status["worker_mode"] == daemon.service.options.worker_mode
        assert status["queue_depth"] == 0

    def test_degraded_view_shares_the_worker_pool_slot(self):
        daemon = ContainmentDaemon()
        view = daemon._degraded_service(0.5)
        assert view.stats is daemon.service.stats
        assert view.cache is daemon.service.cache
        assert hasattr(view, "_process_pool")  # __new__ path must stay runnable


class TestSoakHarness:
    def test_query_to_text_round_trips(self):
        boolean = parse_query("R(x,y), R(y,z)")
        assert parse_query(query_to_text(boolean)).atoms == boolean.atoms
        headed = parse_query("(x) :- R(x,y), S(y)")
        round_tripped = parse_query(query_to_text(headed))
        assert round_tripped.atoms == headed.atoms
        assert round_tripped.head == headed.head

    def test_options_validation(self):
        with pytest.raises(ValueError):
            SoakOptions(clients=0)
        with pytest.raises(ValueError):
            SoakOptions(qps=0)
        with pytest.raises(ValueError):
            SoakOptions(duration_seconds=0)

    def test_short_soak_against_an_ephemeral_daemon(self):
        report = run_soak(
            SoakOptions(
                clients=2,
                qps=6.0,
                duration_seconds=1.0,
                seed=5,
                scrape_interval_seconds=0.25,
            )
        )
        assert report["config"]["ephemeral_daemon"] is True
        assert report["requests_answered"] == report["config"]["requests"]
        assert report["requests_errored"] == 0
        assert report["latency_seconds"]["p99"] is not None
        assert report["hit_rate_trajectory"], "the scraper never landed a scrape"
        assert report["parity"]["ok"], report["parity"]
        text = format_report(report)
        assert "parity: OK" in text
        assert "latency p50=" in text
