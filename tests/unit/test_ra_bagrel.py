"""Unit tests for the bag relation data structure and its operators."""

import pytest

from repro.cq.structures import Relation
from repro.exceptions import StructureError
from repro.ra.bagrel import BagRelation


@pytest.fixture
def orders():
    return BagRelation.from_rows(
        ("customer", "item"),
        [
            ("alice", "apple"),
            ("alice", "apple"),
            ("alice", "pear"),
            ("bob", "apple"),
        ],
    )


@pytest.fixture
def prices():
    return BagRelation.from_rows(
        ("item", "price"),
        [("apple", 2), ("pear", 3), ("plum", 5)],
    )


def test_construction_accumulates_duplicates(orders):
    assert len(orders) == 4
    assert orders.distinct_count() == 3
    assert orders.multiplicity(("alice", "apple")) == 2
    assert orders.multiplicity(("carol", "apple")) == 0


def test_zero_multiplicities_are_dropped():
    relation = BagRelation(("a",), {("x",): 0, ("y",): 2})
    assert relation.support() == frozenset({("y",)})


def test_negative_multiplicity_rejected():
    with pytest.raises(StructureError):
        BagRelation(("a",), {("x",): -1})


def test_mismatched_row_width_rejected():
    with pytest.raises(StructureError):
        BagRelation(("a", "b"), {("x",): 1})


def test_duplicate_attributes_rejected():
    with pytest.raises(StructureError):
        BagRelation(("a", "a"), {})


def test_iteration_repeats_rows(orders):
    rows = list(orders)
    assert len(rows) == 4
    assert rows.count(("alice", "apple")) == 2


def test_round_trip_with_set_relation(orders):
    as_set = orders.to_relation()
    assert isinstance(as_set, Relation)
    assert as_set.rows == orders.support()
    back = BagRelation.from_relation(as_set)
    assert back.multiplicity(("alice", "apple")) == 1


def test_projection_adds_multiplicities(orders):
    by_customer = orders.project(("customer",))
    assert by_customer.multiplicity(("alice",)) == 3
    assert by_customer.multiplicity(("bob",)) == 1


def test_projection_reorders_columns(orders):
    flipped = orders.project(("item", "customer"))
    assert flipped.multiplicity(("apple", "alice")) == 2


def test_select_equal_and_predicate(orders):
    apples = orders.select_equal("item", "apple")
    assert len(apples) == 3
    alice_apples = orders.select(lambda row: row["customer"] == "alice" and row["item"] == "apple")
    assert len(alice_apples) == 2


def test_select_equal_columns():
    relation = BagRelation.from_rows(("a", "b"), [(1, 1), (1, 2), (2, 2)])
    diagonal = relation.select_equal_columns("a", "b")
    assert diagonal.support() == frozenset({(1, 1), (2, 2)})


def test_rename(orders):
    renamed = orders.rename({"customer": "who"})
    assert renamed.attributes == ("who", "item")
    assert renamed.multiplicity(("alice", "pear")) == 1


def test_natural_join_multiplies_multiplicities(orders, prices):
    joined = orders.natural_join(prices)
    assert joined.attributes == ("customer", "item", "price")
    assert joined.multiplicity(("alice", "apple", 2)) == 2
    assert joined.multiplicity(("bob", "apple", 2)) == 1
    # plum never sold: absent from the join.
    assert all(row[1] != "plum" for row in joined.support())


def test_join_without_shared_attributes_is_cartesian(prices):
    left = BagRelation.from_rows(("x",), [(1,), (1,), (2,)])
    product = left.natural_join(prices)
    assert len(product) == len(left) * len(prices)


def test_semijoin_preserves_multiplicities(orders, prices):
    cheap = prices.select(lambda row: row["price"] <= 2)
    reduced = orders.semijoin(cheap)
    assert reduced.multiplicity(("alice", "apple")) == 2
    assert reduced.multiplicity(("alice", "pear")) == 0


def test_semijoin_without_shared_attributes(orders):
    nonempty = BagRelation.from_rows(("z",), [(1,)])
    empty = BagRelation.empty(("z",))
    assert orders.semijoin(nonempty).same_bag(orders)
    assert len(orders.semijoin(empty)) == 0


def test_union_all_aligns_columns(orders):
    more = BagRelation.from_rows(("item", "customer"), [("apple", "alice")])
    combined = orders.union_all(more)
    assert combined.multiplicity(("alice", "apple")) == 3
    assert len(combined) == 5


def test_union_requires_same_attribute_set(orders, prices):
    with pytest.raises(StructureError):
        orders.union_all(prices)


def test_difference_is_monus(orders):
    one_apple = BagRelation.from_rows(("customer", "item"), [("alice", "apple")] * 5)
    remaining = orders.difference(one_apple)
    assert remaining.multiplicity(("alice", "apple")) == 0
    assert remaining.multiplicity(("alice", "pear")) == 1


def test_intersection_takes_minimum(orders):
    other = BagRelation.from_rows(
        ("customer", "item"), [("alice", "apple"), ("carol", "plum")]
    )
    common = orders.intersection(other)
    assert common.multiplicity(("alice", "apple")) == 1
    assert common.multiplicity(("carol", "plum")) == 0


def test_distinct_resets_multiplicities(orders):
    assert all(count == 1 for count in orders.distinct().multiplicities.values())


def test_group_count_boolean_and_grouped(orders):
    assert orders.group_count(()) == {(): 4}
    assert orders.group_count(("customer",)) == {("alice",): 3, ("bob",): 1}


def test_scale(orders):
    doubled = orders.scale(2)
    assert len(doubled) == 8
    with pytest.raises(StructureError):
        orders.scale(-1)


def test_bag_containment_and_equality(orders):
    bigger = orders.union_all(
        BagRelation.from_rows(("customer", "item"), [("bob", "pear")])
    )
    assert orders.bag_contained_in(bigger)
    assert not bigger.bag_contained_in(orders)
    assert orders.same_bag(orders.project(("customer", "item")))


def test_active_domain_and_mappings(orders):
    assert "apple" in orders.active_domain()
    mappings = list(orders.as_mappings())
    assert {"customer": "bob", "item": "apple"} in mappings


def test_str_mentions_counts(orders):
    text = str(orders)
    assert "3 distinct" in text and "4 total" in text
