"""Focused tests for individual plan-node behaviours (schemas, labels, semijoin)."""

import pytest

from repro.cq.structures import Structure
from repro.ra.bagrel import BagRelation
from repro.ra.compile import bag_database
from repro.ra.operators import (
    CountGroupOp,
    DistinctOp,
    JoinOp,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectEqualColumnsOp,
    SelectEqualOp,
    SemiJoinOp,
    UnionAllOp,
)


@pytest.fixture
def database():
    structure = Structure(
        domain=frozenset({1, 2, 3}),
        relations={"R": {(1, 2), (2, 3), (3, 1)}, "S": {(2,), (3,)}},
    )
    return bag_database(structure)


@pytest.fixture
def scan_r():
    return ScanOp(relation="R", columns=("x", "y"))


@pytest.fixture
def scan_s():
    return ScanOp(relation="S", columns=("y",))


def test_schemas_propagate_through_operators(scan_r, scan_s):
    renamed = RenameOp(child=scan_r, mapping=(("x", "src"),))
    assert renamed.schema() == ("src", "y")
    projected = ProjectOp(child=renamed, attributes=("y",))
    assert projected.schema() == ("y",)
    joined = JoinOp(left=scan_r, right=scan_s)
    assert joined.schema() == ("x", "y")
    semi = SemiJoinOp(left=scan_r, right=scan_s)
    assert semi.schema() == ("x", "y")
    grouped = CountGroupOp(child=joined, group_attributes=("x",))
    assert grouped.schema() == ("x",)
    assert SelectEqualOp(child=scan_r, attribute="x", value=1).schema() == ("x", "y")
    assert SelectEqualColumnsOp(child=scan_r, left="x", right="y").schema() == ("x", "y")
    assert DistinctOp(child=scan_r).schema() == ("x", "y")
    assert UnionAllOp(left=scan_r, right=scan_r).schema() == ("x", "y")


def test_labels_are_descriptive(scan_r, scan_s):
    assert "Scan R" in scan_r.label()
    assert "Join" in JoinOp(left=scan_r, right=scan_s).label()
    assert "SemiJoin" in SemiJoinOp(left=scan_r, right=scan_s).label()
    assert "cartesian" in JoinOp(
        left=scan_r, right=ScanOp(relation="S", columns=("z",))
    ).label()
    assert "Rename" in RenameOp(child=scan_r, mapping=(("x", "a"),)).label()
    assert "CountGroup" in CountGroupOp(child=scan_r, group_attributes=()).label()


def test_semijoin_evaluation(database, scan_r, scan_s):
    semi = SemiJoinOp(left=scan_r, right=scan_s)
    result = semi.evaluate(database)
    # Keep R rows whose y appears in S: (1,2) and (2,3).
    assert result.support() == frozenset({(1, 2), (2, 3)})
    assert result.attributes == ("x", "y")


def test_semijoin_explain_lists_children(scan_r, scan_s):
    semi = SemiJoinOp(left=scan_r, right=scan_s)
    text = semi.explain()
    assert text.splitlines()[0].startswith("SemiJoin")
    assert len(text.splitlines()) == 3
    assert semi.operator_count() == 3
    assert semi.depth() == 2


def test_rename_and_project_evaluation(database, scan_r):
    plan = ProjectOp(
        child=RenameOp(child=scan_r, mapping=(("x", "src"), ("y", "dst"))),
        attributes=("dst",),
    )
    result = plan.evaluate(database)
    assert result.attributes == ("dst",)
    assert len(result) == 3


def test_count_group_on_empty_input(database):
    empty_scan = ScanOp(relation="R", columns=("x", "y"))
    filtered = SelectEqualOp(child=empty_scan, attribute="x", value=99)
    grouped = CountGroupOp(child=filtered, group_attributes=())
    assert grouped.answer(database) == {}


def test_union_all_evaluation_counts(database, scan_r):
    doubled = UnionAllOp(left=scan_r, right=scan_r)
    result = doubled.evaluate(database)
    assert all(count == 2 for count in result.multiplicities.values())
