"""Renaming-equivalence of cached and stored evidence.

The headline bugfix: a plan-cache or store hit must return its witness and
inequality in the *requesting* pair's variable names, not in the names of
whichever isomorphic representative was solved first.  These tests lock
that contract for both tiers, plus the provenance tags and the semantics of
``PlanCache.__contains__`` / ``peek``.
"""

import pytest

from repro.core.containment import ContainmentStatus
from repro.core.witness import verify_witness
from repro.cq.parser import parse_query
from repro.cq.reductions import to_boolean_pair
from repro.service import BatchOptions, ContainmentService
from repro.service.cache import PlanCache

# Two isomorphic copies of each pair with disjoint variable vocabularies, so
# any evidence leaking the representative's names is unmistakable.
TRIANGLE_A = parse_query("R(x,y), R(y,z), R(z,x)")
VEE_A = parse_query("R(a,b), R(a,c)")
TRIANGLE_B = parse_query("R(p,q), R(q,r), R(r,p)")
VEE_B = parse_query("R(m,n), R(m,o)")

PATH_A = parse_query("R(x,y), R(y,z)")
EDGE_A = parse_query("R(a,b)")
PATH_B = parse_query("R(u,v), R(v,w)")
EDGE_B = parse_query("R(s,t)")


def _variables(query):
    return set(query.variables)


def assert_evidence_in_requester_variables(result, q1, q2):
    """Every piece of evidence mentions only the requester's variables."""
    boolean_q1, boolean_q2 = to_boolean_pair(q1, q2)
    allowed_q1 = _variables(boolean_q1)
    allowed_q2 = _variables(boolean_q2)
    if result.inequality is not None:
        inequality = result.inequality
        assert set(inequality.ground) <= allowed_q1
        assert _variables(inequality.q1) <= allowed_q1
        assert _variables(inequality.q2) <= allowed_q2
        for branch in inequality.branches:
            for bag in branch.decomposition.bags.values():
                assert set(bag) <= allowed_q2
            assert set(branch.homomorphism) <= allowed_q2
            assert set(branch.homomorphism.values()) <= allowed_q1
    if result.witness is not None and result.witness.relation is not None:
        assert set(result.witness.relation.attributes) <= allowed_q1
    if result.verdict is not None and result.verdict.certificate is not None:
        assert set(result.verdict.certificate.ground) <= allowed_q1


class TestCacheHitRenaming:
    def test_contained_hit_is_renamed_and_tagged(self):
        service = ContainmentService(BatchOptions())
        try:
            (solved,) = service.run([(TRIANGLE_A, VEE_A)]).outcomes
            (hit,) = service.run([(TRIANGLE_B, VEE_B)]).outcomes
        finally:
            service.close()
        assert solved.source == "solved" and solved.result.provenance == "solved"
        assert hit.source == "plan-cache"
        assert hit.result.provenance == "cache-hit"
        assert hit.result.status is ContainmentStatus.CONTAINED
        assert_evidence_in_requester_variables(solved.result, TRIANGLE_A, VEE_A)
        assert_evidence_in_requester_variables(hit.result, TRIANGLE_B, VEE_B)

    def test_refuted_hit_witness_still_verifies_for_the_requester(self):
        service = ContainmentService(BatchOptions())
        try:
            service.run([(PATH_A, EDGE_A)])
            (hit,) = service.run([(PATH_B, EDGE_B)]).outcomes
        finally:
            service.close()
        assert hit.result.status is ContainmentStatus.NOT_CONTAINED
        assert hit.result.provenance == "cache-hit"
        assert_evidence_in_requester_variables(hit.result, PATH_B, EDGE_B)
        # The witness database separates the requester's own Boolean pair
        # with exactly the stored counts.
        witness = hit.result.witness
        boolean_q1, boolean_q2 = to_boolean_pair(PATH_B, EDGE_B)
        recounted = verify_witness(boolean_q1, boolean_q2, witness.database)
        assert recounted is not None
        assert (recounted.hom_q1, recounted.hom_q2) == (
            witness.hom_q1,
            witness.hom_q2,
        )

    def test_batch_dedup_result_is_renamed_too(self):
        # Isomorphic pairs in the same batch: the second folds into the first.
        service = ContainmentService(BatchOptions())
        try:
            report = service.run([(PATH_A, EDGE_A), (PATH_B, EDGE_B)])
            duplicate = None
            for outcome in report.outcomes:
                if outcome.source == "batch-dedup":
                    duplicate = outcome
            assert duplicate is not None
            assert_evidence_in_requester_variables(duplicate.result, PATH_B, EDGE_B)
        finally:
            service.close()


class TestStoreHitRenaming:
    def test_store_hit_is_renamed_and_tagged(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        service = ContainmentService(BatchOptions(store_path=path))
        try:
            service.run([(TRIANGLE_A, VEE_A), (PATH_A, EDGE_A)])
        finally:
            service.close()

        restarted = ContainmentService(BatchOptions(store_path=path))
        try:
            report = restarted.run([(TRIANGLE_B, VEE_B), (PATH_B, EDGE_B)])
            contained, refuted = report.outcomes
            assert contained.source == "store"
            assert contained.result.provenance == "store-hit"
            assert contained.result.status is ContainmentStatus.CONTAINED
            assert_evidence_in_requester_variables(
                contained.result, TRIANGLE_B, VEE_B
            )
            assert refuted.source == "store"
            assert refuted.result.status is ContainmentStatus.NOT_CONTAINED
            assert_evidence_in_requester_variables(refuted.result, PATH_B, EDGE_B)
            witness = refuted.result.witness
            boolean_q1, boolean_q2 = to_boolean_pair(PATH_B, EDGE_B)
            assert verify_witness(boolean_q1, boolean_q2, witness.database) is not None
            assert restarted.stats.pipelines_run == 0
            assert restarted.stats.store_hits == 2
        finally:
            restarted.close()

    def test_store_requires_canonicalization(self, tmp_path):
        with pytest.raises(ValueError):
            ContainmentService(
                BatchOptions(
                    canonicalize=False, store_path=str(tmp_path / "s.sqlite")
                )
            )


class TestContainsAndPeekSemantics:
    def test_contains_counts_and_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", object())
        cache.put("b", object())
        # A membership probe is a first-class read: it counts …
        assert "a" in cache
        assert "missing" not in cache
        assert cache.hits == 1 and cache.misses == 1
        # … and refreshes recency: "a" was just probed, so "b" evicts first.
        cache.put("c", object())
        assert cache.peek("a") is not None
        assert cache.peek("b") is None

    def test_peek_is_side_effect_free(self):
        cache = PlanCache(maxsize=2)
        first = object()
        cache.put("a", first)
        cache.put("b", object())
        assert cache.peek("a") is first
        assert cache.peek("missing") is None
        assert cache.hits == 0 and cache.misses == 0
        # peek must not refresh recency: "a" is still the eviction candidate.
        cache.put("c", object())
        assert cache.peek("a") is None
