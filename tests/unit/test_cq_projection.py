"""Unit tests for generalized projections and the induced database of Eq. (4)."""

import pytest

from repro.cq.homomorphism import count_query_homomorphisms
from repro.cq.parser import parse_query
from repro.cq.projection import (
    annotate_relation,
    atom_projection,
    erasing_homomorphism,
    generalized_projection,
    induced_database,
)
from repro.cq.structures import Relation
from repro.exceptions import StructureError


@pytest.fixture
def pair_relation():
    return Relation(attributes=("x", "y"), rows={("a", "b"), ("c", "d")})


def test_generalized_projection_with_repeats(pair_relation):
    projected = generalized_projection(pair_relation, {"u": "x", "v": "x", "w": "y"})
    assert projected.attributes == ("u", "v", "w")
    assert projected.rows == {("a", "a", "b"), ("c", "c", "d")}


def test_generalized_projection_sequence_form(pair_relation):
    projected = generalized_projection(pair_relation, ("y", "x"))
    assert projected.rows == {("b", "a"), ("d", "c")}


def test_atom_projection_repeated_variable():
    # The paper's example: Q1 = R(x, x, y), P = {(a, b)} gives R^D = {(a, a, b)}.
    relation = Relation(attributes=("x", "y"), rows={("a", "b")})
    assert atom_projection(relation, ("x", "x", "y")) == frozenset({("a", "a", "b")})


def test_induced_database_example_3_5(diagonal_relation):
    query = parse_query(
        "A(x1,x2), B(x1,x2), C(x1,x2), A(xp1,xp2), B(xp1,xp2), C(xp1,xp2)"
    )
    database = induced_database(query, diagonal_relation)
    # A^D = B^D = C^D = {(u, u) | u in [2]}.
    assert database.tuples("A") == frozenset({(0, 0), (1, 1)})
    assert database.tuples("A") == database.tuples("B") == database.tuples("C")


def test_induced_database_requires_all_variables():
    query = parse_query("R(x, y)")
    relation = Relation(attributes=("x",), rows={(1,)})
    with pytest.raises(StructureError):
        induced_database(query, relation)


def test_witness_relation_embeds_into_induced_database(diagonal_relation):
    # P ⊆ hom(Q1, Π_Q1(P)) (Fact 3.2): the count is at least |P|.
    query = parse_query(
        "A(x1,x2), B(x1,x2), C(x1,x2), A(xp1,xp2), B(xp1,xp2), C(xp1,xp2)"
    )
    database = induced_database(query, annotate_relation(diagonal_relation))
    assert count_query_homomorphisms(query, database) >= len(diagonal_relation)


def test_annotate_relation_preserves_uniformity(diagonal_relation):
    annotated = annotate_relation(diagonal_relation)
    assert len(annotated) == len(diagonal_relation)
    assert annotated.is_totally_uniform()
    for row in annotated.rows:
        for attribute, (tag, _value) in zip(annotated.attributes, row):
            assert tag == attribute


def test_erasing_homomorphism(diagonal_relation):
    query = parse_query("A(x1,x2), A(xp1,xp2)")
    database = induced_database(query, annotate_relation(diagonal_relation))
    erasure = erasing_homomorphism(database)
    assert set(erasure.values()) <= {"x1", "x2", "xp1", "xp2"}
    for (tag, _value), variable in erasure.items():
        assert tag == variable


def test_erasing_homomorphism_requires_annotation(diagonal_relation):
    query = parse_query("A(x1,x2), A(xp1,xp2)")
    database = induced_database(query, diagonal_relation)
    with pytest.raises(StructureError):
        erasing_homomorphism(database)
