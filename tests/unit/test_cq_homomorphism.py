"""Unit tests for homomorphism enumeration and counting."""

import pytest

from repro.cq.decompositions import heuristic_tree_decomposition, join_tree
from repro.cq.homomorphism import (
    count_homomorphisms,
    count_homomorphisms_via_decomposition,
    count_query_homomorphisms,
    count_query_to_query_homomorphisms,
    exists_homomorphism,
    exists_query_homomorphism,
    homomorphisms,
    query_homomorphisms,
    query_to_query_homomorphisms,
)
from repro.cq.parser import parse_query
from repro.cq.structures import Structure, canonical_structure
from repro.workloads.generators import path_query, cycle_query


def test_count_on_full_binary_relation(triangle_query, path2_query, small_database):
    # Full relation on {0,1}: every map is a homomorphism.
    assert count_query_homomorphisms(triangle_query, small_database) == 8
    assert count_query_homomorphisms(path2_query, small_database) == 8


def test_count_on_directed_triangle(triangle_query, path2_query, triangle_database):
    assert count_query_homomorphisms(triangle_query, triangle_database) == 3
    assert count_query_homomorphisms(path2_query, triangle_database) == 3


def test_enumeration_matches_count(path2_query, small_database):
    listed = list(query_homomorphisms(path2_query, small_database))
    assert len(listed) == count_query_homomorphisms(
        path2_query, small_database, method="backtracking"
    )
    for assignment in listed:
        assert set(assignment) == {"Y1", "Y2", "Y3"}


def test_fixed_variables_restrict_enumeration(path2_query, small_database):
    fixed = {"Y1": 0}
    count = count_query_homomorphisms(path2_query, small_database, fixed=fixed)
    assert count == 4
    missing = {"Y1": 7}
    assert count_query_homomorphisms(path2_query, small_database, fixed=missing) == 0


def test_exists_query_homomorphism(triangle_query, triangle_database):
    assert exists_query_homomorphism(triangle_query, triangle_database)
    acyclic_db = Structure.from_facts([("R", (0, 1)), ("R", (1, 2))])
    assert not exists_query_homomorphism(triangle_query, acyclic_db)


def test_query_to_query_homomorphisms_vee(path2_query, triangle_query):
    # hom(Q2, Q1) of Example 4.3 has exactly 3 elements.
    homs = query_to_query_homomorphisms(path2_query, triangle_query)
    assert len(homs) == 3
    assert count_query_to_query_homomorphisms(path2_query, triangle_query) == 3
    for hom in homs:
        assert hom["Y2"] == hom["Y3"]


def test_structure_homomorphisms_count(triangle_database, small_database):
    # From the directed triangle into the full binary relation on {0,1}: 2^3 maps.
    assert count_homomorphisms(triangle_database, small_database) == 8
    assert exists_homomorphism(triangle_database, small_database)
    listed = list(homomorphisms(triangle_database, small_database))
    assert len(listed) == 8


def test_structure_homomorphisms_isolated_elements(small_database):
    source = Structure.from_facts([("R", (0, 1))], domain=[0, 1, 2])
    # Element 2 is isolated: it can map anywhere in the 2-element target domain.
    assert count_homomorphisms(source, small_database) == 4 * 2


def test_decomposition_counting_matches_backtracking(small_database, triangle_database):
    for length in (1, 2, 3):
        query = path_query(length)
        for database in (small_database, triangle_database):
            expected = count_query_homomorphisms(query, database, method="backtracking")
            tree = join_tree(query)
            assert (
                count_homomorphisms_via_decomposition(query, database, tree) == expected
            )


def test_decomposition_counting_cyclic_query(triangle_database):
    query = cycle_query(3)
    expected = count_query_homomorphisms(query, triangle_database, method="backtracking")
    decomposition = heuristic_tree_decomposition(query)
    assert (
        count_homomorphisms_via_decomposition(query, triangle_database, decomposition)
        == expected
    )


def test_auto_method_agrees_with_backtracking(small_database):
    query = parse_query("R(a,b), R(b,c), S(c,d)")
    database = Structure.from_facts(
        [("R", (0, 1)), ("R", (1, 0)), ("R", (1, 1)), ("S", (1, 0)), ("S", (0, 0))]
    )
    assert count_query_homomorphisms(query, database) == count_query_homomorphisms(
        query, database, method="backtracking"
    )


def test_disjoint_copies_multiplicativity(triangle_query, small_database):
    # |hom(nQ, D)| = |hom(Q, D)|^n  (the Kopparty–Rossman power trick).
    doubled = triangle_query.disjoint_copies(2)
    single = count_query_homomorphisms(triangle_query, small_database)
    assert count_query_homomorphisms(doubled, small_database) == single**2


def test_unknown_method_rejected(triangle_query, small_database):
    with pytest.raises(Exception):
        count_query_homomorphisms(triangle_query, small_database, method="nope")
