"""Unit tests for the graph-shaped workloads (series-parallel queries, graph DBs)."""

import pytest

from repro.cq.decompositions import is_acyclic, is_chordal
from repro.cq.evaluation import evaluate_bag
from repro.exceptions import QueryError
from repro.workloads.graph_families import (
    TwoTerminalGraph,
    bipartite_graph_database,
    book_query,
    complete_graph_database,
    cycle_graph_database,
    diamond_query,
    fan_query,
    graph_database_from_edges,
    grid_query,
    parallel_composition,
    path_graph_database,
    random_graph_database,
    series_composition,
    series_parallel_graph,
    series_parallel_query,
    single_edge,
    theta_query,
)


# ---------------------------------------------------------------------- #
# Series-parallel construction
# ---------------------------------------------------------------------- #
def test_single_edge_shape():
    edge = single_edge()
    assert edge.source != edge.sink
    assert len(edge.edges) == 1
    assert set(edge.vertices()) == {edge.source, edge.sink}


def test_series_composition_chains_terminals():
    path2 = series_composition(single_edge(), single_edge())
    assert len(path2.edges) == 2
    assert len(path2.vertices()) == 3
    assert path2.source != path2.sink


def test_parallel_composition_shares_terminals():
    double_edge = parallel_composition(single_edge(), single_edge())
    assert len(double_edge.vertices()) == 2
    # Two parallel copies of the same edge collapse to one atom in the query
    # (bag-set semantics eliminates repeated atoms).
    query = double_edge.to_query()
    assert len(query.atoms) == 1


def test_series_parallel_spec_diamond():
    diamond = series_parallel_graph(("p", ("s", "e", "e"), ("s", "e", "e")))
    assert len(diamond.vertices()) == 4
    assert len(diamond.edges) == 4


def test_series_parallel_query_is_connected_and_graph_shaped():
    query = series_parallel_query(("s", "e", ("p", "e", ("s", "e", "e"))))
    assert query.is_boolean
    assert all(atom.relation == "R" and atom.arity == 2 for atom in query.atoms)


def test_invalid_spec_rejected():
    with pytest.raises(QueryError):
        series_parallel_graph(("x", "e", "e"))
    with pytest.raises(QueryError):
        series_parallel_graph(("s", "e"))
    with pytest.raises(QueryError):
        TwoTerminalGraph(source="a", sink="b", edges=()).to_query()


def test_diamond_query_shapes():
    assert len(diamond_query(2, 2).atoms) == 4
    assert len(diamond_query(3, 1).atoms) == 1  # parallel single edges collapse
    assert len(diamond_query(1, 3).atoms) == 3
    with pytest.raises(QueryError):
        diamond_query(0, 1)


# ---------------------------------------------------------------------- #
# Structured queries
# ---------------------------------------------------------------------- #
def test_grid_query_counts():
    query = grid_query(2, 3)
    # 2x3 grid: horizontal 2*2=4, vertical 1*3=3 edges.
    assert len(query.atoms) == 7
    assert not is_acyclic(query)
    with pytest.raises(QueryError):
        grid_query(1, 1)


def test_fan_and_book_are_chordal():
    assert is_chordal(fan_query(3))
    assert is_chordal(book_query(2))
    with pytest.raises(QueryError):
        fan_query(0)
    with pytest.raises(QueryError):
        book_query(0)


def test_theta_query_structure():
    query = theta_query([2, 3])
    assert len(query.atoms) == 5
    with pytest.raises(QueryError):
        theta_query([2])


# ---------------------------------------------------------------------- #
# Graph databases
# ---------------------------------------------------------------------- #
def test_complete_graph_database_edge_count():
    db = complete_graph_database(4)
    assert len(db.tuples("R")) == 12
    assert len(complete_graph_database(4, with_loops=True).tuples("R")) == 16


def test_path_and_cycle_databases():
    assert len(path_graph_database(5).tuples("R")) == 4
    assert len(cycle_graph_database(5).tuples("R")) == 5
    with pytest.raises(QueryError):
        path_graph_database(1)


def test_bipartite_database():
    db = bipartite_graph_database(2, 3)
    assert len(db.tuples("R")) == 6
    assert len(db.domain) == 5


def test_random_graph_database_is_deterministic():
    first = random_graph_database(6, 0.5, seed=7)
    second = random_graph_database(6, 0.5, seed=7)
    assert first.tuples("R") == second.tuples("R")
    with pytest.raises(QueryError):
        random_graph_database(3, 1.5)


def test_graph_database_from_edges_infers_domain():
    db = graph_database_from_edges([("a", "b"), ("b", "c")])
    assert db.domain == frozenset({"a", "b", "c"})


# ---------------------------------------------------------------------- #
# Semantics sanity checks
# ---------------------------------------------------------------------- #
def test_path_counts_on_complete_graph():
    # |hom(path_2, K_n)| = n^3 (with loops) — without loops it is n(n-1)^2 + loops...
    # use the loopful complete graph where the count is exactly n^|vars|.
    db = complete_graph_database(3, with_loops=True)
    query = series_parallel_query(("s", "e", "e"))
    counts = evaluate_bag(query, db)
    assert counts == {(): 27}


def test_diamond_dominates_path_on_cycle_database():
    # On a directed cycle every vertex has out-degree 1, so both the diamond
    # and the single path have exactly |V| homomorphisms.
    db = cycle_graph_database(5)
    diamond = diamond_query(2, 2)
    path = series_parallel_query(("s", "e", "e"))
    assert evaluate_bag(diamond, db)[()] == 5
    assert evaluate_bag(path, db)[()] == 5
