"""Tests for the durable SQLite verdict store (:mod:`repro.store`)."""

import json
import sqlite3
from pathlib import Path

import pytest

from repro.core.containment import ContainmentStatus, decide_containment
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import StoreError
from repro.service import BatchOptions, ContainmentService
from repro.service.cache import PlanCache
from repro.service.canonical import pair_key_with_labelings
from repro.store import VerdictStore, build_record, structural_hash, verify_store
from repro.store.serialize import (
    canonical_json,
    decode_key,
    encode_key,
    queries_from_key,
    validate_record,
)

CORPUS = Path(__file__).resolve().parents[1] / "regression" / "containment_corpus.json"

TRIANGLE = parse_query("R(x,y), R(y,z), R(z,x)")
VEE = parse_query("R(a,b), R(a,c)")
PATH2 = parse_query("R(x,y), R(y,z)")
EDGE = parse_query("R(a,b)")


def canonical_result(q1, q2):
    """Solve a pair and return (key, canonical-variable result)."""
    key, labelings = pair_key_with_labelings(q1, q2)
    result = decide_containment(q1, q2)
    return key, PlanCache().put(key, result, labelings)


class TestSerialization:
    def test_key_roundtrip(self):
        key, _ = pair_key_with_labelings(TRIANGLE, VEE)
        assert decode_key(json.loads(canonical_json(encode_key(key)))) == key

    def test_queries_from_key_rebuild_the_canonical_pair(self):
        key, _ = pair_key_with_labelings(TRIANGLE, VEE)
        q1, q2 = queries_from_key(key)
        rebuilt, _ = pair_key_with_labelings(q1, q2)
        assert rebuilt == key

    def test_contained_record_carries_certificate(self):
        key, canonical = canonical_result(TRIANGLE, VEE)
        record = build_record(key, canonical)
        assert record["status"] == "contained"
        assert record["evidence"]["certificate"] is not None
        validate_record(json.loads(canonical_json(record)))

    def test_not_contained_record_carries_witness(self):
        key, canonical = canonical_result(PATH2, EDGE)
        record = build_record(key, canonical)
        assert record["status"] == "not_contained"
        witness = record["evidence"]["witness"]
        assert witness["hom_q1"] > witness["hom_q2"]

    def test_validate_record_rejects_wrong_hash(self):
        key, canonical = canonical_result(TRIANGLE, VEE)
        record = build_record(key, canonical)
        record["hash"] = "0" * 64
        with pytest.raises(StoreError):
            validate_record(record)


class TestVerdictStore:
    def test_roundtrip_through_reopen(self, tmp_path):
        key, canonical = canonical_result(TRIANGLE, VEE)
        path = str(tmp_path / "store.sqlite")
        with VerdictStore(path) as store:
            store.record(key, canonical, provenance={"origin": "test"})
        with VerdictStore(path) as store:
            assert store.recovered == 1 and store.dropped == 0
            hit = store.get(key)
            assert hit.status is ContainmentStatus.CONTAINED
            assert hit.method == canonical.method
            assert hit.provenance == "store-hit"
            assert hit.verdict is not None and hit.verdict.certificate is not None

    def test_record_is_first_wins(self, tmp_path):
        key, canonical = canonical_result(TRIANGLE, VEE)
        with VerdictStore(str(tmp_path / "s.sqlite")) as store:
            store.record(key, canonical)
            store.record(key, canonical)
            store.flush()
            assert len(store) == 1
            assert store.appended == 1

    def test_torn_final_record_recovers_longest_valid_prefix(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        keys = []
        with VerdictStore(path) as store:
            for q1, q2 in [(TRIANGLE, VEE), (PATH2, EDGE)]:
                key, canonical = canonical_result(q1, q2)
                keys.append(key)
                store.record(key, canonical)
        # Tear the final record: a crash mid-write leaves a payload whose
        # checksum no longer matches.
        connection = sqlite3.connect(path)
        (last_seq,) = connection.execute("SELECT MAX(seq) FROM log").fetchone()
        connection.execute(
            "UPDATE log SET payload = substr(payload, 1, length(payload) / 2) "
            "WHERE seq = ?",
            (last_seq,),
        )
        connection.commit()
        connection.close()

        with VerdictStore(path) as store:
            assert store.recovered == 1 and store.dropped == 1
            assert store.get(keys[0]) is not None
            assert store.get(keys[1]) is None
            # The recovered prefix is fully intact: the audit flags nothing.
            assert verify_store(store).ok
        # The torn tail was dropped from disk: the next open is clean.
        with VerdictStore(path) as store:
            assert store.recovered == 1 and store.dropped == 0

    def test_corrupt_middle_row_drops_everything_after_it(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        pairs = [(TRIANGLE, VEE), (PATH2, EDGE), (parse_query("R(u,u)"), EDGE)]
        with VerdictStore(path) as store:
            for q1, q2 in pairs:
                key, canonical = canonical_result(q1, q2)
                store.record(key, canonical)
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE log SET checksum = 'bogus' WHERE seq = "
            "(SELECT seq FROM log ORDER BY seq LIMIT 1 OFFSET 1)"
        )
        connection.commit()
        connection.close()
        with VerdictStore(path) as store:
            assert store.recovered == 1 and store.dropped == 2

    def test_compact_removes_superseded_rows(self, tmp_path):
        key, canonical = canonical_result(TRIANGLE, VEE)
        record = build_record(key, canonical)
        with VerdictStore(str(tmp_path / "s.sqlite")) as store:
            store.append_record(record)
            store.append_record(record)
            store.flush()
            assert store.info()["log_rows"] == 2
            assert store.compact() == 1
            assert store.info()["log_rows"] == 1
            assert len(store) == 1

    def test_import_skips_present_hashes(self, tmp_path):
        key, canonical = canonical_result(TRIANGLE, VEE)
        with VerdictStore(str(tmp_path / "a.sqlite")) as source:
            source.record(key, canonical)
            source.flush()
            import io

            dump = io.StringIO()
            source.export_jsonl(dump)
        with VerdictStore(str(tmp_path / "b.sqlite")) as target:
            dump.seek(0)
            assert target.import_jsonl(dump) == (1, 0)
            dump.seek(0)
            assert target.import_jsonl(dump) == (0, 1)

    def test_closed_store_refuses_writes(self, tmp_path):
        key, canonical = canonical_result(TRIANGLE, VEE)
        store = VerdictStore(str(tmp_path / "s.sqlite"))
        store.close()
        with pytest.raises(StoreError):
            store.record(key, canonical)


def _corpus_query(record):
    parsed = parse_query(record["body"], name=record["name"])
    if record["head"]:
        return ConjunctiveQuery(
            atoms=parsed.atoms, head=tuple(record["head"]), name=record["name"]
        )
    return parsed


def _corpus_pairs():
    corpus = json.loads(CORPUS.read_text())
    return (
        [(_corpus_query(e["q1"]), _corpus_query(e["q2"])) for e in corpus["pairs"]],
        [e["status"] for e in corpus["pairs"]],
    )


@pytest.fixture(scope="module")
def corpus_store(tmp_path_factory):
    """The frozen known-verdict corpus solved once into a store."""
    pairs, expected = _corpus_pairs()
    path = str(tmp_path_factory.mktemp("corpus") / "corpus.sqlite")
    service = ContainmentService(
        BatchOptions(on_error="capture", store_path=path)
    )
    statuses = [result.status.value for result in service.run(pairs).results]
    service.close()
    assert statuses == expected
    return path


class TestCorpusRoundTrip:
    def test_export_import_roundtrips_byte_identically_and_verifies(
        self, corpus_store, tmp_path
    ):
        import io

        with VerdictStore(corpus_store) as store:
            first = io.StringIO()
            store.export_jsonl(first)
            assert verify_store(store).ok
        with VerdictStore(str(tmp_path / "copy.sqlite")) as copy:
            source = io.StringIO(first.getvalue())
            imported, skipped = copy.import_jsonl(source)
            assert skipped == 0 and imported > 0
            second = io.StringIO()
            copy.export_jsonl(second)
            assert second.getvalue() == first.getvalue()
            report = verify_store(copy)
            assert report.ok
            assert report.checked == imported

    def test_restarted_service_replays_corpus_without_solving(self, corpus_store):
        pairs, expected = _corpus_pairs()
        service = ContainmentService(
            BatchOptions(on_error="capture", store_path=corpus_store)
        )
        try:
            report = service.run(pairs)
            assert [r.status.value for r in report.results] == expected
            # Store hits promote their key into the plan cache, so an
            # isomorphic duplicate later in the batch hits the memory tier.
            assert all(
                outcome.source in ("store", "plan-cache", "batch-dedup")
                for outcome in report.outcomes
            )
            assert service.stats.store_hits > 0
            assert service.stats.pipelines_run == 0
        finally:
            service.close()


class TestLifecycle:
    """Close/flush lifecycle: rows recorded since the last flush must
    survive a close-then-reopen, with or without the context manager."""

    def test_close_flushes_buffered_rows(self, tmp_path):
        path = str(tmp_path / "lifecycle.sqlite")
        key, canonical = canonical_result(TRIANGLE, VEE)
        store = VerdictStore(path)
        store.record(key, canonical)
        # Deliberately no flush(): close() must not discard the buffer.
        store.close()

        reopened = VerdictStore(path)
        try:
            assert reopened.recovered == 1
            assert key in reopened
            assert reopened.get(key).status == canonical.status
        finally:
            reopened.close()

    def test_context_manager_flushes_on_exit(self, tmp_path):
        path = str(tmp_path / "ctx.sqlite")
        key, canonical = canonical_result(PATH2, EDGE)
        with VerdictStore(path) as store:
            store.record(key, canonical)
        with VerdictStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.get(key).status == canonical.status

    def test_context_manager_flushes_even_when_the_body_raises(self, tmp_path):
        path = str(tmp_path / "raise.sqlite")
        key, canonical = canonical_result(TRIANGLE, VEE)
        with pytest.raises(RuntimeError):
            with VerdictStore(path) as store:
                store.record(key, canonical)
                raise RuntimeError("caller bug")
        with VerdictStore(path) as reopened:
            assert len(reopened) == 1

    def test_close_is_idempotent_and_seals_the_handle(self, tmp_path):
        store = VerdictStore(str(tmp_path / "seal.sqlite"))
        store.close()
        store.close()  # second close is a no-op, not an error
        key, canonical = canonical_result(TRIANGLE, VEE)
        with pytest.raises(StoreError):
            store.record(key, canonical)

    def test_failed_open_does_not_leak_the_connection(self, tmp_path, monkeypatch):
        # If the open-time replay blows up, __init__ never returns a handle,
        # so the constructor itself must close the SQLite connection.
        path = str(tmp_path / "broken.sqlite")
        VerdictStore(path).close()  # create a valid store file first
        closed = {}

        def exploding_replay(self):
            closed["conn"] = self._connection
            raise StoreError("synthetic replay failure")

        monkeypatch.setattr(VerdictStore, "_replay", exploding_replay)
        with pytest.raises(StoreError, match="synthetic replay failure"):
            VerdictStore(path)
        # A closed sqlite3 connection refuses further use.
        with pytest.raises(sqlite3.ProgrammingError):
            closed["conn"].execute("SELECT 1")
