"""Tests for the ring-sharded, deduping fleet gateway.

The gateway is transport-complete without a bound socket: ``handle_batch``
and ``handle_line`` are coroutines driven directly under ``asyncio.run``,
with fake replicas served by ``asyncio.start_unix_server`` inside the same
loop for the failure-path tests.  Real daemons (served from background
threads, as in ``test_service_daemon``) cover verdict parity and the
end-to-end wire path; the deadline-propagation class is the satellite
coverage for gateway queueing + replica time.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.obs.metrics import parse_exposition
from repro.service import BatchOptions
from repro.service.daemon import (
    DaemonClient,
    DaemonUnavailable,
    ShedOptions,
    daemon_available,
    serve,
)
from repro.service.fleet import (
    FleetError,
    FleetGateway,
    ReplicaSpec,
    _merge_stats,
    merge_stores,
)
from repro.service.protocol import (
    BatchRequest,
    BatchResponse,
    PairSpec,
    PairVerdict,
    encode_batch_response,
    parse_address,
    parse_request,
)

TRIANGLE_TEXT = "R(x,y), R(y,z), R(z,x)"
VEE_TEXT = "R(a,b), R(a,c)"
# The same shapes under renamed variables: structurally isomorphic pairs.
TRIANGLE_ISO = "R(u,v), R(v,w), R(w,u)"
VEE_ISO = "R(s,t), R(s,r)"


def batch_request(*pairs, **kwargs):
    return BatchRequest(pairs=tuple(PairSpec(q1, q2) for q1, q2 in pairs), **kwargs)


def start_replica(socket_path):
    """Serve a real daemon over ``socket_path`` from a background thread."""
    ready = threading.Event()
    thread = threading.Thread(
        target=serve,
        args=(parse_address(socket_path),),
        kwargs={
            "options": BatchOptions(on_error="capture"),
            "shed": ShedOptions(),
            "ready_callback": lambda daemon: ready.set(),
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10)
    return thread


@pytest.fixture
def live_replicas(tmp_path):
    """Two real daemon replicas behind ready-to-route specs."""
    specs = []
    threads = []
    for index in range(2):
        socket_path = str(tmp_path / f"replica-{index}.sock")
        threads.append(start_replica(socket_path))
        specs.append(ReplicaSpec(name=f"replica-{index}", address=socket_path))
    yield specs
    for spec in specs:
        try:
            DaemonClient(spec.address, timeout=5.0).stop()
        except DaemonUnavailable:
            pass
    for thread in threads:
        thread.join(timeout=10)


class TestConstruction:
    def test_needs_at_least_one_replica(self):
        with pytest.raises(FleetError):
            FleetGateway([])

    def test_rejects_duplicate_names(self):
        specs = [ReplicaSpec("a", "/tmp/a.sock"), ReplicaSpec("a", "/tmp/b.sock")]
        with pytest.raises(FleetError):
            FleetGateway(specs)


class TestRouting:
    def test_route_hashes_are_deterministic_and_cached(self):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        pairs = (PairSpec(TRIANGLE_TEXT, VEE_TEXT),)
        first = gateway._route_hashes(pairs)
        second = gateway._route_hashes(pairs)
        assert first == second
        assert len(gateway._hash_cache) == 1

    def test_isomorphic_pairs_share_a_shard(self):
        # Routing hashes the canonical pair key, so renamed-variable copies
        # land on the same replica and hit its plan cache.
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        hashes = gateway._route_hashes(
            (
                PairSpec(TRIANGLE_TEXT, VEE_TEXT),
                PairSpec(TRIANGLE_ISO, VEE_ISO),
            )
        )
        assert hashes[0] == hashes[1]

    def test_fallback_is_stable_when_the_primary_is_drained(self):
        specs = [ReplicaSpec(f"r{i}", f"/tmp/r{i}.sock") for i in range(3)]
        gateway = FleetGateway(specs, probe_interval=None)
        hash_int = 7
        primary = gateway._replica_for(hash_int, [0, 1, 2])
        assert primary in (0, 1, 2)
        # With the primary drained, the ring walks to a deterministic
        # fallback among the remaining candidates...
        survivors = [i for i in (0, 1, 2) if i != primary]
        fallback = gateway._replica_for(hash_int, survivors)
        assert fallback in survivors
        assert gateway._replica_for(hash_int, survivors) == fallback
        # ...and the key snaps back to its primary owner on re-admit.
        assert gateway._replica_for(hash_int, [0, 1, 2]) == primary

    def test_draining_one_replica_leaves_other_keys_in_place(self):
        # The consistent-hashing contract at the gateway: keys whose
        # primary owner is still admitted never move while another
        # replica drains.
        specs = [ReplicaSpec(f"r{i}", f"/tmp/r{i}.sock") for i in range(3)]
        gateway = FleetGateway(specs, probe_interval=None)
        sample = range(0, 4000, 7)
        owners = {h: gateway._replica_for(h, [0, 1, 2]) for h in sample}
        drained = 1
        survivors = [0, 2]
        for h, owner in owners.items():
            if owner != drained:
                assert gateway._replica_for(h, survivors) == owner

    def test_ring_is_deterministic_across_gateways(self):
        # Two gateways built from identical manifest specs own the
        # identical ring and route every key the same way.
        specs = [ReplicaSpec(f"r{i}", f"/tmp/r{i}.sock") for i in range(3)]
        first = FleetGateway(specs, probe_interval=None)
        second = FleetGateway(specs, probe_interval=None)
        sample = range(0, 3000, 13)
        for h in sample:
            assert first._replica_for(h, [0, 1, 2]) == second._replica_for(
                h, [0, 1, 2]
            )


class TestBatchPath:
    def test_parity_order_and_stats_against_live_replicas(self, live_replicas):
        gateway = FleetGateway(live_replicas, probe_interval=None)
        request = batch_request(
            (TRIANGLE_TEXT, VEE_TEXT),
            (VEE_TEXT, TRIANGLE_TEXT),
            (TRIANGLE_ISO, VEE_ISO),
        )
        response = asyncio.run(gateway.handle_batch(request))
        assert response.ok
        assert not response.degraded
        assert [v.index for v in response.verdicts] == [0, 1, 2]
        assert [v.status for v in response.verdicts] == [
            "contained",
            "not_contained",
            "contained",
        ]
        # Pair 2 is isomorphic to pair 0, so it folds at the gateway and
        # never reaches a replica; the merged report must still account
        # for every requested pair exactly once.
        assert response.verdicts[2].source == "gateway-dedup"
        assert response.stats["pairs_submitted"] == 3
        assert response.stats["gateway"]["dedup_folded"] == 1
        assert response.stats["gateway"]["representatives_dispatched"] == 2
        assert gateway.requests_served == 1

    def test_unparseable_pair_fails_without_touching_replicas(self):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/never-bound.sock")], probe_interval=None
        )
        response = asyncio.run(
            gateway.handle_batch(batch_request(("R(x,y", VEE_TEXT)))
        )
        assert not response.ok
        assert "unparseable" in response.error
        assert gateway._states[0].requests == 0

    def test_dead_replica_is_drained_and_pairs_reroute(self, tmp_path, live_replicas):
        # One live replica plus one that was never started: whichever pairs
        # shard onto the dead one must be re-routed, the batch must still
        # complete with every verdict, and the drain must be counted.
        dead = ReplicaSpec("dead", str(tmp_path / "dead.sock"))
        gateway = FleetGateway(
            [live_replicas[0], dead], probe_interval=None
        )
        request = batch_request(
            (TRIANGLE_TEXT, VEE_TEXT),
            (VEE_TEXT, TRIANGLE_TEXT),
            (TRIANGLE_TEXT, TRIANGLE_ISO),
            (VEE_TEXT, VEE_ISO),
        )
        response = asyncio.run(gateway.handle_batch(request))
        assert response.ok
        assert response.degraded
        assert len(response.verdicts) == 4
        assert all(v is not None for v in response.verdicts)
        assert [v.index for v in response.verdicts] == [0, 1, 2, 3]
        dead_state = gateway._states[1]
        assert not dead_state.healthy
        assert dead_state.drains == 1

    def test_all_replicas_dead_is_an_error_not_a_hang(self, tmp_path):
        gateway = FleetGateway(
            [ReplicaSpec("dead", str(tmp_path / "dead.sock"))],
            probe_interval=None,
        )
        response = asyncio.run(
            gateway.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        )
        assert not response.ok
        assert "no healthy replicas" in response.error

    def test_shed_response_propagates_to_the_caller(self, monkeypatch):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )

        async def refuse(spec, line):
            return encode_batch_response(
                BatchResponse(
                    ok=False, error="queue-full", shed="rejected"
                )
            ).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", refuse)
        response = asyncio.run(
            gateway.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        )
        assert not response.ok
        assert response.error == "queue-full"
        assert response.shed == "rejected"

    def test_short_replica_answers_do_not_spin_forever(self, monkeypatch):
        # A replica that answers ok with zero verdicts makes no progress;
        # the gateway must fail the request instead of looping.
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )

        async def empty_ok(spec, line):
            return encode_batch_response(BatchResponse(ok=True)).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", empty_ok)
        response = asyncio.run(
            gateway.handle_batch(batch_request((TRIANGLE_TEXT, VEE_TEXT)))
        )
        assert not response.ok
        assert "without resolving" in response.error


class TestGatewayDedup:
    """The tentpole: fold duplicates before sharding, fan verdicts back out."""

    def test_all_isomorphic_batch_dispatches_one_representative(self, monkeypatch):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        dispatched = []

        async def capture(spec, line):
            sub = parse_request(line)
            dispatched.append(sub.pairs)
            return encode_batch_response(
                BatchResponse(
                    ok=True,
                    verdicts=tuple(
                        PairVerdict(i, "contained", "theorem-3.1", "solved")
                        for i in range(len(sub.pairs))
                    ),
                    stats={"pairs_submitted": len(sub.pairs)},
                )
            ).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", capture)
        request = batch_request(
            (TRIANGLE_TEXT, VEE_TEXT),
            (TRIANGLE_ISO, VEE_ISO),
            (TRIANGLE_TEXT, VEE_TEXT),
            (TRIANGLE_ISO, VEE_TEXT),
        )
        response = asyncio.run(gateway.handle_batch(request))
        assert response.ok
        # One canonical key -> one dispatched pair, four answered verdicts.
        assert len(dispatched) == 1
        assert len(dispatched[0]) == 1
        assert [v.index for v in response.verdicts] == [0, 1, 2, 3]
        assert all(v.status == "contained" for v in response.verdicts)
        assert response.verdicts[0].source == "solved"
        assert [v.source for v in response.verdicts[1:]] == ["gateway-dedup"] * 3
        # Merged totals must equal the request pair count, not the
        # representative count the replica saw.
        assert response.stats["pairs_submitted"] == 4
        assert response.stats["gateway"]["dedup_folded"] == 3
        assert response.stats["gateway"]["representatives_dispatched"] == 1

    def test_dedup_counter_is_exported(self, monkeypatch):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )

        async def answer(spec, line):
            sub = parse_request(line)
            return encode_batch_response(
                BatchResponse(
                    ok=True,
                    verdicts=tuple(
                        PairVerdict(i, "contained", "theorem-3.1", "solved")
                        for i in range(len(sub.pairs))
                    ),
                )
            ).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", answer)
        request = batch_request(
            (TRIANGLE_TEXT, VEE_TEXT),
            (TRIANGLE_TEXT, VEE_TEXT),
        )
        asyncio.run(gateway.handle_batch(request))
        samples = parse_exposition(gateway.registry.render())
        assert sum(samples["repro_gateway_dedup_folded_total"].values()) == 1.0

    def test_folded_pairs_share_deadline_synthesis(self, monkeypatch):
        # When the budget dies before dispatch, folded duplicates are
        # synthesized alongside their representative — nobody hangs.
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        original = gateway._route_hashes

        def slow_route(pairs):
            time.sleep(0.05)
            return original(pairs)

        monkeypatch.setattr(gateway, "_route_hashes", slow_route)
        response = asyncio.run(
            gateway.handle_batch(
                batch_request(
                    (TRIANGLE_TEXT, VEE_TEXT),
                    (TRIANGLE_ISO, VEE_ISO),
                    deadline_seconds=0.01,
                )
            )
        )
        assert response.ok
        assert [v.method for v in response.verdicts] == [
            "deadline-exceeded",
            "deadline-exceeded",
        ]
        assert gateway._states[0].requests == 0

    def test_folded_pairs_survive_a_drain_reroute(self, tmp_path, live_replicas):
        # Duplicates fold onto a representative that first routes to a dead
        # replica; the re-route must still resolve every folded requester.
        dead = ReplicaSpec("dead", str(tmp_path / "dead.sock"))
        gateway = FleetGateway([live_replicas[0], dead], probe_interval=None)
        request = batch_request(
            (TRIANGLE_TEXT, VEE_TEXT),
            (TRIANGLE_ISO, VEE_ISO),
            (VEE_TEXT, TRIANGLE_TEXT),
            (VEE_ISO, TRIANGLE_ISO),
        )
        response = asyncio.run(gateway.handle_batch(request))
        assert response.ok
        assert all(v is not None for v in response.verdicts)
        assert [v.status for v in response.verdicts] == [
            "contained",
            "contained",
            "not_contained",
            "not_contained",
        ]
        assert {v.source for v in response.verdicts} >= {"gateway-dedup"}
        assert response.stats["pairs_submitted"] == 4
        assert response.stats["gateway"]["dedup_folded"] == 2


class TestBoundedDispatch:
    """In-flight dispatches are capped at the host's effective parallelism."""

    # These four pairs split 2/2 across an a/b ring, giving two shards.
    SPLIT_PAIRS = (
        (TRIANGLE_TEXT, VEE_TEXT),
        (VEE_TEXT, TRIANGLE_TEXT),
        (TRIANGLE_TEXT, TRIANGLE_TEXT),
        (VEE_TEXT, VEE_TEXT),
    )

    def two_replica_gateway(self, **kwargs):
        return FleetGateway(
            [ReplicaSpec("a", "/tmp/a.sock"), ReplicaSpec("b", "/tmp/b.sock")],
            probe_interval=None,
            **kwargs,
        )

    def test_parallelism_defaults_to_the_host_cpu_count(self):
        import os

        gateway = self.two_replica_gateway()
        assert gateway.dispatch_parallelism == max(1, os.cpu_count() or 1)

    def test_rejects_a_nonpositive_cap(self):
        with pytest.raises(FleetError):
            self.two_replica_gateway(dispatch_parallelism=0)

    def test_one_slot_serializes_the_shards(self, monkeypatch):
        gateway = self.two_replica_gateway(dispatch_parallelism=1)
        in_flight = {"now": 0, "peak": 0}

        async def answer(spec, line):
            in_flight["now"] += 1
            in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            await asyncio.sleep(0.02)
            in_flight["now"] -= 1
            sub = parse_request(line)
            return encode_batch_response(
                BatchResponse(
                    ok=True,
                    verdicts=tuple(
                        PairVerdict(i, "contained", "theorem-3.1", "solved")
                        for i in range(len(sub.pairs))
                    ),
                )
            ).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", answer)
        response = asyncio.run(gateway.handle_batch(batch_request(*self.SPLIT_PAIRS)))
        assert response.ok
        assert [v.index for v in response.verdicts] == [0, 1, 2, 3]
        assert in_flight["peak"] == 1
        # Both shards were really dispatched, one after the other.
        assert gateway._states[0].requests == 1
        assert gateway._states[1].requests == 1

    def test_queued_dispatch_does_not_inherit_a_stale_budget(self, monkeypatch):
        # A shard that waits behind a slow peer must see its *remaining*
        # budget at slot-open — not the budget computed when the round
        # started.  Here the first shard eats the whole deadline, so the
        # queued shard synthesizes without a roundtrip.
        gateway = self.two_replica_gateway(
            dispatch_parallelism=1, reply_margin=0.01
        )
        roundtrips = []

        async def stall(spec, line):
            roundtrips.append(spec.name)
            await asyncio.sleep(10.0)  # cancelled by the dispatch timeout

        monkeypatch.setattr(gateway, "_replica_roundtrip", stall)
        response = asyncio.run(
            gateway.handle_batch(
                batch_request(*self.SPLIT_PAIRS, deadline_seconds=0.2)
            )
        )
        assert response.ok
        assert all(v.method == "deadline-exceeded" for v in response.verdicts)
        # Only the first shard ever reached a replica; the queued shard
        # found its budget already spent and synthesized at slot-open.
        assert len(roundtrips) == 1


class TestDeadlinePropagation:
    """The satellite: deadlines cover gateway time and never hang reassembly."""

    def test_remaining_deadline_is_forwarded_to_replicas(self, monkeypatch):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        seen = {}

        async def capture(spec, line):
            sub = parse_request(line)
            seen["deadline"] = sub.deadline_seconds
            seen["priority"] = sub.priority
            return encode_batch_response(
                BatchResponse(
                    ok=True,
                    verdicts=(
                        PairVerdict(0, "contained", "theorem-3.1", "solved"),
                    ),
                )
            ).encode("utf-8")

        monkeypatch.setattr(gateway, "_replica_roundtrip", capture)
        response = asyncio.run(
            gateway.handle_batch(
                batch_request(
                    (TRIANGLE_TEXT, VEE_TEXT),
                    deadline_seconds=30.0,
                    priority="high",
                )
            )
        )
        assert response.ok
        # The replica sees the *remaining* budget: the original deadline
        # minus whatever the gateway already spent (hashing, queueing).
        assert seen["deadline"] is not None
        assert 0 < seen["deadline"] <= 30.0
        assert seen["priority"] == "high"

    def test_expired_budget_synthesizes_deadline_verdicts(self, monkeypatch):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )

        # Routing alone consumes the whole (tiny) budget.
        original = gateway._route_hashes

        def slow_route(pairs):
            time.sleep(0.05)
            return original(pairs)

        monkeypatch.setattr(gateway, "_route_hashes", slow_route)
        response = asyncio.run(
            gateway.handle_batch(
                batch_request(
                    (TRIANGLE_TEXT, VEE_TEXT),
                    (VEE_TEXT, TRIANGLE_TEXT),
                    deadline_seconds=0.01,
                )
            )
        )
        assert response.ok
        assert [v.method for v in response.verdicts] == [
            "deadline-exceeded",
            "deadline-exceeded",
        ]
        assert all(v.source == "gateway" for v in response.verdicts)
        assert all(v.status == "unknown" for v in response.verdicts)
        # Nothing was dispatched: the replica was never contacted.
        assert gateway._states[0].requests == 0

    def test_unresponsive_replica_cannot_hang_a_deadlined_batch(self, tmp_path):
        # A replica that accepts the connection but never answers: with a
        # deadline the gateway must give up at deadline + margin and answer
        # the stranded pairs itself.
        socket_path = str(tmp_path / "mute.sock")

        async def scenario():
            async def mute(reader, writer):
                await reader.readline()
                await asyncio.sleep(30)  # never answer

            server = await asyncio.start_unix_server(mute, path=socket_path)
            gateway = FleetGateway(
                [ReplicaSpec("mute", socket_path)],
                probe_interval=None,
                reply_margin=0.1,
            )
            started = time.monotonic()
            response = await gateway.handle_batch(
                batch_request((TRIANGLE_TEXT, VEE_TEXT), deadline_seconds=0.3)
            )
            elapsed = time.monotonic() - started
            server.close()
            await server.wait_closed()
            return response, elapsed

        response, elapsed = asyncio.run(scenario())
        assert response.ok
        assert response.verdicts[0].method == "deadline-exceeded"
        assert response.verdicts[0].source == "gateway"
        assert elapsed < 5.0  # bounded by deadline + margin, not the 30 s nap

    def test_deadline_free_transport_loss_reroutes_not_hangs(
        self, tmp_path, live_replicas
    ):
        # No deadline, and one replica drops the connection mid-request:
        # that is a transport failure (drain + re-route), not a hang.
        socket_path = str(tmp_path / "dropper.sock")

        async def scenario():
            async def drop(reader, writer):
                await reader.readline()
                writer.close()

            server = await asyncio.start_unix_server(drop, path=socket_path)
            gateway = FleetGateway(
                [live_replicas[0], ReplicaSpec("dropper", socket_path)],
                probe_interval=None,
            )
            response = await gateway.handle_batch(
                batch_request(
                    (TRIANGLE_TEXT, VEE_TEXT),
                    (VEE_TEXT, TRIANGLE_TEXT),
                    (TRIANGLE_TEXT, TRIANGLE_ISO),
                    (VEE_TEXT, VEE_ISO),
                )
            )
            server.close()
            await server.wait_closed()
            return response, gateway

        response, gateway = asyncio.run(scenario())
        assert response.ok
        assert response.degraded
        assert all(v.method != "deadline-exceeded" for v in response.verdicts)
        assert not gateway._states[1].healthy


class TestControlVerbs:
    def test_ping_status_metrics_and_stop(self):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )

        async def scenario():
            ping = json.loads(await gateway.handle_line(b'{"op": "ping"}'))
            status = json.loads(await gateway.handle_line(b'{"op": "status"}'))
            metrics = json.loads(await gateway.handle_line(b'{"op": "metrics"}'))
            stop = json.loads(await gateway.handle_line(b'{"op": "stop"}'))
            return ping, status, metrics, stop

        ping, status, metrics, stop = asyncio.run(scenario())
        assert ping["ok"] and ping["role"] == "gateway"
        assert status["fleet_size"] == 1
        assert status["healthy_replicas"] == 1
        assert status["replicas"][0]["name"] == "only"
        samples = parse_exposition(metrics["body"])
        assert "repro_gateway_deadline_pairs_total" in samples
        assert "repro_gateway_uptime_seconds" in samples
        assert sum(samples["repro_gateway_replicas_healthy"].values()) == 1.0
        assert stop["ok"] and stop["stopping"]

    def test_malformed_line_is_an_error_response(self):
        gateway = FleetGateway(
            [ReplicaSpec("only", "/tmp/x.sock")], probe_interval=None
        )
        response = json.loads(asyncio.run(gateway.handle_line(b"not json")))
        assert response["ok"] is False
        assert "JSON" in response["error"]


class TestGatewayOverTheWire:
    def test_serve_batch_status_stop_and_unlink(self, tmp_path, live_replicas):
        gateway_path = str(tmp_path / "gateway.sock")
        gateway = FleetGateway(live_replicas, probe_interval=None)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                gateway.serve(
                    parse_address(gateway_path),
                    ready_callback=lambda _gw: ready.set(),
                )
            ),
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)

        client = DaemonClient(gateway_path, timeout=60.0)
        assert client.ping()["role"] == "gateway"
        response = client.batch([(TRIANGLE_TEXT, VEE_TEXT), (VEE_TEXT, TRIANGLE_TEXT)])
        assert response.ok
        assert [v.status for v in response.verdicts] == [
            "contained",
            "not_contained",
        ]
        status = client.status()
        assert status["requests_served"] == 1
        assert sum(r["pairs"] for r in status["replicas"]) == 2
        samples = parse_exposition(client.metrics())
        routed = sum(
            samples.get("repro_gateway_pairs_routed_total", {}).values()
        )
        assert routed == 2.0

        client.stop()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert not daemon_available(gateway_path, timeout=0.5)
        import os

        assert not os.path.exists(gateway_path)


def _canonical_result(q1_text, q2_text):
    """Solve a pair and return (key, canonical-variable result)."""
    from repro.core.containment import decide_containment
    from repro.cq.parser import parse_query
    from repro.service.cache import PlanCache
    from repro.service.canonical import pair_key_with_labelings

    q1, q2 = parse_query(q1_text), parse_query(q2_text)
    key, labelings = pair_key_with_labelings(q1, q2)
    return key, PlanCache().put(key, decide_containment(q1, q2), labelings)


class TestStoreMerge:
    def test_merge_stores_is_idempotent_and_order_free(self, tmp_path):
        from repro.store import VerdictStore

        key_a, result_a = _canonical_result(TRIANGLE_TEXT, VEE_TEXT)
        key_b, result_b = _canonical_result(VEE_TEXT, TRIANGLE_TEXT)
        peer_a = str(tmp_path / "a.sqlite")
        peer_b = str(tmp_path / "b.sqlite")
        target = str(tmp_path / "target.sqlite")
        with VerdictStore(peer_a) as store:
            store.record(key_a, result_a)
        with VerdictStore(peer_b) as store:
            store.record(key_b, result_b)

        imported, skipped = merge_stores(target, [peer_a, peer_b])
        assert (imported, skipped) == (2, 0)
        # Re-merging (any order) converges: everything is a skip.
        imported, skipped = merge_stores(target, [peer_b, peer_a])
        assert (imported, skipped) == (0, 2)
        with VerdictStore(target) as store:
            assert len(store) == 2
            assert store.get(key_a).status == result_a.status

    def test_missing_peer_files_are_skipped(self, tmp_path):
        target = str(tmp_path / "target.sqlite")
        imported, skipped = merge_stores(
            target, [str(tmp_path / "ghost.sqlite")]
        )
        assert (imported, skipped) == (0, 0)


class TestStatsMerging:
    def test_numeric_fields_sum_and_nested_dicts_merge(self):
        merged = _merge_stats(
            [
                {"pairs_submitted": 2, "cache_hits": 1, "by_arity": {"2": {"solves": 1}}},
                {"pairs_submitted": 3, "cache_hits": 0, "by_arity": {"2": {"solves": 2}}},
            ]
        )
        assert merged["pairs_submitted"] == 5
        assert merged["cache_hits"] == 1
        assert merged["by_arity"]["2"]["solves"] == 3

    def test_booleans_and_strings_do_not_sum(self):
        merged = _merge_stats([{"flag": True, "name": "a"}, {"flag": True, "name": "b"}])
        assert "flag" not in merged
        assert merged["name"] == "a"
