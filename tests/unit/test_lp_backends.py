"""The solver-backend layer: resolution, incremental bookkeeping, seeds.

Three concerns are locked down here, all runnable without the optional
``highspy`` dependency:

* backend resolution — ``"auto"`` falls back to scipy when ``highspy`` is
  absent, forcing ``"highs"`` then fails loudly, unknown names are rejected;
* the incremental-model bookkeeping the HiGHS backend relies on — row
  add/drop identity mapping (stable keys over renumbering deletions) and
  the :class:`~repro.lp.backends.AntiCyclingLedger` guard (a dropped row
  that re-violates re-enters permanently, so even an adversarial
  drop-everything policy terminates with the right optimum);
* the Eq. (8)-aware ``seed="containment"`` row set — bit-exact against a
  brute-force ``|K| ≤ 1`` enumeration of the elemental inequalities at
  ``n ≤ 5``, and never needing more cutting-plane rounds than the generic
  seed on containment-shaped instances.

The ``scipy-incremental`` backend exists exactly so this file can exercise
the incremental loop (the code path ``highspy`` runs) on every install.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cq.parser import parse_query
from repro.cq.reductions import to_boolean_pair
from repro.core.containment import containment_pipeline
from repro.core.containment_inequality import build_containment_inequality
from repro.exceptions import LPError
from repro.infotheory.polymatroid import elemental_inequalities
from repro.infotheory.shannon import shannon_prover
from repro.lp.backends import (
    AntiCyclingLedger,
    HighsBackend,
    ScipyBackend,
    highs_available,
    resolve_backend,
    validate_backend_name,
)
from repro.lp.rowgen import (
    RowGenOptions,
    check_feasibility_lazy,
    minimize_lazy,
    shannon_row_oracle,
)
from repro.lp.solver import LPStatus
from repro.utils.lattice import lattice_context

GROUNDS = {n: tuple(f"X{i}" for i in range(1, n + 1)) for n in range(2, 6)}


# --------------------------------------------------------------------- #
# Resolution and gating
# --------------------------------------------------------------------- #
def test_auto_resolves_to_scipy_without_highspy():
    backend = resolve_backend("auto")
    if highs_available():
        assert backend.name == "highs"
    else:
        assert backend.name == "scipy"
        assert not backend.incremental


def test_forcing_highs_without_highspy_raises():
    if highs_available():
        pytest.skip("highspy is installed; the gate cannot fire")
    with pytest.raises(LPError, match="highspy"):
        resolve_backend("highs")
    with pytest.raises(LPError, match="highspy"):
        HighsBackend()


def test_unknown_backend_name_rejected():
    with pytest.raises(LPError, match="unknown LP backend"):
        validate_backend_name("glpk")
    with pytest.raises(LPError):
        resolve_backend("glpk")


def test_scipy_incremental_is_incremental_but_not_warm():
    backend = resolve_backend("scipy-incremental")
    assert backend.incremental
    assert not backend.warm_started


def test_backend_instances_are_shared():
    assert resolve_backend("scipy") is resolve_backend("scipy")


# --------------------------------------------------------------------- #
# One-shot solves
# --------------------------------------------------------------------- #
def test_scipy_backend_solves_a_small_lp():
    backend = resolve_backend("scipy")
    # min x0 + x1  s.t.  -x0 - x1 <= -1, x >= 0
    result = backend.solve([1.0, 1.0], A_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(1.0)


def test_scipy_backend_reports_infeasible_and_unbounded():
    backend = resolve_backend("scipy")
    infeasible = backend.solve([1.0], A_ub=[[1.0]], b_ub=[-1.0])
    assert infeasible.status == LPStatus.INFEASIBLE
    unbounded = backend.solve([-1.0], A_ub=None, b_ub=None)
    assert unbounded.status == LPStatus.UNBOUNDED


# --------------------------------------------------------------------- #
# Incremental-model row identity mapping
# --------------------------------------------------------------------- #
def _unit_row(width, column, value=1.0):
    return sp.csr_matrix(([value], ([0], [column])), shape=(1, width))


def _model(width=4):
    backend = resolve_backend("scipy-incremental")
    return backend.incremental_model(width, np.ones(width), bounds=(0, None))


def test_keys_map_to_their_rows_after_deletions():
    model = _model(width=4)
    # Row "c<i>" is the distinctive constraint x_i >= i + 1.
    for i in range(4):
        model.add_rows([f"c{i}"], _unit_row(4, i, -1.0), rhs=[-(i + 1.0)])
    model.delete_rows(["c1", "c2"])
    assert model.keys() == ("c0", "c3")
    assert model.row_index("c0") == 0
    assert model.row_index("c3") == 1
    matrix, rhs = model.row_matrix()
    # "c3" slid into position 1 but still constrains x3, not x1.
    assert matrix[1].toarray().ravel().tolist() == [0.0, 0.0, 0.0, -1.0]
    assert rhs.tolist() == [-1.0, -4.0]
    # The solve only enforces the surviving rows.
    result = model.solve()
    assert result.status == LPStatus.OPTIMAL
    np.testing.assert_allclose(result.solution, [1.0, 0.0, 0.0, 4.0], atol=1e-9)


def test_adding_after_deletion_keeps_the_mapping_consistent():
    model = _model(width=3)
    model.add_rows(["a", "b"], sp.vstack([_unit_row(3, 0, -1.0), _unit_row(3, 1, -1.0)]), rhs=[-2.0, -3.0])
    model.delete_rows(["a"])
    model.add_rows(["c"], _unit_row(3, 2, -1.0), rhs=[-5.0])
    assert model.keys() == ("b", "c")
    assert model.row_index("c") == 1
    result = model.solve()
    np.testing.assert_allclose(result.solution, [0.0, 3.0, 5.0], atol=1e-9)


def test_duplicate_key_rejected_and_unknown_key_fails():
    model = _model(width=2)
    model.add_rows(["a"], _unit_row(2, 0))
    with pytest.raises(LPError, match="already in the model"):
        model.add_rows(["a"], _unit_row(2, 1))
    with pytest.raises(KeyError):
        model.row_index("never-added")


def test_row_key_matrix_shape_mismatch_rejected():
    model = _model(width=2)
    with pytest.raises(LPError, match="mismatch"):
        model.add_rows(["a", "b"], _unit_row(2, 0))


# --------------------------------------------------------------------- #
# AntiCyclingLedger
# --------------------------------------------------------------------- #
def test_seed_rows_are_permanent():
    ledger = AntiCyclingLedger([0, 1, 2])
    assert ledger.retire([0, 1, 2]) == []
    assert len(ledger) == 3
    assert ledger.rows_dropped == 0


def test_dropped_row_reenters_permanently():
    ledger = AntiCyclingLedger([0])
    assert ledger.admit([5, 7]) == [5, 7]
    assert ledger.retire([5]) == [5]
    assert not ledger.is_permanent(7)
    # Re-violation: the row comes back and is pinned.
    assert ledger.admit([5]) == [5]
    assert ledger.is_permanent(5)
    assert ledger.re_entries == 1
    assert ledger.retire([5]) == []


def test_admitting_active_rows_is_a_noop():
    ledger = AntiCyclingLedger([0])
    ledger.admit([3])
    assert ledger.admit([3, 0]) == []
    assert ledger.cuts_added == 1


def test_ledger_counters():
    ledger = AntiCyclingLedger([0, 1])
    ledger.admit([2, 3, 4])
    assert ledger.peak_rows == 5
    ledger.retire([2, 3])
    assert ledger.rows_dropped == 2
    assert len(ledger) == 3
    ledger.admit([2])
    assert ledger.peak_rows == 5
    assert sorted(ledger.active) == [0, 1, 2, 4]


# --------------------------------------------------------------------- #
# The incremental loop end to end (scipy-incremental backend)
# --------------------------------------------------------------------- #
def _invalid_pair_objective(ground):
    """``h(1) + h(2) - 1.5·h(12)``, whose Γn minimum over the slice is -0.5."""
    from repro.infotheory.expressions import LinearExpression

    prover = shannon_prover(ground)
    expression = LinearExpression(
        ground=ground,
        coefficients={
            frozenset({ground[0]}): 1.0,
            frozenset({ground[1]}): 1.0,
            frozenset({ground[0], ground[1]}): -1.5,
        },
    )
    return prover.expression_vector(expression)


@pytest.mark.parametrize("n", [3, 4, 5])
def test_incremental_loop_matches_legacy_optimum(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    objective = _invalid_pair_objective(ground)
    legacy = minimize_lazy(objective, oracle, bounds=(0, 1), backend="scipy")
    incremental = minimize_lazy(
        objective, oracle, bounds=(0, 1), backend="scipy-incremental"
    )
    assert legacy.status == incremental.status == LPStatus.OPTIMAL
    assert incremental.objective == pytest.approx(legacy.objective, abs=1e-8)
    assert incremental.rowgen.backend == "scipy-incremental"


@pytest.mark.parametrize("n", [3, 4, 5])
def test_incremental_round_counts_never_exceed_cold_start(n):
    """Same relaxation sequence ⇒ the incremental loop needs no extra rounds."""
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    objective = _invalid_pair_objective(ground)
    legacy = minimize_lazy(objective, oracle, bounds=(0, 1), backend="scipy")
    incremental = minimize_lazy(
        objective, oracle, bounds=(0, 1), backend="scipy-incremental"
    )
    assert incremental.rowgen.rounds <= legacy.rowgen.rounds


def test_adversarial_dropping_terminates_and_stays_correct():
    """Drop *every* non-permanent row each round; the guard must converge.

    ``drop_tolerance=-1`` marks even tight rows as slack and
    ``max_cuts_per_round=1`` starves the model, so without the
    re-entry-pins-permanently rule this loop would oscillate forever.
    """
    ground = GROUNDS[5]
    oracle = shannon_row_oracle(ground)
    objective = _invalid_pair_objective(ground)
    options = RowGenOptions(
        drop_slack_rows=True,
        drop_min_rows=0,
        drop_tolerance=-1.0,
        max_cuts_per_round=1,
    )
    result = minimize_lazy(
        objective,
        oracle,
        bounds=(0, 1),
        options=options,
        backend="scipy-incremental",
    )
    reference = minimize_lazy(objective, oracle, bounds=(0, 1), backend="scipy")
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(reference.objective, abs=1e-8)
    assert result.rowgen.rows_dropped > 0
    # Dropped rows re-violated, re-entered, and were pinned.
    assert result.rowgen.re_entries > 0


def test_slack_rows_are_dropped_when_enabled():
    ground = GROUNDS[5]
    oracle = shannon_row_oracle(ground)
    objective = _invalid_pair_objective(ground)
    options = RowGenOptions(drop_slack_rows=True, drop_min_rows=0)
    result = minimize_lazy(
        objective,
        oracle,
        bounds=(0, 1),
        options=options,
        backend="scipy-incremental",
    )
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(-0.5, abs=1e-8)


# --------------------------------------------------------------------- #
# The highspy adapter against a faithful fake of the bindings
# --------------------------------------------------------------------- #
class _FakeHighsModelStatus:
    kOptimal = "optimal"
    kInfeasible = "infeasible"
    kUnbounded = "unbounded"
    kUnboundedOrInfeasible = "unbounded-or-infeasible"


class _FakeHighs:
    """The slice of the ``highspy.Highs`` API the backend drives.

    Rows and columns accumulate exactly as HiGHS stores them (deletions
    renumber the tail); ``run`` delegates to ``linprog`` so solutions are
    real.  The instance counts runs so warm/cold behaviour is observable.
    """

    def __init__(self):
        self.cost = np.empty(0)
        self.col_lower = np.empty(0)
        self.col_upper = np.empty(0)
        self.rows = []  # (lower, upper, {col: value})
        self.options = {}
        self.runs = 0
        self.solver_cleared = 0
        self._solution = None
        self._objective = None
        self._status = None

    def setOptionValue(self, name, value):
        self.options[name] = value

    def addCols(self, num, cost, lower, upper, nnz, starts, indices, values):
        assert nnz == 0 and len(starts) >= 0
        self.cost = np.concatenate([self.cost, np.asarray(cost, dtype=float)])
        self.col_lower = np.concatenate([self.col_lower, np.asarray(lower, dtype=float)])
        self.col_upper = np.concatenate([self.col_upper, np.asarray(upper, dtype=float)])

    def addRows(self, num, lower, upper, nnz, starts, indices, values):
        starts = list(starts) + [nnz]
        for r in range(num):
            entries = {
                int(indices[k]): float(values[k])
                for k in range(starts[r], starts[r + 1])
            }
            self.rows.append((float(lower[r]), float(upper[r]), entries))

    def changeColsCost(self, num, indices, cost):
        for i, c in zip(indices, cost):
            self.cost[int(i)] = float(c)

    def deleteRows(self, num, indices):
        drop = {int(i) for i in indices}
        assert len(drop) == num
        self.rows = [row for r, row in enumerate(self.rows) if r not in drop]

    def clearSolver(self):
        self.solver_cleared += 1

    def run(self):
        from scipy.optimize import linprog

        self.runs += 1
        width = self.cost.shape[0]
        A_ub, b_ub = [], []
        for lower, upper, entries in self.rows:
            dense = np.zeros(width)
            for column, value in entries.items():
                dense[column] = value
            if np.isfinite(upper):
                A_ub.append(dense)
                b_ub.append(upper)
            if np.isfinite(lower):
                A_ub.append(-dense)
                b_ub.append(-lower)
        bounds = list(zip(self.col_lower, self.col_upper))
        result = linprog(
            c=self.cost,
            A_ub=np.array(A_ub) if A_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            bounds=bounds,
            method="highs",
        )
        status = _FakeHighsModelStatus
        if result.status == 0:
            self._status = status.kOptimal
            self._solution = result.x
            self._objective = float(result.fun)
        elif result.status == 2:
            self._status = status.kInfeasible
        elif result.status == 3:
            self._status = status.kUnbounded
        else:  # pragma: no cover - defensive
            raise AssertionError(result.message)

    def getModelStatus(self):
        return self._status

    def getSolution(self):
        class _Solution:
            col_value = self._solution

        return _Solution()

    def getObjectiveValue(self):
        return self._objective


@pytest.fixture
def fake_highspy(monkeypatch):
    import sys
    import types

    module = types.ModuleType("highspy")
    module.kHighsInf = np.inf
    module.HighsModelStatus = _FakeHighsModelStatus
    module.Highs = _FakeHighs
    monkeypatch.setitem(sys.modules, "highspy", module)
    return module


def test_highs_backend_runs_the_incremental_loop_on_the_fake(fake_highspy):
    backend = HighsBackend()
    assert backend.incremental and backend.warm_started
    ground = GROUNDS[4]
    oracle = shannon_row_oracle(ground)
    objective = _invalid_pair_objective(ground)
    result = minimize_lazy(objective, oracle, bounds=(0, 1), backend=backend)
    reference = minimize_lazy(objective, oracle, bounds=(0, 1), backend="scipy")
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(reference.objective, abs=1e-8)
    assert result.rowgen.backend == "highs"


def test_highs_model_delete_rows_offsets_past_fixed_rows(fake_highspy):
    backend = HighsBackend()
    fixed = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, -1.0]]))
    model = backend.incremental_model(
        2, np.ones(2), bounds=(0, None), A_fixed=fixed, b_fixed=[5.0, 5.0]
    )
    highs = model._model
    model.add_rows(["a", "b"], sp.csr_matrix(np.array([[-1.0, 0.0], [0.0, -1.0]])), rhs=[-1.0, -2.0])
    assert len(highs.rows) == 4
    model.delete_rows(["a"])
    # The fixed rows (model rows 0-1) survive; keyed row "b" is now model row 2.
    assert len(highs.rows) == 3
    assert highs.rows[2][2] == {1: -1.0}
    result = model.solve()
    np.testing.assert_allclose(result.solution, [0.0, 2.0], atol=1e-9)


def test_highs_model_cold_solve_clears_state(fake_highspy):
    backend = HighsBackend()
    model = backend.incremental_model(2, np.ones(2), bounds=(0, None))
    model.solve()
    assert model._model.solver_cleared == 0
    model.solve(warm=False)
    assert model._model.solver_cleared == 1


def test_highs_model_objective_swap(fake_highspy):
    backend = HighsBackend()
    model = backend.incremental_model(2, np.array([1.0, 0.0]), bounds=(0, 1))
    first = model.solve()
    model.set_objective(np.array([-1.0, 0.0]))
    second = model.solve()
    assert first.objective == pytest.approx(0.0)
    assert second.objective == pytest.approx(-1.0)


def test_highs_one_shot_solve_with_equalities(fake_highspy):
    backend = HighsBackend()
    # min x0 s.t. x0 + x1 = 1, x >= 0  →  x0 = 0.
    result = backend.solve(
        [1.0, 0.0], A_eq=np.array([[1.0, 1.0]]), b_eq=[1.0]
    )
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(0.0)


# --------------------------------------------------------------------- #
# seed="containment" (Eq. (8)-aware seeding)
# --------------------------------------------------------------------- #
def _context_of(inequality):
    """The context ``K`` of a submodularity row ``I(i;j|K) ≥ 0``."""
    positive = [set(subset) for subset, coeff in inequality.coefficients if coeff > 0]
    assert len(positive) == 2
    return positive[0] & positive[1]


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_containment_seed_bit_exact_against_bruteforce(n):
    """The seed ids are exactly the brute-force ``|K| ≤ 1`` enumeration."""
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    expected = [
        row_id
        for row_id, inequality in enumerate(elemental_inequalities(ground))
        if inequality.kind == "monotonicity" or len(_context_of(inequality)) <= 1
    ]
    seed = oracle.containment_seed_ids()
    assert seed.tolist() == expected
    # And the materialized rows are bit-for-bit the dense matrix's rows.
    dense = lattice_context(ground).elemental_matrix()
    difference = oracle.rows_matrix(seed) - dense[np.asarray(expected)]
    assert difference.nnz == 0


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_containment_seed_size(n):
    oracle = shannon_row_oracle(GROUNDS[n])
    pairs = n * (n - 1) // 2
    assert oracle.containment_seed_ids().shape[0] == n + pairs * min(
        n - 1, 1 << max(n - 2, 0)
    )


def test_unknown_seed_name_rejected():
    oracle = shannon_row_oracle(GROUNDS[3])
    with pytest.raises(LPError, match="unknown rowgen seed"):
        oracle.seed_ids_for("exotic")


EQ8_PAIRS = [
    ("R(x,y), R(y,z), R(z,x)", "R(a,b), R(a,c)"),
    ("R(x1,x2), R(x2,x3), R(x3,x4), R(x4,x1)", "R(a,b), R(b,c)"),
    ("R(x,y), R(y,z)", "R(a,b), R(b,c)"),
]


@pytest.mark.parametrize("q1_text,q2_text", EQ8_PAIRS)
@pytest.mark.parametrize("backend", ["scipy", "scipy-incremental"])
def test_containment_seed_rounds_never_exceed_generic(q1_text, q2_text, backend):
    """On Eq. (8) systems the workload-aware seed can only save rounds."""
    q1, q2 = to_boolean_pair(parse_query(q1_text), parse_query(q2_text))
    inequality = build_containment_inequality(q1, q2)
    assert not inequality.is_trivially_false
    prover = shannon_prover(inequality.ground)
    branches = [
        branch.with_ground(inequality.ground)
        for branch in inequality.as_max_ii().branches
    ]
    rows = sp.csr_matrix(np.array([prover.expression_vector(b) for b in branches]))
    oracle = shannon_row_oracle(inequality.ground)
    outcomes = {}
    for seed in ("generic", "containment"):
        feasible, _, report = check_feasibility_lazy(
            rows.shape[1],
            oracle,
            A_ub=rows,
            b_ub=-np.ones(rows.shape[0]),
            options=RowGenOptions(seed=seed),
            backend=backend,
        )
        outcomes[seed] = (feasible, report)
    assert outcomes["generic"][0] == outcomes["containment"][0]
    assert outcomes["containment"][1].rounds <= outcomes["generic"][1].rounds


def test_pipeline_marks_eq8_requests_with_the_containment_seed():
    q1 = parse_query("R(x,y), R(y,z), R(z,x)")
    q2 = parse_query("R(a,b), R(a,c)")
    pipeline = containment_pipeline(q1, q2)
    request = next(pipeline)
    assert request.over == "gamma"
    assert request.seed == "containment"
    pipeline.close()


@pytest.mark.parametrize("seed", ["generic", "containment"])
def test_seeded_verdicts_match_through_decide_max_ii(seed):
    from repro.infotheory.maxiip import decide_max_ii

    q1, q2 = to_boolean_pair(
        parse_query("R(x,y), R(y,z), R(z,x)"), parse_query("R(a,b), R(a,c)")
    )
    inequality = build_containment_inequality(q1, q2)
    verdict = decide_max_ii(
        inequality.as_max_ii(),
        over="gamma",
        ground=inequality.ground,
        lp_method="rowgen",
        seed=seed,
    )
    assert verdict.valid
