"""Unit tests for the homomorphism-domination-exponent estimator (Section 2.1)."""

from fractions import Fraction

import pytest

from repro.core.domination import homomorphism_domination_exponent
from repro.cq.structures import Structure
from repro.exceptions import QueryError


@pytest.fixture
def triangle():
    return Structure.from_facts([("R", (0, 1)), ("R", (1, 2)), ("R", (2, 0))])


@pytest.fixture
def edge():
    return Structure.from_facts([("R", ("a", "b"))])


def test_exponent_of_structure_against_itself(edge):
    report = homomorphism_domination_exponent(edge, edge, denominator=1, max_numerator=3)
    # c = 1 always holds (A dominates itself); c = 2 fails because
    # |hom(A,D)|^2 > |hom(A,D)| whenever the count exceeds 1.
    assert report["lower_bound"] == Fraction(1)
    assert report["upper_bound"] == Fraction(2)
    assert report["verdicts"][Fraction(1)] == "contained"
    assert report["verdicts"][Fraction(2)] == "not_contained"


def test_exponent_triangle_vs_edge(triangle, edge):
    # |hom(triangle, D)| <= |hom(edge, D)| (the edge bounds the triangle via
    # its homomorphic image), so the exponent is at least 1.
    report = homomorphism_domination_exponent(
        triangle, edge, denominator=2, max_numerator=2
    )
    assert report["lower_bound"] >= Fraction(1, 2)
    assert all(value in {"contained", "not_contained", "unknown"}
               for value in report["verdicts"].values())


def test_exponent_rejects_bad_parameters(triangle, edge):
    with pytest.raises(QueryError):
        homomorphism_domination_exponent(triangle, edge, denominator=0)
    with pytest.raises(QueryError):
        homomorphism_domination_exponent(triangle, edge, max_numerator=0)


def test_exponent_stops_at_first_failure(edge, triangle):
    report = homomorphism_domination_exponent(
        edge, triangle, denominator=1, max_numerator=4
    )
    # Once an exponent fails, larger exponents are not attempted.
    failed = [exp for exp, verdict in report["verdicts"].items() if verdict != "contained"]
    if failed:
        assert max(report["verdicts"]) == min(failed)
