"""Tests for span tracing: tracer mechanics, tree well-formedness, summaries.

The well-formedness class is the one the telemetry PR hangs its hat on: a
traced batch — in *both* worker modes — must produce a single span tree with
no orphans, no duplicate ids, and every child's interval inside its
parent's.  Process mode additionally exercises the cross-process adoption
path (worker-side spans shipped back inside ``PipelineStep`` and grafted
under the pair span).
"""

import io

import pytest

from repro.cq.parser import parse_query
from repro.obs import trace_tools
from repro.obs.tracer import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    read_spans_jsonl,
    record_span,
    span,
    start_span,
    tracing,
)
from repro.service import BatchOptions, ContainmentService

#: Slack for interval containment checks: span clocks are read at slightly
#: different moments than their parents' (and adoption offsets are measured
#: around a pool submit), so exact nesting only holds up to scheduling noise.
CLOCK_SLACK = 0.050


def well_formed(records):
    """Assert the span list forms one forest of properly nested intervals."""
    ids = [record.span_id for record in records]
    assert len(ids) == len(set(ids)), "duplicate span ids"
    by_id = {record.span_id: record for record in records}
    for record in records:
        assert record.duration >= 0.0
        if record.parent_id is None:
            continue
        assert record.parent_id in by_id, f"orphan span {record.name!r}"
        parent = by_id[record.parent_id]
        assert record.start >= parent.start - CLOCK_SLACK, (
            f"{record.name} starts before its parent {parent.name}"
        )
        assert (
            record.start + record.duration
            <= parent.start + parent.duration + CLOCK_SLACK
        ), f"{record.name} ends after its parent {parent.name}"


class TestTracerMechanics:
    def test_span_context_manager_nests_on_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        records = {record.name: record for record in tracer.records()}
        assert records["inner"].parent_id == outer.id
        assert records["outer"].parent_id is None

    def test_start_does_not_touch_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            handle = tracer.start("cross-thread")
            assert tracer.current_id() == outer.id  # still the ctx-manager span
            handle.finish()
        names = {record.name for record in tracer.records()}
        assert names == {"outer", "cross-thread"}

    def test_record_files_retrospective_spans(self):
        tracer = Tracer()
        started = tracer.epoch + 1.0
        span_id = tracer.record("round", started, 0.25, cuts=3)
        (record,) = tracer.records()
        assert record.span_id == span_id
        assert record.start == pytest.approx(1.0)
        assert record.duration == 0.25
        assert record.attrs == {"cuts": 3}

    def test_adopt_remaps_ids_parents_and_timeline(self):
        tracer = Tracer()
        parent = tracer.start("pair")
        worker_spans = [
            SpanRecord(span_id=1, parent_id=None, name="advance", start=0.0, duration=0.5),
            SpanRecord(span_id=2, parent_id=1, name="stage", start=0.1, duration=0.2),
        ]
        tracer.adopt(worker_spans, parent=parent.id, start_offset=10.0)
        parent.finish()
        by_name = {record.name: record for record in tracer.records()}
        assert by_name["advance"].parent_id == parent.id
        assert by_name["stage"].parent_id == by_name["advance"].span_id
        assert by_name["advance"].start == pytest.approx(10.0)
        assert by_name["stage"].start == pytest.approx(10.1)
        ids = {record.span_id for record in tracer.records()}
        assert len(ids) == 3  # all re-allocated, no clashes with the parent

    def test_export_jsonl_round_trips(self):
        tracer = Tracer()
        with tracer.span("outer", tag="x"):
            with tracer.span("inner"):
                pass
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 2
        loaded = read_spans_jsonl(io.StringIO(buffer.getvalue()))
        assert [record.name for record in loaded] == ["outer", "inner"]
        assert loaded[0].attrs == {"tag": "x"}
        well_formed(loaded)

    def test_global_activation_is_exclusive(self):
        tracer = Tracer()
        activate(tracer)
        try:
            assert active_tracer() is tracer
            with pytest.raises(RuntimeError):
                activate(Tracer())
        finally:
            assert deactivate() is tracer
        assert active_tracer() is None

    def test_module_helpers_are_noops_when_inactive(self):
        assert active_tracer() is None
        with span("ignored") as handle:
            assert handle is NULL_SPAN
        assert start_span("ignored") is NULL_SPAN
        record_span("ignored", 0.0, 1.0)  # must not raise

    def test_module_helpers_hit_the_active_tracer(self):
        with tracing() as tracer:
            with span("outer"):
                record_span("retro", tracer.epoch, 0.1)
            start_span("floating").finish()
        names = sorted(record.name for record in tracer.records())
        assert names == ["floating", "outer", "retro"]


@pytest.mark.parametrize("worker_mode", ["thread", "process"])
class TestBatchSpanTree:
    def run_traced_batch(self, worker_mode):
        pairs = [
            (
                parse_query("R(x,y), R(y,z), R(z,x)", name="tri"),
                parse_query("R(a,b), R(a,c)", name="vee"),
            ),
            (
                parse_query("R(x,y), R(y,z), R(z,x)", name="tri2"),
                parse_query("R(a,b), R(a,c)", name="vee2"),
            ),
            (
                parse_query("R(x,y), R(y,z)", name="path"),
                parse_query("R(a,b), R(b,c), R(c,d)", name="path3"),
            ),
        ]
        service = ContainmentService(
            BatchOptions(worker_mode=worker_mode, max_workers=2, on_error="capture")
        )
        with tracing() as tracer:
            report = service.run(pairs)
        service.close()
        assert all(result.status.value != "unknown" for result in report.results)
        return tracer.records()

    def test_tree_is_well_formed(self, worker_mode):
        records = self.run_traced_batch(worker_mode)
        well_formed(records)

    def test_single_request_root_and_expected_phases(self, worker_mode):
        records = self.run_traced_batch(worker_mode)
        roots = [record for record in records if record.parent_id is None]
        assert [root.name for root in roots] == ["request"]
        by_name = {record.name: record for record in records}
        assert by_name["batch"].parent_id == roots[0].span_id
        assert by_name["batch"].attrs["mode"] == worker_mode
        names = {record.name for record in records}
        assert {"request", "batch", "pair", "canonicalize", "plan-cache", "advance"} <= names
        assert by_name["canonicalize"].parent_id == roots[0].span_id
        assert by_name["plan-cache"].parent_id == roots[0].span_id
        batch_id = by_name["batch"].span_id
        pair_spans = [record for record in records if record.name == "pair"]
        assert len(pair_spans) == 2  # the duplicate triangle pair deduplicates
        assert all(record.parent_id == batch_id for record in pair_spans)
        outcomes = {record.attrs.get("outcome") for record in pair_spans}
        assert outcomes == {"contained", "not_contained"}

    def test_advances_attach_under_their_pair(self, worker_mode):
        records = self.run_traced_batch(worker_mode)
        pair_ids = {
            record.span_id for record in records if record.name == "pair"
        }
        advances = [record for record in records if record.name == "advance"]
        assert advances
        assert all(record.parent_id in pair_ids for record in advances)


class TestTraceTools:
    def sample_records(self):
        return [
            SpanRecord(span_id=1, parent_id=None, name="batch", start=0.0, duration=10.0),
            SpanRecord(span_id=2, parent_id=1, name="pair", start=0.0, duration=9.0,
                       attrs={"index": 0}),
            SpanRecord(span_id=3, parent_id=1, name="pair", start=1.0, duration=4.0,
                       attrs={"index": 1}),
            SpanRecord(span_id=4, parent_id=2, name="advance", start=0.5, duration=6.0),
        ]

    def test_phase_totals_include_self_time(self):
        totals = trace_tools.phase_totals(self.sample_records())
        assert totals["batch"]["count"] == 1
        assert totals["pair"]["count"] == 2
        assert totals["pair"]["seconds"] == pytest.approx(13.0)
        # pair self time: (9 - 6) from pair#0 plus all 4.0 of pair#1.
        assert totals["pair"]["self_seconds"] == pytest.approx(7.0)

    def test_critical_path_is_duration_greedy(self):
        path = trace_tools.critical_path(self.sample_records())
        assert [step["name"] for step in path] == ["batch", "pair", "advance"]
        assert path[1]["fraction_of_parent"] == pytest.approx(0.9)

    def test_dangling_parent_becomes_a_root(self):
        records = [
            SpanRecord(span_id=5, parent_id=99, name="stray", start=0.0, duration=1.0)
        ]
        roots = trace_tools.build_forest(records)
        assert [root.name for root in roots] == ["stray"]

    def test_summarize_and_format(self):
        summary = trace_tools.summarize(self.sample_records(), top=1)
        assert summary["spans"] == 4
        assert len(summary["slowest_pairs"]) == 1
        assert summary["slowest_pairs"][0]["seconds"] == 9.0
        text = trace_tools.format_summary(summary)
        assert "critical path:" in text
        assert "slowest pairs:" in text
