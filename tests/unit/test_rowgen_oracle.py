"""The separation oracle agrees with the explicit dense elemental matrix.

The oracle's row ids and row values must match an exhaustive evaluation of
:meth:`SubsetLattice.elemental_matrix` row by row — including the argmax of
the violation, the no-cut answer on points already in ``Γn``, and tied
most-violated rows — on every ground size the dense matrix is cheap to
enumerate (``n ≤ 5``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infotheory.functions import (
    parity_function,
    step_function,
    uniform_function,
)
from repro.lp.rowgen import shannon_row_oracle
from repro.utils.lattice import lattice_context

GROUNDS = {n: tuple(f"X{i}" for i in range(1, n + 1)) for n in range(1, 6)}


def dense_row_values(ground, dense_point):
    """Every elemental row's value via the materialized CSR matrix."""
    lattice = lattice_context(ground)
    canonical = dense_point[lattice.canon_masks[1:]]
    return lattice.elemental_matrix() @ canonical


def random_dense_points(ground, count, seed):
    lattice = lattice_context(ground)
    rng = np.random.default_rng(seed)
    for _ in range(count):
        dense = rng.normal(size=lattice.size)
        dense[0] = 0.0
        yield dense


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_row_count_matches_dense_matrix(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    assert oracle.row_count == lattice_context(ground).elemental_matrix().shape[0]


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_row_values_match_dense_matrix_on_random_points(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    for dense in random_dense_points(ground, count=20, seed=n):
        np.testing.assert_allclose(
            oracle.row_values(dense), dense_row_values(ground, dense), atol=1e-12
        )


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_most_violated_agrees_with_explicit_argmax(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    for dense in random_dense_points(ground, count=20, seed=100 + n):
        expected_values = dense_row_values(ground, dense)
        row_id, value = oracle.most_violated(dense)
        assert value == pytest.approx(expected_values.min(), abs=1e-12)
        assert expected_values[row_id] == pytest.approx(value, abs=1e-12)


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_separate_returns_exactly_the_violated_rows(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    tolerance = 1e-9
    for dense in random_dense_points(ground, count=20, seed=200 + n):
        expected_values = dense_row_values(ground, dense)
        expected_ids = set(np.nonzero(expected_values < -tolerance)[0].tolist())
        ids, values = oracle.separate(dense, tolerance, max_cuts=oracle.row_count)
        assert set(ids.tolist()) == expected_ids
        np.testing.assert_allclose(values, expected_values[ids], atol=1e-12)
        # Most-violated first.
        assert np.all(np.diff(values) >= 0)


@pytest.mark.parametrize(
    "build",
    [
        lambda g: step_function(g, g[:1]).dense_values(),
        lambda g: uniform_function(g, max(1, len(g) - 1)).dense_values(),
        lambda g: np.zeros(1 << len(g)),
    ],
    ids=["step", "uniform-matroid", "zero"],
)
@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_points_in_gamma_yield_no_cut(n, build):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    dense = np.asarray(build(ground), dtype=float)
    ids, values = oracle.separate(dense, 1e-9)
    assert ids.size == 0 and values.size == 0


def test_parity_function_yields_no_cut():
    # Entropic (hence polymatroid) but outside the normal cone: a good
    # non-trivial member of Γ3.
    parity = parity_function(("X1", "X2", "X3"))
    oracle = shannon_row_oracle(parity.ground)
    ids, _ = oracle.separate(parity.dense_values(), 1e-9)
    assert ids.size == 0


def test_tied_most_violated_rows_are_all_reported():
    # A point violating every pair's empty-context submodularity equally:
    # h ≡ 0 except h(full) = 1 on n = 3 violates I(i;j) for... construct
    # instead the symmetric point h(X) = -|X|, which violates all
    # monotonicity rows h(V) - h(V\i) = -1 equally (ties) while keeping
    # submodularity values at 0.
    ground = GROUNDS[3]
    lattice = lattice_context(ground)
    oracle = shannon_row_oracle(ground)
    dense = -lattice.popcount.astype(float)
    expected_values = dense_row_values(ground, dense)
    minimum = expected_values.min()
    tied = set(np.nonzero(expected_values <= minimum + 1e-12)[0].tolist())
    assert len(tied) >= 2  # the construction really does tie
    ids, values = oracle.separate(dense, 1e-9, max_cuts=oracle.row_count)
    reported = set(ids.tolist())
    # Every tied row is violated, so all of them must be reported; the
    # most-violated answer must sit inside the tie set.
    assert tied <= reported
    row_id, value = oracle.most_violated(dense)
    assert row_id in tied
    assert value == pytest.approx(minimum, abs=1e-12)


def test_max_cuts_keeps_the_most_violated_rows():
    ground = GROUNDS[4]
    oracle = shannon_row_oracle(ground)
    rng = np.random.default_rng(7)
    dense = rng.normal(size=1 << 4)
    dense[0] = 0.0
    all_ids, all_values = oracle.separate(dense, 1e-9, max_cuts=oracle.row_count)
    assert all_ids.size > 3
    top_ids, top_values = oracle.separate(dense, 1e-9, max_cuts=3)
    assert top_ids.size == 3
    # The 3 returned rows are the 3 most violated overall.
    np.testing.assert_allclose(top_values, all_values[:3], atol=1e-12)
    assert set(top_ids.tolist()) <= set(all_ids.tolist())


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_rows_matrix_matches_dense_matrix_rows(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    full = lattice_context(ground).elemental_matrix().toarray()
    rng = np.random.default_rng(n)
    ids = rng.choice(oracle.row_count, size=min(10, oracle.row_count), replace=False)
    sub = oracle.rows_matrix(ids).toarray()
    np.testing.assert_allclose(sub, full[ids], atol=0)


@pytest.mark.parametrize("n", sorted(GROUNDS))
def test_seed_ids_are_monotonicity_plus_rank1_submodularity(n):
    ground = GROUNDS[n]
    oracle = shannon_row_oracle(ground)
    _, _, kinds = oracle.row_data(oracle.seed_ids())
    assert kinds.count("monotonicity") == n
    assert kinds.count("submodularity") == n * (n - 1) // 2
    # The submodular seeds are exactly the unconditioned I(i;j) >= 0 rows.
    masks, coeffs, row_kinds = oracle.row_data(oracle.seed_ids())
    for row_masks, row_coeffs, kind in zip(masks, coeffs, row_kinds):
        if kind == "submodularity":
            assert row_coeffs[3] == 0.0 and row_masks[3] == 0
