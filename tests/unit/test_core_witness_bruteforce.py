"""Unit tests for witness construction and the brute-force refutation baselines."""

import pytest

from repro.cq.decompositions import junction_tree
from repro.cq.homomorphism import count_query_to_query_homomorphisms
from repro.cq.parser import parse_query
from repro.core.brute_force import (
    brute_force_refute,
    containment_holds_on_small_databases,
    search_normal_witness,
    search_product_witness,
    search_random_relation_witness,
    search_small_database_witness,
)
from repro.core.containment_inequality import build_containment_inequality
from repro.core.witness import (
    normal_witness_relation,
    product_witness_relation,
    verify_witness,
    witness_from_normal_coefficients,
    witness_from_relation,
)
from repro.exceptions import WitnessError
from repro.infotheory.entropy import relation_entropy
from repro.workloads.paper_examples import example_3_5, example_3_5_normal_witness


def test_normal_witness_relation_entropy():
    ground = ("a", "b", "c")
    multiplicities = {frozenset({"a"}): 2, frozenset({"b", "c"}): 1}
    relation = normal_witness_relation(ground, multiplicities)
    assert len(relation) == 2**3
    entropy = relation_entropy(relation)
    # The entropy is exactly 2·h_{a} + 1·h_{bc}:
    #   h({a}) = 2·0 + 1·1 = 1,  h({b}) = 2·1 + 1·0 = 2,  h(V) = 2 + 1 = 3.
    assert entropy({"a"}) == pytest.approx(1.0)
    assert entropy({"b"}) == pytest.approx(2.0)
    assert entropy.total() == pytest.approx(3.0)
    assert relation.is_totally_uniform()


def test_normal_witness_relation_size_guard():
    with pytest.raises(WitnessError):
        normal_witness_relation(("a", "b"), {frozenset({"a"}): 20}, max_rows=100)
    with pytest.raises(WitnessError):
        normal_witness_relation(("a", "b"), {})


def test_product_witness_relation():
    relation = product_witness_relation(("a", "b"), {"a": 2, "b": 3})
    assert len(relation) == 6
    with pytest.raises(WitnessError):
        product_witness_relation(("a", "b"), {"a": 100, "b": 100}, max_rows=10)


def test_verify_witness_positive_and_negative(example_35_pair):
    witness_relation = example_3_5_normal_witness(n=2)
    witness = witness_from_relation(
        example_35_pair.q1, example_35_pair.q2, witness_relation
    )
    assert witness is not None
    assert witness.hom_q1 > witness.hom_q2
    assert witness.gap > 0
    # n = 1 gives |P| = 1 which is not a witness in the Fact 3.2 sense.
    from repro.core.witness import is_fact_32_witness

    too_small = example_3_5_normal_witness(n=1)
    assert not is_fact_32_witness(example_35_pair.q1, example_35_pair.q2, too_small)
    assert is_fact_32_witness(
        example_35_pair.q1, example_35_pair.q2, example_3_5_normal_witness(n=2)
    )


def test_witness_from_normal_coefficients_example_35(example_35_pair):
    q1, q2 = example_35_pair.q1, example_35_pair.q2
    inequality = build_containment_inequality(q1, q2, [junction_tree(q2)])
    hom_count = count_query_to_query_homomorphisms(q2, q1)
    coefficients = {
        frozenset({"x1", "x2"}): 1.0,
        frozenset({"xp1", "xp2"}): 1.0,
    }
    witness = witness_from_normal_coefficients(inequality, coefficients, hom_count)
    assert witness.hom_q1 > witness.hom_q2
    assert "normal witness" in witness.description


def test_witness_from_normal_coefficients_rejects_non_violating(vee_pair):
    # The Vee pair IS contained, so no coefficients can violate the inequality.
    inequality = build_containment_inequality(vee_pair.q1, vee_pair.q2)
    with pytest.raises(WitnessError):
        witness_from_normal_coefficients(
            inequality, {frozenset({"X1"}): 1.0}, hom_count=3
        )


def test_search_product_witness_example():
    # R(x,y) vs R(x,y),R(x,z): counts n^2 vs n^3-ish -> product witness exists
    # already on a product relation with 2 values per column.
    q1 = parse_query("R(x, y), R(z, w)")
    q2 = parse_query("R(u, v)")
    witness = search_product_witness(q1, q2)
    assert witness is not None
    assert witness.hom_q1 > witness.hom_q2


def test_search_normal_witness_example_35(example_35_pair):
    witness = search_normal_witness(example_35_pair.q1, example_35_pair.q2)
    assert witness is not None


def test_search_product_witness_fails_for_example_35(example_35_pair):
    # Example 3.5's point: no product witness exists (we check small ones).
    assert (
        search_product_witness(example_35_pair.q1, example_35_pair.q2, max_column_size=3)
        is None
    )


def test_random_relation_search_finds_easy_witness():
    q1 = parse_query("R(x, y), R(z, w)")
    q2 = parse_query("R(u, v)")
    witness = search_random_relation_witness(q1, q2, samples=50)
    assert witness is not None


def test_brute_force_refute_contained_pair(vee_pair):
    assert brute_force_refute(vee_pair.q1, vee_pair.q2, random_samples=30) is None


def test_brute_force_refute_uncontained_pair(example_35_pair):
    witness = brute_force_refute(example_35_pair.q1, example_35_pair.q2)
    assert witness is not None
    assert witness.hom_q1 > witness.hom_q2


def test_small_database_exhaustive_search():
    q1 = parse_query("R(x, y), R(z, w)")
    q2 = parse_query("R(u, v)")
    witness = search_small_database_witness(q1, q2, domain_size=2, max_tuples_per_relation=2)
    assert witness is not None


def test_containment_holds_on_small_databases(vee_pair):
    assert containment_holds_on_small_databases(
        vee_pair.q1, vee_pair.q2, domain_size=2, max_tuples_per_relation=3
    )
    q1 = parse_query("R(x, y), R(z, w)")
    q2 = parse_query("R(u, v)")
    assert not containment_holds_on_small_databases(
        q1, q2, domain_size=2, max_tuples_per_relation=3
    )
