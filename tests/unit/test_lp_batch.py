"""Tests for the batched LP entry points (minimize_many, feasibility blocks)."""

import numpy as np
import pytest

from repro.exceptions import LPError
from repro.lp.solver import (
    FeasibilityBlock,
    LPStatus,
    check_feasibility,
    minimize,
    minimize_many,
    solve_feasibility_blocks,
)


class TestMinimizeMany:
    def test_agrees_with_sequential_minimize(self):
        A = [[-1.0, 0.0], [0.0, -1.0], [1.0, 1.0]]
        b = [0.0, 0.0, 4.0]
        objectives = [[1.0, 0.0], [0.0, 1.0], [-1.0, -1.0], [1.0, 1.0]]
        batched = minimize_many(objectives, A_ub=A, b_ub=b)
        for objective, result in zip(objectives, batched):
            single = minimize(objective, A_ub=A, b_ub=b)
            assert result.status == single.status
            assert result.objective == pytest.approx(single.objective)

    def test_empty_objective_list(self):
        assert minimize_many([], A_ub=[[1.0]], b_ub=[1.0]) == []

    def test_unbounded_detected(self):
        results = minimize_many([[-1.0]], A_ub=None, b_ub=None)
        assert results[0].status == LPStatus.UNBOUNDED

    def test_mismatched_widths_rejected(self):
        with pytest.raises(LPError):
            minimize_many([[1.0, 0.0], [1.0]], A_ub=[[1.0, 1.0]], b_ub=[1.0])


def _random_block(rng, num_variables):
    """A soft-constraint system A x ≤ -1 over x ≥ 0 with random signs."""
    rows = rng.integers(1, 4)
    A = rng.integers(-2, 3, size=(rows, num_variables)).astype(float)
    return FeasibilityBlock(
        num_variables=num_variables,
        A_soft=A,
        b_soft=-np.ones(rows),
    )


class TestSolveFeasibilityBlocks:
    def test_empty(self):
        assert solve_feasibility_blocks([]) == []

    def test_single_block_matches_check_feasibility(self):
        rng = np.random.default_rng(0)
        for trial in range(25):
            block = _random_block(rng, num_variables=3)
            feasible, _ = check_feasibility(
                num_variables=3, A_ub=block.A_soft, b_ub=block.b_soft
            )
            [result] = solve_feasibility_blocks([block])
            assert result.feasible == feasible, f"trial {trial}"
            if result.feasible:
                x = result.solution
                assert np.all(block.A_soft @ x <= np.asarray(block.b_soft) + 1e-6)

    def test_many_blocks_match_individual_solves(self):
        rng = np.random.default_rng(1)
        blocks = [_random_block(rng, num_variables=4) for _ in range(12)]
        expected = [
            check_feasibility(num_variables=4, A_ub=b.A_soft, b_ub=b.b_soft)[0]
            for b in blocks
        ]
        results = solve_feasibility_blocks(blocks)
        assert [r.feasible for r in results] == expected

    def test_hard_rows_are_enforced_exactly(self):
        # Soft row x0 ≤ -1 is satisfiable over x ≥ 0 only by violating the
        # hard row -x0 ≤ -2 (x0 ≥ 2); with the hard row present the block
        # must come back infeasible with slack ≈ 3.
        block = FeasibilityBlock(
            num_variables=1,
            A_soft=[[1.0]],
            b_soft=[-1.0],
            A_hard=[[-1.0]],
            b_hard=[-2.0],
        )
        [result] = solve_feasibility_blocks([block])
        assert not result.feasible
        assert result.slack == pytest.approx(3.0, abs=1e-6)

    def test_mixed_feasible_and_infeasible_blocks(self):
        feasible_block = FeasibilityBlock(
            num_variables=2, A_soft=[[-1.0, 0.0]], b_soft=[-1.0]
        )
        infeasible_block = FeasibilityBlock(
            num_variables=2, A_soft=[[1.0, 1.0]], b_soft=[-1.0]
        )
        results = solve_feasibility_blocks(
            [feasible_block, infeasible_block, feasible_block]
        )
        assert [r.feasible for r in results] == [True, False, True]
        assert results[0].solution is not None
        assert results[1].solution is None

    def test_block_without_soft_rows_rejected(self):
        with pytest.raises(LPError):
            solve_feasibility_blocks(
                [FeasibilityBlock(num_variables=1, A_soft=[], b_soft=[])]
            )
