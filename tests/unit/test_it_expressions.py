"""Unit tests for linear / conditional / max-linear expressions."""

import pytest

from repro.exceptions import ExpressionError
from repro.infotheory.expressions import (
    ConditionalExpression,
    ConditionalTerm,
    InformationInequality,
    LinearExpression,
    MaxInformationInequality,
)
from repro.infotheory.functions import parity_function

GROUND = ("X1", "X2", "X3")


def test_entropy_term_and_evaluation(parity):
    expression = LinearExpression.entropy_term(GROUND, {"X1", "X2"}, 2.0)
    assert expression.evaluate(parity) == pytest.approx(4.0)


def test_conditional_term_expansion(parity):
    expression = LinearExpression.conditional_term(GROUND, {"X2"}, {"X1"})
    # h(X2 | X1) = h(X1X2) - h(X1) = 1 for the parity function.
    assert expression.evaluate(parity) == pytest.approx(1.0)
    assert expression.coefficients[frozenset({"X1", "X2"})] == 1.0
    assert expression.coefficients[frozenset({"X1"})] == -1.0


def test_empty_set_coefficient_dropped():
    expression = LinearExpression(GROUND, {frozenset(): 5.0, frozenset({"X1"}): 1.0})
    assert frozenset() not in expression.coefficients


def test_zero_coefficients_dropped():
    expression = LinearExpression(GROUND, {frozenset({"X1"}): 0.0})
    assert expression.is_zero()


def test_unknown_variable_rejected():
    with pytest.raises(ExpressionError):
        LinearExpression(GROUND, {frozenset({"Z"}): 1.0})


def test_addition_and_scaling(parity):
    left = LinearExpression.entropy_term(GROUND, {"X1"})
    right = LinearExpression.entropy_term(GROUND, {"X2"}, -1.0)
    combined = 2.0 * (left + right)
    assert combined.evaluate(parity) == pytest.approx(0.0)
    assert (left - left).is_zero()


def test_substitution_collapses_images(parity):
    expression = LinearExpression.entropy_term(GROUND, {"X1", "X2"}, 3.0)
    substituted = expression.substitute({"X1": "X2"}, ground=GROUND)
    assert substituted.coefficients == {frozenset({"X2"}): 3.0}
    # Example 4.1 of the paper: 3h(Y1) + 4h(Y2Y3) - 6h(Y3) with φ collapsing
    # Y2, Y3 to X2 becomes 3h(X1) - 2h(X2).
    y_ground = ("Y1", "Y2", "Y3")
    example = (
        LinearExpression.entropy_term(y_ground, {"Y1"}, 3.0)
        + LinearExpression.entropy_term(y_ground, {"Y2", "Y3"}, 4.0)
        + LinearExpression.entropy_term(y_ground, {"Y3"}, -6.0)
    )
    image = example.substitute({"Y1": "X1", "Y2": "X2", "Y3": "X2"}, ground=GROUND)
    assert image.coefficients == {
        frozenset({"X1"}): 3.0,
        frozenset({"X2"}): -2.0,
    }


def test_conditional_term_properties():
    term = ConditionalTerm(targets={"X1", "X2"}, given={"X3"})
    assert term.is_simple
    assert not term.is_unconditioned
    wide = ConditionalTerm(targets={"X1"}, given={"X2", "X3"})
    assert not wide.is_simple
    with pytest.raises(ExpressionError):
        ConditionalTerm(targets={"X1"}, coefficient=-1.0)


def test_conditional_expression_flattening(parity):
    expression = ConditionalExpression(
        ground=GROUND,
        terms=(
            ConditionalTerm(targets={"X1", "X2"}),
            ConditionalTerm(targets={"X2"}, given={"X1"}),
        ),
    )
    assert expression.is_simple
    assert not expression.is_unconditioned
    assert expression.evaluate(parity) == pytest.approx(3.0)
    linear = expression.to_linear()
    assert linear.evaluate(parity) == pytest.approx(3.0)


def test_conditional_expression_substitution_keeps_structure():
    expression = ConditionalExpression(
        ground=("Y1", "Y2", "Y3"),
        terms=(
            ConditionalTerm(targets={"Y1", "Y2"}),
            ConditionalTerm(targets={"Y3"}, given={"Y1"}),
        ),
    )
    substituted = expression.substitute({"Y1": "X1", "Y2": "X2", "Y3": "X2"}, GROUND)
    assert substituted.is_simple
    assert len(substituted.terms) == 2


def test_conditional_expression_checks_ground():
    with pytest.raises(ExpressionError):
        ConditionalExpression(
            ground=("X1",), terms=(ConditionalTerm(targets={"X2"}),)
        )


def test_information_inequality_holds(parity):
    valid = InformationInequality(
        LinearExpression.entropy_term(GROUND, {"X1"})
        + LinearExpression.entropy_term(GROUND, {"X2"})
        - LinearExpression.entropy_term(GROUND, {"X1", "X2"})
    )
    assert valid.holds_for(parity)
    assert valid.violation(parity) == 0.0
    invalid = InformationInequality(
        LinearExpression.entropy_term(GROUND, {"X1", "X2"})
        - LinearExpression.entropy_term(GROUND, {"X1", "X2", "X3"})
        - LinearExpression.entropy_term(GROUND, {"X3"})
    )
    # h(X1X2) - h(X1X2X3) - h(X3) = 2 - 2 - 1 = -1 on the parity function.
    assert invalid.expression.evaluate(parity) == pytest.approx(-1.0)
    assert not invalid.holds_for(parity)
    assert invalid.violation(parity) == pytest.approx(-1.0)


def test_max_information_inequality(parity, example_38_max_ii):
    assert example_38_max_ii.holds_for(parity)
    assert len(example_38_max_ii) == 3
    assert set(example_38_max_ii.ground) == set(GROUND)
    single = MaxInformationInequality.single(
        LinearExpression.entropy_term(GROUND, {"X1"})
    )
    assert len(single) == 1
    with pytest.raises(ExpressionError):
        MaxInformationInequality(branches=())


def test_containment_form(parity):
    branch = LinearExpression.entropy_term(GROUND, {"X1", "X2"})
    inequality = MaxInformationInequality.containment_form(1.0, GROUND, [branch])
    # branch - h(V) on parity: 2 - 2 = 0, so the inequality holds with equality.
    assert inequality.max_value(parity) == pytest.approx(0.0)
    assert inequality.holds_for(parity)
