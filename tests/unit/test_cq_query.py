"""Unit tests for repro.cq.query (atoms, queries, vocabularies)."""

import pytest

from repro.cq.query import Atom, ConjunctiveQuery, Vocabulary, make_query
from repro.exceptions import QueryError, VocabularyError


def test_atom_basic():
    atom = Atom("R", ("x", "y", "x"))
    assert atom.arity == 3
    assert atom.variables == ("x", "y")
    assert atom.variable_set == frozenset({"x", "y"})
    assert str(atom) == "R(x, y, x)"


def test_atom_rename():
    atom = Atom("R", ("x", "y"))
    renamed = atom.rename({"x": "z"})
    assert renamed.args == ("z", "y")


def test_atom_rejects_empty_relation_and_args():
    with pytest.raises(QueryError):
        Atom("", ("x",))
    with pytest.raises(QueryError):
        Atom("R", ())
    with pytest.raises(QueryError):
        Atom("R", ("x", ""))


def test_query_variables_order():
    query = make_query([("R", ("b", "a")), ("S", ("a", "c"))])
    assert query.variables == ("b", "a", "c")
    assert query.variable_set == frozenset({"a", "b", "c"})


def test_query_deduplicates_atoms():
    query = make_query([("R", ("x", "y")), ("R", ("x", "y")), ("S", ("x",))])
    assert len(query.atoms) == 2


def test_query_head_must_be_in_body():
    with pytest.raises(QueryError):
        make_query([("R", ("x", "y"))], head=("z",))


def test_query_arity_consistency():
    with pytest.raises(VocabularyError):
        make_query([("R", ("x", "y")), ("R", ("x",))])


def test_query_boolean_and_projection_free():
    boolean = make_query([("R", ("x", "y"))])
    assert boolean.is_boolean
    full = make_query([("R", ("x", "y"))], head=("x", "y"))
    assert full.is_projection_free
    partial = make_query([("R", ("x", "y"))], head=("x",))
    assert not partial.is_projection_free
    assert partial.existential_variables == ("y",)


def test_query_vocabulary():
    query = make_query([("R", ("x", "y")), ("S", ("y", "z", "z"))])
    vocabulary = query.vocabulary
    assert vocabulary.arity("R") == 2
    assert vocabulary.arity("S") == 3
    assert set(vocabulary.relations()) == {"R", "S"}


def test_vocabulary_merge_conflict():
    with pytest.raises(VocabularyError):
        Vocabulary({"R": 2}).merged_with(Vocabulary({"R": 3}))


def test_vocabulary_unknown_relation():
    with pytest.raises(VocabularyError):
        Vocabulary({"R": 2}).arity("S")


def test_atoms_within():
    query = make_query([("R", ("x", "y")), ("S", ("y", "z"))])
    assert query.atoms_within({"x", "y"}) == (Atom("R", ("x", "y")),)
    assert query.atoms_within({"x"}) == ()


def test_rename_and_fresh_variables():
    query = make_query([("R", ("x", "y"))], head=("x",))
    renamed = query.rename({"x": "u"})
    assert renamed.head == ("u",)
    fresh = query.with_fresh_variables("_1")
    assert set(fresh.variables) == {"x_1", "y_1"}


def test_conjoin_merges_heads():
    q1 = make_query([("R", ("x", "y"))], head=("x",), name="A")
    q2 = make_query([("S", ("y", "z"))], head=("z",), name="B")
    combined = q1.conjoin(q2)
    assert set(combined.head) == {"x", "z"}
    assert len(combined.atoms) == 2


def test_disjoint_copies_counts():
    query = make_query([("R", ("x", "y"))])
    tripled = query.disjoint_copies(3)
    assert len(tripled.atoms) == 3
    assert len(tripled.variables) == 6
    with pytest.raises(QueryError):
        query.disjoint_copies(0)


def test_query_requires_at_least_one_atom():
    with pytest.raises(QueryError):
        ConjunctiveQuery(atoms=(), head=())


def test_drop_head():
    query = make_query([("R", ("x", "y"))], head=("x",))
    assert query.drop_head().is_boolean
