"""Unit tests for the Appendix A reductions (Boolean, bag-bag, saturation)."""

import pytest

from repro.cq.decompositions import has_simple_junction_tree, is_acyclic, is_chordal
from repro.cq.evaluation import evaluate_bag
from repro.cq.homomorphism import count_query_homomorphisms
from repro.cq.parser import parse_query
from repro.cq.reductions import (
    bag_bag_to_bag_set,
    bag_database_to_set_database,
    boolean_pair_database,
    desaturate_database,
    saturate_database,
    saturate_query,
    to_boolean_pair,
)
from repro.cq.structures import Structure
from repro.exceptions import ReductionError
from repro.workloads.paper_examples import chaudhuri_vardi_example


def test_to_boolean_pair_adds_guards():
    q1, q2 = chaudhuri_vardi_example()
    b1, b2 = to_boolean_pair(q1, q2)
    assert b1.is_boolean and b2.is_boolean
    assert len(b1.atoms) == len(q1.atoms) + 2
    assert len(b2.atoms) == len(q2.atoms) + 2


def test_to_boolean_pair_requires_matching_heads():
    q1 = parse_query("(x) :- R(x, y)")
    q2 = parse_query("R(x, y)")
    with pytest.raises(ReductionError):
        to_boolean_pair(q1, q2)


def test_to_boolean_pair_preserves_structure():
    # Lemma A.1 preserves acyclicity / chordality / simplicity.
    q1 = parse_query("(y1) :- A(y1,y2), B(y1,y3), C(y4,y2)")
    q2 = parse_query("(y1) :- A(y1,y2), B(y1,y3), C(y4,y2)")
    b1, b2 = to_boolean_pair(q1, q2)
    assert is_acyclic(b2) == is_acyclic(q2.drop_head())
    assert is_chordal(b2)
    assert has_simple_junction_tree(b2)


def test_boolean_semantics_matches_multiplicity():
    # |Q[d](D)| equals |hom(Q_bool, D + singleton guards)| (Lemma A.1 proof).
    q1, q2 = chaudhuri_vardi_example()
    b1, _ = to_boolean_pair(q1, q2)
    database = Structure.from_facts(
        [
            ("P", (0,)),
            ("R", (1,)),
            ("S", (2, 0)),
            ("S", (3, 1)),
            ("S", (2, 1)),
        ]
    )
    bag_answer = evaluate_bag(q1, database)
    for head, multiplicity in bag_answer.items():
        extended = boolean_pair_database(database, head, head_count=2)
        assert count_query_homomorphisms(b1, extended) == multiplicity


def test_bag_bag_reduction_shapes():
    query = parse_query("R(x, y), S(y, z)")
    reduced = bag_bag_to_bag_set(query)
    assert all(atom.arity == 3 for atom in reduced.atoms)
    assert len(reduced.variables) == len(query.variables) + 2


def test_bag_database_to_set_database_multiplicities():
    database = bag_database_to_set_database({"R": {(0, 1): 3, (1, 1): 1}})
    assert len(database.tuples("R_bb")) == 4
    with pytest.raises(ReductionError):
        bag_database_to_set_database({"R": {(0, 1): -1}})


def test_bag_bag_reduction_counts_duplicates():
    # The query R(x) over a bag database with tuple (0) of multiplicity 3
    # has bag-bag answer 3; after the reduction it is a bag-set count of 3.
    query = parse_query("R(x)")
    reduced = bag_bag_to_bag_set(query)
    database = bag_database_to_set_database({"R": {(0,): 3}})
    assert count_query_homomorphisms(reduced, database) == 3


def test_saturate_query_adds_projection_atoms():
    query = parse_query("R(x, y, z)")
    saturated = saturate_query(query)
    # 1 original atom + 6 proper non-empty projections.
    assert len(saturated.atoms) == 7
    assert is_chordal(saturated) == is_chordal(query)


def test_saturation_preserves_hom_counts():
    # Fact A.3: counts coincide between (Q, D) and (Q̂, D̂).
    query = parse_query("R(x, y), R(y, z)")
    saturated = saturate_query(query)
    database = Structure.from_facts(
        [("R", (0, 1)), ("R", (1, 0)), ("R", (1, 1))]
    )
    saturated_db = saturate_database(database)
    assert count_query_homomorphisms(query, database) == count_query_homomorphisms(
        saturated, saturated_db
    )


def test_desaturate_database_roundtrip():
    query = parse_query("R(x, y)")
    database = Structure.from_facts([("R", (0, 1)), ("R", (1, 1))])
    saturated_db = saturate_database(database)
    recovered = desaturate_database(saturated_db, query.vocabulary)
    assert recovered.tuples("R") == database.tuples("R")


def test_desaturate_drops_unsupported_tuples():
    query = parse_query("R(x, y)")
    # A saturated-vocabulary database where one tuple's projection is missing.
    database = Structure.from_facts(
        [
            ("R", (0, 1)),
            ("R", (2, 3)),
            ("R__proj_0", (0,)),
            ("R__proj_1", (1,)),
        ]
    )
    recovered = desaturate_database(database, query.vocabulary)
    assert recovered.tuples("R") == frozenset({(0, 1)})
