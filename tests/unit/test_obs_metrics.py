"""Tests for the metrics registry and its Prometheus text exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    format_value,
    global_registry,
    parse_exposition,
    render_registries,
)


class TestExpositionGolden:
    """The renderer emits exactly the Prometheus 0.0.4 text we expect."""

    def build_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "app_requests_total", "Requests served.", labelnames=("outcome",)
        )
        requests.inc(outcome="ok")
        requests.inc(2, outcome='shed "hard"\\path\n')
        registry.gauge("app_temperature", "Current temperature.").set(36.5)
        latency = registry.histogram(
            "app_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        latency.observe(0.05)
        latency.observe(0.5)
        latency.observe(5.0)
        return registry

    def test_golden_document(self):
        expected = "\n".join(
            [
                "# HELP app_latency_seconds Latency.",
                "# TYPE app_latency_seconds histogram",
                'app_latency_seconds_bucket{le="0.1"} 1',
                'app_latency_seconds_bucket{le="1"} 2',
                'app_latency_seconds_bucket{le="+Inf"} 3',
                "app_latency_seconds_sum 5.55",
                "app_latency_seconds_count 3",
                "# HELP app_requests_total Requests served.",
                "# TYPE app_requests_total counter",
                'app_requests_total{outcome="ok"} 1',
                'app_requests_total{outcome="shed \\"hard\\"\\\\path\\n"} 2',
                "# HELP app_temperature Current temperature.",
                "# TYPE app_temperature gauge",
                "app_temperature 36.5",
            ]
        ) + "\n"
        assert self.build_registry().render() == expected

    def test_every_family_has_help_and_type(self):
        text = self.build_registry().render()
        lines = text.splitlines()
        for family in ("app_requests_total", "app_temperature", "app_latency_seconds"):
            assert f"# TYPE {family} " in "\n".join(lines)
            help_index = lines.index(
                next(l for l in lines if l.startswith(f"# HELP {family} "))
            )
            assert lines[help_index + 1].startswith(f"# TYPE {family} ")

    def test_round_trips_through_the_strict_parser(self):
        samples = parse_exposition(self.build_registry().render())
        assert samples["app_requests_total"][(("outcome", "ok"),)] == 1.0
        # The escaped label value comes back verbatim.
        assert samples["app_requests_total"][
            (("outcome", 'shed "hard"\\path\n'),)
        ] == 2.0
        assert samples["app_temperature"][()] == 36.5
        assert samples["app_latency_seconds_count"][()] == 3.0
        assert samples["app_latency_seconds_bucket"][(("le", "+Inf"),)] == 3.0

    def test_callback_gauge_renders_at_scrape_time(self):
        registry = MetricsRegistry()
        value = [1.0]
        registry.gauge("live_value", "Scrape-time value.", callback=lambda: value[0])
        assert "live_value 1\n" in registry.render()
        value[0] = 7.5
        assert "live_value 7.5\n" in registry.render()


class TestHistogramBuckets:
    def test_boundary_lands_in_its_bucket(self):
        """Prometheus ``le`` is ≤ — a value equal to a bound is inside it."""
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=(0.1, 1.0, 10.0))
        hist.observe(0.1)
        hist.observe(1.0)
        hist.observe(10.0)
        assert hist.bucket_counts() == {"0.1": 1, "1": 2, "10": 3, "+Inf": 3}

    def test_overflow_goes_to_inf_only(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=(0.1, 1.0))
        hist.observe(50.0)
        assert hist.bucket_counts() == {"0.1": 0, "1": 0, "+Inf": 1}
        assert hist.count() == 1
        assert hist.sum() == 50.0

    def test_cumulative_counts_are_monotone(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=LATENCY_BUCKETS)
        for value in (0.0005, 0.003, 0.003, 0.2, 7.0, 200.0):
            hist.observe(value)
        counts = list(hist.bucket_counts().values())
        assert counts == sorted(counts)
        assert counts[-1] == 6

    def test_quantile_returns_bucket_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=(0.1, 1.0, 10.0))
        assert hist.quantile(0.5) is None
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(0.75) == 1.0
        assert hist.quantile(1.0) == 10.0

    def test_quantile_of_overflow_is_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=(1.0,))
        hist.observe(5.0)
        assert hist.quantile(1.0) == math.inf

    def test_buckets_must_strictly_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("h", "x.", buckets=(1.0, 1.0))
        with pytest.raises(MetricsError):
            registry.histogram("h2", "x.", buckets=())

    def test_labeled_histogram_keeps_series_apart(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "x.", buckets=(1.0,), labelnames=("kind",))
        hist.observe(0.5, kind="a")
        hist.observe(2.0, kind="b")
        assert hist.count(kind="a") == 1
        assert hist.count(kind="b") == 1
        assert hist.bucket_counts(kind="a") == {"1": 1, "+Inf": 1}
        assert hist.bucket_counts(kind="b") == {"1": 0, "+Inf": 1}


class TestCounterAndGauge:
    def test_counter_refuses_negative_and_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "x.")
        counter.inc(3)
        with pytest.raises(MetricsError):
            counter.inc(-1)
        with pytest.raises(MetricsError):
            counter.set_total(2)
        counter.set_total(5)
        assert counter.value() == 5.0

    def test_callback_gauge_rejects_labels_and_set(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.gauge("g", "x.", labelnames=("a",), callback=lambda: 1.0)
        gauge = registry.gauge("g2", "x.", callback=lambda: 1.0)
        with pytest.raises(MetricsError):
            gauge.set(2.0)

    def test_reregistration_returns_the_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "x.")
        assert registry.counter("c_total", "x.") is first
        with pytest.raises(MetricsError):
            registry.gauge("c_total", "x.")
        with pytest.raises(MetricsError):
            registry.counter("c_total", "x.", labelnames=("other",))

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("bad-name", "x.")
        with pytest.raises(MetricsError):
            registry.counter("ok_total", "x.", labelnames=("bad-label",))

    def test_wrong_label_set_is_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "x.", labelnames=("a",))
        with pytest.raises(MetricsError):
            counter.inc(a="1", b="2")
        with pytest.raises(MetricsError):
            counter.inc()


class TestConcurrency:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "x.", labelnames=("worker",))
        hist = registry.histogram("h", "x.", buckets=(0.5,))
        threads = 8
        per_thread = 2000

        def hammer(worker: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=str(worker % 2))
                hist.observe(float(i % 2))

        pool = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads * per_thread
        assert hist.count() == threads * per_thread
        assert hist.bucket_counts()["0.5"] == threads * per_thread // 2


class TestRenderRegistries:
    def test_merges_in_name_order_per_registry(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total", "x.")
        second.counter("b_total", "x.")
        text = render_registries(first, second)
        assert text.index("a_total") < text.index("b_total")
        assert parse_exposition(text).keys() == {"a_total", "b_total"}

    def test_duplicate_family_across_registries_is_an_error(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("dup_total", "x.")
        second.counter("dup_total", "x.")
        with pytest.raises(MetricsError):
            render_registries(first, second)

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestParseExpositionStrictness:
    def test_sample_without_type_is_rejected(self):
        with pytest.raises(MetricsError):
            parse_exposition("mystery_total 3\n")

    def test_duplicate_sample_is_rejected(self):
        text = "# TYPE c_total counter\nc_total 1\nc_total 2\n"
        with pytest.raises(MetricsError):
            parse_exposition(text)

    def test_bad_value_is_rejected(self):
        text = "# TYPE c_total counter\nc_total notanumber\n"
        with pytest.raises(MetricsError):
            parse_exposition(text)

    def test_malformed_label_block_is_rejected(self):
        text = '# TYPE c_total counter\nc_total{oops} 1\n'
        with pytest.raises(MetricsError):
            parse_exposition(text)

    def test_inf_values_parse(self):
        text = "# TYPE g gauge\ng +Inf\n"
        assert parse_exposition(text)["g"][()] == math.inf


def test_format_value_renders_integers_and_infinities():
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
