"""Unit tests for the LP layer (repro.lp)."""

import numpy as np
import pytest

from repro.lp.certificates import nonnegative_combination
from repro.lp.solver import LPStatus, check_feasibility, minimize


def test_minimize_simple():
    # minimize x + y subject to x + y >= 1, x, y >= 0.
    result = minimize([1.0, 1.0], A_ub=[[-1.0, -1.0]], b_ub=[-1.0])
    assert result.status == LPStatus.OPTIMAL
    assert result.objective == pytest.approx(1.0)


def test_minimize_infeasible():
    # x <= -1 with x >= 0 is infeasible.
    result = minimize([1.0], A_ub=[[1.0]], b_ub=[-1.0])
    assert result.status == LPStatus.INFEASIBLE


def test_minimize_unbounded():
    # minimize -x with x >= 0 unbounded below.
    result = minimize([-1.0])
    assert result.status == LPStatus.UNBOUNDED


def test_minimize_with_equality():
    result = minimize([0.0, 1.0], A_eq=[[1.0, 1.0]], b_eq=[2.0])
    assert result.status == LPStatus.OPTIMAL
    assert result.solution[0] == pytest.approx(2.0)
    assert result.solution[1] == pytest.approx(0.0)


def test_check_feasibility_feasible():
    feasible, point = check_feasibility(2, A_ub=[[1.0, 1.0]], b_ub=[5.0])
    assert feasible
    assert point is not None


def test_check_feasibility_infeasible():
    feasible, point = check_feasibility(1, A_ub=[[1.0], [-1.0]], b_ub=[-2.0, 1.0])
    assert not feasible
    assert point is None


def test_nonnegative_combination_exists():
    generators = np.array([[1.0, 0.0], [0.0, 1.0]])
    target = np.array([2.0, 3.0])
    combo = nonnegative_combination(generators, target)
    assert combo is not None
    assert np.allclose(combo @ generators, target)


def test_nonnegative_combination_missing():
    generators = np.array([[1.0, 0.0]])
    target = np.array([0.0, 1.0])
    assert nonnegative_combination(generators, target) is None


def test_nonnegative_combination_negative_target_coordinate():
    generators = np.array([[1.0, 1.0], [1.0, 0.0]])
    target = np.array([-1.0, 0.0])
    assert nonnegative_combination(generators, target) is None


def test_nonnegative_combination_shape_mismatch():
    with pytest.raises(ValueError):
        nonnegative_combination(np.array([[1.0, 0.0]]), np.array([1.0, 0.0, 0.0]))
