"""Unit tests for entropy computations and the special function families."""

import math

import pytest

from repro.cq.structures import Relation
from repro.exceptions import EntropyError
from repro.infotheory.entropy import (
    distribution_entropy,
    entropy_of_counts,
    entropy_of_distribution,
    projection_log_sizes,
    relation_entropy,
)
from repro.infotheory.functions import (
    modular_function,
    normal_function,
    parity_function,
    step_function,
    uniform_function,
    zero_function,
)
from repro.infotheory.polymatroid import is_modular, is_polymatroid


def test_entropy_of_counts_uniform():
    assert entropy_of_counts([1, 1, 1, 1]) == pytest.approx(2.0)
    assert entropy_of_counts([2, 2]) == pytest.approx(1.0)
    assert entropy_of_counts([5]) == pytest.approx(0.0)


def test_entropy_of_counts_empty_rejected():
    with pytest.raises(EntropyError):
        entropy_of_counts([])


def test_entropy_of_distribution():
    assert entropy_of_distribution([0.5, 0.5]) == pytest.approx(1.0)
    assert entropy_of_distribution([0.25] * 4) == pytest.approx(2.0)
    with pytest.raises(EntropyError):
        entropy_of_distribution([0.7, 0.7])
    with pytest.raises(EntropyError):
        entropy_of_distribution([-0.5, 1.5])


def test_relation_entropy_product():
    relation = Relation.product_relation({"a": range(2), "b": range(4)})
    entropy = relation_entropy(relation)
    assert entropy({"a"}) == pytest.approx(1.0)
    assert entropy({"b"}) == pytest.approx(2.0)
    assert entropy({"a", "b"}) == pytest.approx(3.0)
    assert is_modular(entropy)


def test_relation_entropy_parity(parity):
    relation = Relation(
        attributes=("X1", "X2", "X3"),
        rows={(x, y, (x + y) % 2) for x in range(2) for y in range(2)},
    )
    assert relation_entropy(relation).is_close_to(parity)


def test_relation_entropy_empty_rejected():
    with pytest.raises(EntropyError):
        relation_entropy(Relation(attributes=("a",), rows=frozenset()))


def test_relation_entropy_matches_log_sizes_when_uniform(diagonal_relation):
    entropy = relation_entropy(diagonal_relation)
    log_sizes = projection_log_sizes(diagonal_relation)
    assert entropy.is_close_to(log_sizes)


def test_distribution_entropy_nonuniform():
    entropy = distribution_entropy(("a",), {(0,): 0.5, (1,): 0.25, (2,): 0.25})
    assert entropy({"a"}) == pytest.approx(1.5)
    with pytest.raises(EntropyError):
        distribution_entropy(("a",), {(0,): 0.5})
    with pytest.raises(EntropyError):
        distribution_entropy(("a",), {(0, 1): 1.0})


def test_step_function_values():
    step = step_function(("a", "b", "c"), low_part=("a", "b"))
    assert step({"a"}) == 0.0
    assert step({"a", "b"}) == 0.0
    assert step({"c"}) == 1.0
    assert step({"a", "c"}) == 1.0
    assert is_polymatroid(step)


def test_step_function_entropy_of_step_relation():
    relation = Relation.step_relation(("a", "b", "c"), low_part=("a",))
    assert relation_entropy(relation).is_close_to(
        step_function(("a", "b", "c"), low_part=("a",))
    )


def test_step_function_requires_proper_subset():
    with pytest.raises(EntropyError):
        step_function(("a", "b"), low_part=("a", "b"))
    with pytest.raises(EntropyError):
        step_function(("a",), low_part=("z",))


def test_modular_function_values():
    modular = modular_function({"a": 1.0, "b": 2.0})
    assert modular({"a", "b"}) == 3.0
    assert is_modular(modular)
    with pytest.raises(EntropyError):
        modular_function({"a": -1.0})


def test_normal_function_combination():
    ground = ("a", "b", "c")
    normal = normal_function(
        ground, {frozenset({"a"}): 2.0, frozenset(): 1.0}
    )
    assert normal({"a"}) == pytest.approx(1.0)
    assert normal({"b"}) == pytest.approx(3.0)
    assert is_polymatroid(normal)
    with pytest.raises(EntropyError):
        normal_function(ground, {frozenset({"a"}): -1.0})
    with pytest.raises(EntropyError):
        normal_function(ground, {frozenset(ground): 1.0})


def test_parity_function_values(parity):
    assert parity({"X1"}) == 1.0
    assert parity({"X1", "X2"}) == 2.0
    assert parity({"X1", "X2", "X3"}) == 2.0
    with pytest.raises(EntropyError):
        parity_function(("a", "b"))


def test_uniform_function_and_zero():
    uniform = uniform_function(("a", "b", "c"), rank=2, scale=math.log2(3))
    assert uniform({"a"}) == pytest.approx(math.log2(3))
    assert uniform({"a", "b", "c"}) == pytest.approx(2 * math.log2(3))
    assert is_polymatroid(uniform)
    zero = zero_function(("a", "b"))
    assert zero.total() == 0.0
