"""Unit tests for Lemma 3.7 normalization and group-characterizable entropies."""

import pytest

from repro.cq.structures import Relation
from repro.infotheory.entropy import relation_entropy
from repro.infotheory.functions import (
    modular_function,
    normal_function,
    parity_function,
    uniform_function,
)
from repro.infotheory.group_entropy import (
    entropy_from_subspaces,
    group_characterizable_relation,
    parity_subspaces,
    span,
    subspace_dimension,
)
from repro.infotheory.imeasure import is_normal_function
from repro.infotheory.normalization import (
    modular_lower_bound,
    normal_lower_bound,
    normalization_gap,
)
from repro.infotheory.polymatroid import is_modular, is_polymatroid

GROUND = ("X1", "X2", "X3")


def check_lemma_3_7_item2(function):
    lower = normal_lower_bound(function)
    assert is_normal_function(lower), "the bound must be a normal function"
    assert function.dominates(lower), "the bound must be below the input"
    assert lower.total() == pytest.approx(function.total())
    for variable in function.ground:
        assert lower([variable]) == pytest.approx(function([variable]))
    return lower


def test_modular_lower_bound_properties(parity):
    lower = modular_lower_bound(parity)
    assert is_modular(lower)
    assert parity.dominates(lower)
    assert lower.total() == pytest.approx(parity.total())


def test_modular_lower_bound_respects_order(parity):
    lower = modular_lower_bound(parity, order=("X3", "X2", "X1"))
    assert is_modular(lower)
    assert parity.dominates(lower)
    assert lower.total() == pytest.approx(parity.total())
    with pytest.raises(Exception):
        modular_lower_bound(parity, order=("X1", "X2"))


def test_normal_lower_bound_on_parity(parity):
    # Example C.4 of the paper: the resulting function is normal, dominated
    # by the parity function, and agrees on singletons and on the full set.
    lower = check_lemma_3_7_item2(parity)
    # From Figure 1: h'(X1 X2) = 1 while parity has 2 there (some pair drops).
    pair_values = sorted(
        lower({a, b}) for a, b in (("X1", "X2"), ("X1", "X3"), ("X2", "X3"))
    )
    assert pair_values[0] <= 1.0 + 1e-9


def test_normal_lower_bound_fixed_point_on_normal_functions():
    normal = normal_function(
        GROUND, {frozenset({"X1"}): 1.0, frozenset({"X2", "X3"}): 2.0}
    )
    lower = check_lemma_3_7_item2(normal)
    assert is_polymatroid(lower)


def test_normal_lower_bound_on_modular_function():
    modular = modular_function({"X1": 1.0, "X2": 2.0, "X3": 3.0})
    lower = check_lemma_3_7_item2(modular)
    assert lower.is_close_to(modular)


def test_normal_lower_bound_on_matroid_ranks():
    for rank in (1, 2, 3):
        check_lemma_3_7_item2(uniform_function(GROUND, rank=rank))


def test_normal_lower_bound_single_variable():
    single = modular_function({"X1": 2.5})
    lower = normal_lower_bound(single)
    assert lower.is_close_to(single)


def test_normalization_gap_zero_on_top(parity):
    gap = normalization_gap(parity)
    assert gap[frozenset(GROUND)] == pytest.approx(0.0)
    assert all(value >= -1e-9 for value in gap.values())


def test_span_and_dimension():
    vectors = span([(1, 0, 0), (0, 1, 0)], dimension=3)
    assert len(vectors) == 4
    assert subspace_dimension(vectors) == 2
    assert subspace_dimension(span([], dimension=3)) == 0
    with pytest.raises(Exception):
        span([(1, 0)], dimension=3)


def test_parity_subspaces_realize_parity(parity):
    dimension, generators = parity_subspaces(GROUND)
    assert entropy_from_subspaces(GROUND, dimension, generators).is_close_to(parity)


def test_group_relation_matches_subspace_entropy(parity):
    dimension, generators = parity_subspaces(GROUND)
    relation = group_characterizable_relation(GROUND, dimension, generators)
    assert relation.is_totally_uniform()
    assert relation_entropy(relation).is_close_to(parity)


def test_group_entropy_general_subspaces():
    generators = {
        "X1": [(1, 0, 0)],
        "X2": [(1, 0, 0), (0, 1, 0)],
        "X3": [],
    }
    entropy = entropy_from_subspaces(("X1", "X2", "X3"), 3, generators)
    assert is_polymatroid(entropy)
    assert entropy({"X1"}) == pytest.approx(2.0)
    assert entropy({"X2"}) == pytest.approx(1.0)
    assert entropy({"X3"}) == pytest.approx(3.0)
    assert entropy({"X1", "X2"}) == pytest.approx(2.0)
    relation = group_characterizable_relation(("X1", "X2", "X3"), 3, generators)
    assert relation_entropy(relation).is_close_to(entropy)


def test_group_entropy_requires_all_variables():
    with pytest.raises(Exception):
        entropy_from_subspaces(("X1", "X2"), 2, {"X1": [(1, 0)]})
