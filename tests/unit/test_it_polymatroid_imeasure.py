"""Unit tests for polymatroid axioms, elemental inequalities and the I-measure."""

import pytest

from repro.infotheory.functions import (
    modular_function,
    normal_function,
    step_function,
)
from repro.infotheory.imeasure import (
    from_mobius_inverse,
    i_measure,
    is_normal_function,
    mobius_inverse,
    step_decomposition,
)
from repro.infotheory.polymatroid import (
    conditional_independence_holds,
    elemental_inequalities,
    functional_dependency_holds,
    is_modular,
    is_monotone,
    is_polymatroid,
    is_submodular,
)
from repro.infotheory.setfunction import SetFunction


def test_elemental_inequality_count():
    # n monotonicity + C(n,2) * 2^(n-2) submodularity inequalities.
    for n in (2, 3, 4):
        ground = tuple(f"X{i}" for i in range(n))
        expected = n + (n * (n - 1) // 2) * 2 ** (n - 2)
        assert len(elemental_inequalities(ground)) == expected


def test_parity_satisfies_all_elementals(parity):
    for inequality in elemental_inequalities(parity.ground):
        assert inequality.evaluate(parity) >= -1e-9


def test_polymatroid_axioms_on_parity(parity):
    assert is_polymatroid(parity)
    assert is_monotone(parity)
    assert is_submodular(parity)
    assert not is_modular(parity)


def test_non_polymatroid_detected():
    bad = SetFunction(
        ground=("a", "b"),
        values={
            frozenset({"a"}): 1.0,
            frozenset({"b"}): 1.0,
            frozenset({"a", "b"}): 3.0,  # violates submodularity
        },
    )
    assert not is_polymatroid(bad)
    assert not is_submodular(bad)
    assert is_monotone(bad)


def test_non_monotone_detected():
    bad = SetFunction(
        ground=("a", "b"),
        values={frozenset({"a"}): 2.0, frozenset({"b"}): 1.0, frozenset({"a", "b"}): 1.0},
    )
    assert not is_monotone(bad)
    assert not is_polymatroid(bad)


def test_modular_is_polymatroid():
    modular = modular_function({"a": 1.0, "b": 0.5, "c": 2.0})
    assert is_polymatroid(modular)
    assert is_modular(modular)


def test_functional_dependency_and_independence():
    # Entropy of a relation where the first column determines the second.
    from repro.cq.structures import Relation
    from repro.infotheory.entropy import relation_entropy

    relation = Relation(attributes=("a", "b"), rows={(0, 0), (1, 1), (2, 1)})
    entropy = relation_entropy(relation)
    assert functional_dependency_holds(entropy, ("a",), ("b",))
    assert not functional_dependency_holds(entropy, ("b",), ("a",))

    product = Relation.product_relation({"a": range(2), "b": range(2)})
    product_entropy = relation_entropy(product)
    assert conditional_independence_holds(product_entropy, ("a",), ("b",))


def test_mobius_inverse_of_parity_matches_paper(parity):
    # Table in Appendix B: g(123) = 2, g(pairs) = 0, g(singletons) = -1, g(∅) = 1.
    inverse = mobius_inverse(parity)
    assert inverse[frozenset({"X1", "X2", "X3"})] == pytest.approx(2.0)
    for pair in ({"X1", "X2"}, {"X1", "X3"}, {"X2", "X3"}):
        assert inverse[frozenset(pair)] == pytest.approx(0.0)
    for single in ("X1", "X2", "X3"):
        assert inverse[frozenset({single})] == pytest.approx(-1.0)
    assert inverse[frozenset()] == pytest.approx(1.0)


def test_mobius_roundtrip(parity):
    inverse = mobius_inverse(parity)
    rebuilt = from_mobius_inverse(parity.ground, inverse)
    assert rebuilt.is_close_to(parity)


def test_parity_not_normal(parity):
    assert not is_normal_function(parity)
    with pytest.raises(ValueError):
        step_decomposition(parity)


def test_normal_functions_are_normal():
    ground = ("a", "b", "c")
    normal = normal_function(
        ground,
        {frozenset({"a"}): 2.0, frozenset({"b", "c"}): 1.0, frozenset(): 0.5},
    )
    assert is_normal_function(normal)


def test_step_decomposition_roundtrip():
    ground = ("a", "b", "c")
    coefficients = {frozenset({"a"}): 2.0, frozenset({"b", "c"}): 1.5, frozenset(): 1.0}
    normal = normal_function(ground, coefficients)
    recovered = step_decomposition(normal)
    assert set(recovered) == set(coefficients)
    for key, value in coefficients.items():
        assert recovered[key] == pytest.approx(value)
    rebuilt = normal_function(ground, recovered)
    assert rebuilt.is_close_to(normal)


def test_modular_functions_are_normal():
    modular = modular_function({"a": 1.0, "b": 2.0, "c": 0.0})
    assert is_normal_function(modular)


def test_i_measure_nonnegative_iff_normal(parity):
    normal = step_function(("X1", "X2", "X3"), low_part=("X1",))
    assert all(value >= -1e-9 for value in i_measure(normal).values())
    assert any(value < -1e-9 for value in i_measure(parity).values())
