"""Unit tests for repro.utils.rational and repro.utils.ordering."""

from fractions import Fraction

import pytest

from repro.utils.ordering import argsort_by, canonical_order, stable_unique
from repro.utils.rational import (
    as_fraction,
    fractions_from_floats,
    lcm_of_denominators,
    scale_to_integers,
)


def test_stable_unique_preserves_order():
    assert stable_unique(["b", "a", "b", "c", "a"]) == ("b", "a", "c")


def test_canonical_order_is_sorted_and_unique():
    assert canonical_order(["b", "a", "b"]) == ("a", "b")


def test_canonical_order_mixed_types():
    result = canonical_order([2, 1, "a"])
    assert set(result) == {1, 2, "a"}


def test_argsort_by():
    assert argsort_by(["a", "b", "c"], [3, 1, 2]) == (1, 2, 0)


def test_argsort_by_length_mismatch():
    with pytest.raises(ValueError):
        argsort_by(["a"], [1, 2])


def test_as_fraction_exact_types():
    assert as_fraction(3) == Fraction(3)
    assert as_fraction(Fraction(1, 3)) == Fraction(1, 3)


def test_as_fraction_float():
    assert as_fraction(0.5) == Fraction(1, 2)
    assert as_fraction(1 / 3, max_denominator=100) == Fraction(1, 3)


def test_fractions_from_floats_snaps_zero():
    values = fractions_from_floats([1e-13, 0.25, -1e-12])
    assert values == (Fraction(0), Fraction(1, 4), Fraction(0))


def test_lcm_of_denominators():
    assert lcm_of_denominators([Fraction(1, 2), Fraction(1, 3), Fraction(5, 6)]) == 6


def test_scale_to_integers():
    integers, scale = scale_to_integers([Fraction(1, 2), Fraction(1, 3)])
    assert scale == 6
    assert integers == (3, 2)


def test_scale_to_integers_from_floats():
    integers, scale = scale_to_integers([0.5, 1.5, 2.0])
    assert integers == (1, 3, 4)
    assert scale == 2
