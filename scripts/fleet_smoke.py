#!/usr/bin/env python
"""The fleet-smoke flow: start a 2-replica fleet, replay the corpus twice, stop.

This is what the ``fleet-smoke`` CI job runs (and what a developer can run
locally with ``PYTHONPATH=src python scripts/fleet_smoke.py``):

1. ``repro fleet start --replicas 2``: two daemon replicas on scratch Unix
   sockets, each with its own SQLite verdict store, behind an asyncio
   gateway that dedups each batch by canonical key and shards the
   representatives over a consistent-hash ring;
2. replay the frozen 20-pair known-verdict corpus
   (``tests/regression/containment_corpus.json``) through
   ``repro batch --fleet`` and check every verdict against the corpus;
3. replay it a second time and assert the warm fleet answers **every** pair
   from a cache tier (plan cache, verdict store, batch dedup, or a
   gateway-side fold) — routing is deterministic, so the second replay
   routes each representative to the same replica whose plan cache the
   first replay warmed;
4. replay a **duplicate-salted** corpus (every pair plus a variable-renamed
   isomorphic copy) and assert the gateway folded the copies: the salted
   verdicts still match the corpus, at least one verdict per copy carries
   ``source="gateway-dedup"``, and ``repro_gateway_dedup_folded_total``
   is positive;
5. check the gateway's fleet status: both replicas healthy, and **both**
   actually routed pairs (the corpus must not collapse onto one shard);
6. scrape the gateway's own metrics (``repro fleet status --prom``) and
   assert the exposition parses, every submitted pair is accounted for as
   either routed or folded, and no drain events fired;
7. ``repro fleet stop`` and assert the shutdown is clean: exit code 0, the
   gateway and replica socket files unlinked, pings unanswered.

Any violated expectation exits non-zero with a message, so the CI job fails
loudly and the gateway/replica logs are printed for debugging.
"""

from __future__ import annotations

import io
import json
import os
import signal
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.metrics import MetricsError, parse_exposition  # noqa: E402
from repro.service.daemon import daemon_available  # noqa: E402
from repro.service.fleet import manifest_path_for, read_manifest  # noqa: E402

CORPUS = REPO_ROOT / "tests" / "regression" / "containment_corpus.json"
WARM_SOURCES = ("plan-cache", "store", "batch-dedup", "gateway-dedup")


def fail(message: str, log_dir: Path | None = None) -> None:
    print(f"fleet-smoke: FAIL: {message}", file=sys.stderr)
    if log_dir is not None:
        for log_path in sorted(log_dir.glob("*.log")):
            print(f"--- {log_path.name} ---", file=sys.stderr)
            print(log_path.read_text(), file=sys.stderr)
    sys.exit(1)


def corpus_pair_lines() -> tuple[list[str], list[str]]:
    """The corpus as batch-input lines plus the expected statuses."""
    corpus = json.loads(CORPUS.read_text())
    lines, expected = [], []
    for pair in corpus["pairs"]:
        texts = []
        for side in ("q1", "q2"):
            head = pair[side].get("head") or []
            body = pair[side]["body"]
            texts.append(f"({', '.join(head)}) :- {body}" if head else body)
        lines.append(json.dumps({"q1": texts[0], "q2": texts[1]}))
        expected.append(pair["status"])
    return lines, expected


def salted_pair_lines(lines: list[str]) -> list[str]:
    """Each corpus pair followed by a variable-renamed isomorphic copy.

    The copies are exactly what the gateway's dedup pass must fold: a
    different surface text, the same canonical key.
    """
    from repro.cq.parser import parse_query

    def rename_text(text: str) -> str:
        query = parse_query(text, name="Q")
        renamed = query.rename({v: f"{v}_salt" for v in query.variables})
        body = ", ".join(str(atom) for atom in renamed.atoms)
        if renamed.head:
            return f"({', '.join(renamed.head)}) :- {body}"
        return body

    salted = []
    for line in lines:
        record = json.loads(line)
        salted.append(line)
        salted.append(
            json.dumps(
                {"q1": rename_text(record["q1"]), "q2": rename_text(record["q2"])}
            )
        )
    return salted


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = cli_main(argv, out=buffer)
    return code, buffer.getvalue()


def replay(pairs_file: Path, gateway: str, log_dir: Path) -> list[dict]:
    """One ``repro batch --fleet`` replay; returns the verdict records."""
    stderr, sys.stderr = sys.stderr, io.StringIO()
    try:
        code, output = run_cli("batch", str(pairs_file), "--fleet", gateway)
        captured = sys.stderr.getvalue()
    finally:
        sys.stderr = stderr
    if code != 0:
        fail(f"batch --fleet exited {code}:\n{output}\n{captured}", log_dir)
    return [json.loads(line) for line in output.splitlines()]


def fleet_pids(fleet_dir: Path) -> list[int]:
    try:
        manifest = read_manifest(manifest_path_for(str(fleet_dir)))
    except Exception:
        return []
    pids = [manifest.get("gateway", {}).get("pid")]
    pids.extend(entry.get("pid") for entry in manifest.get("replicas", []))
    return [pid for pid in pids if isinstance(pid, int)]


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="repro-fleet-smoke-"))
    fleet_dir = scratch / "fleet"
    gateway_socket = str(scratch / "gateway.sock")
    pairs_file = scratch / "corpus_pairs.jsonl"

    lines, expected = corpus_pair_lines()
    pairs_file.write_text("\n".join(lines) + "\n")
    print(
        f"fleet-smoke: corpus has {len(lines)} pairs; gateway {gateway_socket}"
    )

    code, output = run_cli(
        "fleet",
        "start",
        "--dir",
        str(fleet_dir),
        "--replicas",
        "2",
        "--socket",
        gateway_socket,
        "--jobs",
        "2",
    )
    if code != 0:
        fail(f"fleet start exited {code}:\n{output}", fleet_dir)
    print(output.rstrip())
    pids = fleet_pids(fleet_dir)

    try:
        first_records = replay(pairs_file, gateway_socket, fleet_dir)
        statuses = [record["status"] for record in first_records]
        if statuses != expected:
            fail(f"replay 1 statuses diverge from the corpus: {statuses}", fleet_dir)
        if [record["index"] for record in first_records] != list(range(len(lines))):
            fail("replay 1 verdicts are not in request order", fleet_dir)
        print(f"fleet-smoke: replay 1 ok ({len(first_records)} verdicts, in order)")

        second_records = replay(pairs_file, gateway_socket, fleet_dir)
        if [record["status"] for record in second_records] != expected:
            fail("replay 2 statuses diverge from the corpus", fleet_dir)
        cold = [
            record["index"]
            for record in second_records
            if record["source"] not in WARM_SOURCES
        ]
        if cold:
            fail(
                f"replay 2 pairs {cold} were not answered from a cache tier "
                f"(sources must be one of {WARM_SOURCES})",
                fleet_dir,
            )
        print(
            f"fleet-smoke: replay 2 ok — all {len(lines)} pairs from "
            "cache/store tiers (routing affinity held)"
        )

        salted_lines = salted_pair_lines(lines)
        salted_file = scratch / "corpus_pairs_salted.jsonl"
        salted_file.write_text("\n".join(salted_lines) + "\n")
        salted_expected = [status for status in expected for _ in range(2)]
        salted_records = replay(salted_file, gateway_socket, fleet_dir)
        if [record["status"] for record in salted_records] != salted_expected:
            fail("salted replay statuses diverge from the corpus", fleet_dir)
        folded_records = [
            record
            for record in salted_records
            if record["source"] == "gateway-dedup"
        ]
        if len(folded_records) < len(lines):
            fail(
                f"salted replay folded only {len(folded_records)} of "
                f"{len(lines)} duplicate copies at the gateway",
                fleet_dir,
            )
        pairs_sent = 2 * len(lines) + len(salted_lines)
        print(
            f"fleet-smoke: salted replay ok — {len(folded_records)} of "
            f"{len(salted_lines)} pairs folded at the gateway"
        )

        code, output = run_cli("fleet", "status", "--dir", str(fleet_dir))
        if code != 0:
            fail(f"fleet status exited {code}:\n{output}", fleet_dir)
        status = json.loads(output)
        if status.get("role") != "gateway":
            fail(f"status role is {status.get('role')!r}, not 'gateway'", fleet_dir)
        if status.get("healthy_replicas") != 2:
            fail(
                f"expected 2 healthy replicas, got {status.get('healthy_replicas')}",
                fleet_dir,
            )
        idle = [
            entry["name"]
            for entry in status.get("replicas", [])
            if entry.get("pairs", 0) <= 0
        ]
        if idle:
            fail(
                f"replicas {idle} routed zero pairs — the corpus collapsed "
                "onto one shard",
                fleet_dir,
            )
        routed = {entry["name"]: entry["pairs"] for entry in status["replicas"]}
        print(f"fleet-smoke: status ok — pairs routed per replica: {routed}")

        code, exposition = run_cli(
            "fleet", "status", "--dir", str(fleet_dir), "--prom"
        )
        if code != 0:
            fail(f"fleet status --prom exited {code}", fleet_dir)
        try:
            samples = parse_exposition(exposition)
        except MetricsError as error:
            fail(f"gateway exposition does not parse: {error}", fleet_dir)
        routed_total = sum(
            samples.get("repro_gateway_pairs_routed_total", {}).values()
        )
        folded_total = sum(
            samples.get("repro_gateway_dedup_folded_total", {}).values()
        )
        if folded_total <= 0:
            fail(
                "repro_gateway_dedup_folded_total is not positive after the "
                "duplicate-salted replay",
                fleet_dir,
            )
        # Conservation: every pair the client sent was either dispatched to
        # a replica or folded onto a representative at the gateway.
        if routed_total + folded_total != pairs_sent:
            fail(
                f"exposition accounts for {routed_total} routed + "
                f"{folded_total} folded pairs, expected {pairs_sent} total "
                "across the three replays",
                fleet_dir,
            )
        drains = sum(samples.get("repro_gateway_drain_events_total", {}).values())
        if drains != 0:
            fail(f"exposition reports {drains} drain events", fleet_dir)
        healthy = sum(samples.get("repro_gateway_replicas_healthy", {}).values())
        if healthy != 2.0:
            fail(f"exposition reports {healthy} healthy replicas", fleet_dir)
        print(
            f"fleet-smoke: metrics scrape ok — {int(routed_total)} pairs "
            f"routed, {int(folded_total)} folded, 0 drains"
        )

        manifest = read_manifest(manifest_path_for(str(fleet_dir)))
        member_sockets = [gateway_socket] + [
            entry["address"] for entry in manifest["replicas"]
        ]
        code, output = run_cli("fleet", "stop", "--dir", str(fleet_dir))
        if code != 0:
            fail(f"fleet stop exited {code}:\n{output}", fleet_dir)
        for member in member_sockets:
            if daemon_available(member, timeout=1.0):
                fail(f"{member} still answers pings after fleet stop", fleet_dir)
            if os.path.exists(member):
                fail(f"socket file {member} survived the shutdown", fleet_dir)
        print("fleet-smoke: clean shutdown confirmed (all sockets unlinked)")
    finally:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass

    print("fleet-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
