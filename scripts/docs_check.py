"""CI docs check: links in the docs tree resolve, CLI references are real.

Two classes of rot this catches:

* **Dead intra-repo links** — every markdown link in ``docs/`` and
  ``README.md`` that points inside the repo must resolve to an existing
  file, and a ``#fragment`` on a markdown target must match a heading in
  that file (GitHub-style slugs).  External ``http(s)``/``mailto`` links
  are not fetched.
* **Phantom CLI commands** — every ``repro <subcommand>`` (and nested
  ``repro <group> <subcommand>``) named in the docs must exist in the real
  parser built by ``repro.cli.build_parser()``.  Docs that mention a
  renamed or removed command fail the job.

Run from the repo root::

    PYTHONPATH=src python scripts/docs_check.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# ``repro <word>`` / ``python -m repro <word> [<word>]`` — words may be
# ``|``-joined alternation lists as in usage lines (``daemon run|start``).
# Spaces only (no newlines), and not ``from repro import ...``.
CLI_RE = re.compile(r"(?<!from )\brepro +([a-z][a-z|-]*)(?: +([a-z][a-z|-]*))?")


def doc_files():
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def github_slug(heading):
    """The anchor GitHub generates for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)  # drop punctuation, keep -, _
    return slug.replace(" ", "-")


def headings_of(path):
    slugs = set()
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            slugs.add(github_slug(line.lstrip("#")))
    return slugs


def check_links(path, errors):
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = (path.parent / base).resolve() if base else path
        if not dest.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in headings_of(dest):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: link -> {target} "
                    f"(no heading with slug '#{fragment}' in "
                    f"{dest.relative_to(REPO_ROOT)})"
                )


def parser_commands():
    """Top-level subcommands and their nested subcommands, from the parser."""
    from repro.cli import build_parser

    def sub_actions(parser):
        for action in parser._subparsers._group_actions if parser._subparsers else []:
            if hasattr(action, "choices"):
                return action.choices
        return {}

    top = sub_actions(build_parser())
    nested = {name: set(sub_actions(sub)) for name, sub in top.items()}
    return set(top), nested


def check_cli_references(path, top, nested, errors):
    for match in CLI_RE.finditer(path.read_text()):
        first, second = match.group(1), match.group(2)
        for cmd in first.split("|"):
            if cmd not in top:
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: docs name "
                    f"'repro {cmd}' but the CLI has no such subcommand"
                )
        # Only check the second word against groups that actually have
        # nested subcommands ("repro batch pairs.txt" has no group).
        if second and "|" not in first and nested.get(first):
            for cmd in second.split("|"):
                if cmd not in nested[first]:
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}: docs name "
                        f"'repro {first} {cmd}' but 'repro {first}' has no "
                        f"'{cmd}' subcommand"
                    )


def main():
    errors = []
    top, nested = parser_commands()
    files = doc_files()
    for path in files:
        check_links(path, errors)
        check_cli_references(path, top, nested, errors)
    for error in errors:
        print(f"error: {error}")
    print(
        f"docs-check: {len(files)} files, {len(errors)} errors "
        f"({', '.join(p.name for p in files)})"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
