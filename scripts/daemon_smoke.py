#!/usr/bin/env python
"""The daemon-smoke flow: start, replay the frozen corpus twice, stop.

This is what the ``daemon-smoke`` CI job runs (and what a developer can run
locally with ``PYTHONPATH=src python scripts/daemon_smoke.py``):

1. start a detached daemon on a scratch Unix socket (``repro daemon start``
   semantics, via :func:`repro.service.daemon.spawn_daemon`);
2. replay the frozen 20-pair known-verdict corpus
   (``tests/regression/containment_corpus.json``) through
   ``repro batch --daemon`` and check every verdict against the corpus;
3. replay it a second time and assert the warm daemon answers **every** pair
   from the plan cache — cache hits grow by exactly the corpus size, and the
   pipeline/LP counters do not move at all (zero new solves for
   structurally-duplicate pairs);
4. scrape the daemon's metrics endpoint (``repro daemon status --prom``) and
   assert the exposition parses cleanly, reports at least the corpus-size
   cache hits, and shows zero deadline misses;
5. ``repro daemon stop`` and assert the shutdown is clean: exit code 0, the
   socket file unlinked, pings unanswered;
6. start a **fresh** daemon on the same ``--store`` and replay the corpus a
   third time: every pair must be answered from the durable verdict store
   (or the plan cache it warms) with zero pipelines and zero LP solves in
   the new process — this is the restart-warm guarantee;
7. audit the store offline: ``repro cache verify`` re-validates every stored
   certificate and witness, and ``repro cache compact`` exits cleanly.

Any violated expectation exits non-zero with a message, so the CI job fails
loudly and the daemon log is printed for debugging.
"""

from __future__ import annotations

import io
import json
import os
import signal
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.metrics import MetricsError, parse_exposition  # noqa: E402
from repro.service.daemon import daemon_available, spawn_daemon  # noqa: E402

CORPUS = REPO_ROOT / "tests" / "regression" / "containment_corpus.json"


def fail(message: str, log_path: Path | None = None) -> None:
    print(f"daemon-smoke: FAIL: {message}", file=sys.stderr)
    if log_path is not None and log_path.exists():
        print("--- daemon log ---", file=sys.stderr)
        print(log_path.read_text(), file=sys.stderr)
    sys.exit(1)


def corpus_pair_lines() -> tuple[list[str], list[str]]:
    """The corpus as batch-input lines plus the expected statuses."""
    corpus = json.loads(CORPUS.read_text())
    lines, expected = [], []
    for pair in corpus["pairs"]:
        texts = []
        for side in ("q1", "q2"):
            head = pair[side].get("head") or []
            body = pair[side]["body"]
            texts.append(f"({', '.join(head)}) :- {body}" if head else body)
        lines.append(json.dumps({"q1": texts[0], "q2": texts[1]}))
        expected.append(pair["status"])
    return lines, expected


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = cli_main(argv, out=buffer)
    return code, buffer.getvalue()


def replay(pairs_file: Path, socket_path: str, stats_file: Path) -> tuple[list[dict], dict]:
    """One ``repro batch --daemon`` replay; returns (records, stats)."""
    stderr, sys.stderr = sys.stderr, io.StringIO()
    try:
        code, output = run_cli(
            "batch", str(pairs_file), "--daemon", socket_path, "--daemon-only", "--stats"
        )
        captured = sys.stderr.getvalue()
    finally:
        sys.stderr = stderr
    if code != 0:
        fail(f"batch --daemon exited {code}:\n{output}\n{captured}")
    stats_lines = [line for line in captured.splitlines() if line.startswith("{")]
    if not stats_lines:
        fail(f"no stats JSON on stderr:\n{captured}")
    stats = json.loads(stats_lines[-1])["stats"]
    stats_file.write_text(json.dumps(stats, indent=1))
    return [json.loads(line) for line in output.splitlines()], stats


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="repro-daemon-smoke-"))
    socket_path = str(scratch / "daemon.sock")
    log_path = scratch / "daemon.log"
    pairs_file = scratch / "corpus_pairs.jsonl"

    store_path = str(scratch / "verdicts.sqlite")

    lines, expected = corpus_pair_lines()
    pairs_file.write_text("\n".join(lines) + "\n")
    print(f"daemon-smoke: corpus has {len(lines)} pairs; socket {socket_path}")

    pid = spawn_daemon(
        socket_path,
        extra_args=["--jobs", "2", "--store", store_path],
        log_path=str(log_path),
    )
    print(f"daemon-smoke: daemon pid {pid}")
    try:
        first_records, first_stats = replay(
            pairs_file, socket_path, scratch / "stats1.json"
        )
        statuses = [record["status"] for record in first_records]
        if statuses != expected:
            fail(f"replay 1 statuses diverge from the corpus: {statuses}", log_path)
        print(
            "daemon-smoke: replay 1 ok "
            f"(pipelines_run={first_stats['pipelines_run']}, "
            f"block_solves={first_stats['block_solves']}, "
            f"scalar_solves={first_stats['scalar_solves']})"
        )

        second_records, second_stats = replay(
            pairs_file, socket_path, scratch / "stats2.json"
        )
        if [record["status"] for record in second_records] != expected:
            fail("replay 2 statuses diverge from the corpus", log_path)

        not_cached = [
            record["index"]
            for record in second_records
            if record["source"] != "plan-cache"
        ]
        if not_cached:
            fail(
                f"replay 2 pairs {not_cached} were not answered from the plan cache",
                log_path,
            )
        hits = second_stats["cache_hits"] - first_stats["cache_hits"]
        if hits != len(lines):
            fail(
                f"expected {len(lines)} new cache hits on replay 2, got {hits}",
                log_path,
            )
        if hits <= 0:
            fail("replay 2 produced no cache hits", log_path)
        for counter in ("pipelines_run", "block_solves", "scalar_solves"):
            if second_stats[counter] != first_stats[counter]:
                fail(
                    f"replay 2 moved {counter}: "
                    f"{first_stats[counter]} -> {second_stats[counter]} "
                    "(the warm daemon must not re-solve duplicate hashes)",
                    log_path,
                )
        print(
            f"daemon-smoke: replay 2 ok — all {len(lines)} pairs from the plan "
            "cache, zero new LP solves"
        )

        code, exposition = run_cli("daemon", "status", "--socket", socket_path, "--prom")
        if code != 0:
            fail(f"daemon status --prom exited {code}", log_path)
        try:
            samples = parse_exposition(exposition)
        except MetricsError as error:
            fail(f"metrics exposition does not parse: {error}", log_path)
        cache_hits = sum(samples.get("repro_plan_cache_hits_total", {}).values())
        if cache_hits < len(lines):
            fail(
                f"exposition reports {cache_hits} cache hits, expected at "
                f"least the corpus size ({len(lines)})",
                log_path,
            )
        deadline_misses = sum(
            samples.get("repro_pairs_deadline_exceeded_total", {}).values()
        )
        if deadline_misses != 0:
            fail(f"exposition reports {deadline_misses} deadline misses", log_path)
        for family in (
            "repro_daemon_uptime_seconds",
            "repro_daemon_queue_depth",
            "repro_pair_seconds_count",
            "repro_daemon_requests_total",
        ):
            if family not in samples:
                fail(f"exposition is missing {family}", log_path)
        print(
            f"daemon-smoke: metrics scrape ok — {len(samples)} sample families, "
            f"{int(cache_hits)} cache hits, 0 deadline misses"
        )

        code, output = run_cli("daemon", "stop", "--socket", socket_path)
        if code != 0:
            fail(f"daemon stop exited {code}: {output}", log_path)
        if daemon_available(socket_path, timeout=1.0):
            fail("the daemon still answers pings after stop", log_path)
        if os.path.exists(socket_path):
            fail("the socket file survived the shutdown", log_path)
        print("daemon-smoke: clean shutdown confirmed")
    finally:
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    # --- restart on the same store: the disk tier must warm the new daemon.
    restart_log = scratch / "daemon-restart.log"
    pid = spawn_daemon(
        socket_path,
        extra_args=["--jobs", "2", "--store", store_path],
        log_path=str(restart_log),
    )
    print(f"daemon-smoke: restarted daemon pid {pid} on store {store_path}")
    try:
        third_records, third_stats = replay(
            pairs_file, socket_path, scratch / "stats3.json"
        )
        if [record["status"] for record in third_records] != expected:
            fail("replay 3 statuses diverge from the corpus", restart_log)
        # A store hit promotes its key into the plan cache, so duplicate
        # hashes later in the batch legitimately answer from the memory tier.
        cold = [
            record["index"]
            for record in third_records
            if record["source"] not in ("store", "plan-cache", "batch-dedup")
        ]
        if cold:
            fail(
                f"replay 3 pairs {cold} were not answered from the store or "
                "the cache it warms",
                restart_log,
            )
        if third_stats["store_hits"] <= 0:
            fail("replay 3 recorded no store hits", restart_log)
        if third_stats["pipelines_run"] != 0:
            fail(
                f"replay 3 ran {third_stats['pipelines_run']} pipelines in the "
                "restarted daemon (the store must make the restart free)",
                restart_log,
            )
        if third_stats["block_solves"] != 0 or third_stats["scalar_solves"] != 0:
            fail("replay 3 made new LP solves in the restarted daemon", restart_log)
        print(
            f"daemon-smoke: replay 3 ok — restarted daemon answered all "
            f"{len(lines)} pairs from the store ({third_stats['store_hits']} "
            "disk hits), zero new LP solves"
        )

        code, output = run_cli("daemon", "stop", "--socket", socket_path)
        if code != 0:
            fail(f"daemon stop (restart) exited {code}: {output}", restart_log)
    finally:
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    # --- offline audit of the store the two daemons produced.
    code, output = run_cli("cache", "verify", "--store", store_path)
    if code != 0:
        fail(f"cache verify exited {code}:\n{output}")
    print(f"daemon-smoke: cache verify ok — {output.strip().splitlines()[-1]}")
    code, output = run_cli("cache", "compact", "--store", store_path)
    if code != 0:
        fail(f"cache compact exited {code}:\n{output}")
    print("daemon-smoke: cache compact ok")

    print("daemon-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
