#!/usr/bin/env python
"""Run a soak against the containment daemon (CI's soak leg).

A thin wrapper over ``repro soak`` (:mod:`repro.obs.soak`) that works from a
source checkout without installing the package::

    python scripts/soak.py --clients 2 --qps 6 --duration 15 --report soak.json

All flags are forwarded to the ``repro soak`` subcommand verbatim.  By
default the soak spins up an ephemeral in-process daemon; pass ``--socket``
to drive a daemon that is already running.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as cli_main  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli_main(["soak", *sys.argv[1:]]))
