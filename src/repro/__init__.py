"""repro — a reproduction of *Bag Query Containment and Information Theory* (PODS 2020).

The library implements, from scratch, both sides of the paper's equivalence:

* the **database side** — conjunctive queries, bag-set semantics,
  homomorphism counting, tree/junction decompositions, witnesses
  (:mod:`repro.cq`, :mod:`repro.core`);
* the **information-theory side** — entropic functions, polymatroids, the
  cones ``Mn ⊆ Nn ⊆ Γ*n ⊆ Γn``, Shannon provers and Max-II decision
  procedures (:mod:`repro.infotheory`, :mod:`repro.lp`);

and the bridges between them: the Eq. (8) containment inequality, the
Theorem 3.1 decision procedure, the Theorem 3.4 witness constructions and the
Section 5 reduction from Max-IIP to acyclic bag containment.

Quickstart
----------
>>> from repro import parse_query, decide_containment
>>> q1 = parse_query("R(x1,x2), R(x2,x3), R(x3,x1)")   # triangle
>>> q2 = parse_query("R(y1,y2), R(y1,y3)")             # length-2 path
>>> decide_containment(q1, q2).status.value
'contained'
"""

from repro.cq import (
    Atom,
    ConjunctiveQuery,
    Relation,
    Structure,
    canonical_structure,
    evaluate_bag,
    evaluate_set,
    parse_query,
    set_contained,
)
from repro.cq.homomorphism import (
    count_homomorphisms,
    count_query_homomorphisms,
    query_to_query_homomorphisms,
)
from repro.core import (
    ContainmentResult,
    ContainmentStatus,
    WitnessDatabase,
    build_containment_inequality,
    decide_containment,
    dominates,
    find_convex_certificate,
    reduce_max_iip_to_containment,
    sufficient_containment_check,
    theorem_3_1_decision,
)
from repro.infotheory import (
    LinearExpression,
    MaxInformationInequality,
    SetFunction,
    ShannonProver,
    decide_max_ii,
    relation_entropy,
)
from repro.service import (
    BatchOptions,
    ContainmentService,
    decide_containment_many,
)

__version__ = "1.1.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Relation",
    "Structure",
    "parse_query",
    "canonical_structure",
    "evaluate_bag",
    "evaluate_set",
    "set_contained",
    "count_homomorphisms",
    "count_query_homomorphisms",
    "query_to_query_homomorphisms",
    "ContainmentStatus",
    "ContainmentResult",
    "WitnessDatabase",
    "decide_containment",
    "decide_containment_many",
    "ContainmentService",
    "BatchOptions",
    "theorem_3_1_decision",
    "sufficient_containment_check",
    "build_containment_inequality",
    "dominates",
    "reduce_max_iip_to_containment",
    "find_convex_certificate",
    "SetFunction",
    "LinearExpression",
    "MaxInformationInequality",
    "ShannonProver",
    "decide_max_ii",
    "relation_entropy",
    "__version__",
]
