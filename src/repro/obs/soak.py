"""A multi-client soak harness against the containment daemon.

``repro soak`` (and ``scripts/soak.py``) drives a daemon with the endless
mixed workload of :func:`repro.workloads.generators.stream_containment_pairs`
from several concurrent client threads at a target aggregate rate, while a
scraper thread polls the daemon's ``metrics`` verb once a second.  The run
produces one JSON report: achieved throughput, client-observed latency
percentiles, the plan-cache hit-rate trajectory over the run, the daemon's
final Prometheus counters (deadline misses, shed requests), and a verdict
*parity* check — every unique pair the soak sent is re-decided by a fresh
in-process service and compared against the daemon's answer.

The harness spins up an *ephemeral* daemon (in-process server thread on a
private Unix socket) when no address is given, so a soak needs no prior
setup; pointing it at a running daemon via ``--socket`` exercises that
daemon instead.

Pacing is global, not per-client: request ``i`` of the run is scheduled at
``start + i / qps`` and the clients share the schedule round-robin, so the
offered load is ``qps`` regardless of the client count, and slow responses
show up as schedule lateness rather than a silently lower offered rate.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cq.query import ConjunctiveQuery
from repro.exceptions import ReproError
from repro.obs.metrics import parse_exposition
from repro.service.daemon import (
    ContainmentDaemon,
    DaemonClient,
    DaemonConnectionBroken,
    DaemonUnavailable,
    make_server,
)
from repro.service.protocol import parse_address
from repro.service.service import BatchOptions, ContainmentService
from repro.workloads.generators import stream_containment_pairs


def query_to_text(query: ConjunctiveQuery) -> str:
    """Serialize a query back to the parser syntax (the wire format).

    ``str(query)`` renders the display form (``Q() :- R(x, y) ∧ ...``),
    which :func:`repro.cq.parser.parse_query` does not accept; this emits
    the comma-separated body (with a ``(head) :-`` prefix when the query
    has head variables), which round-trips.
    """
    body = ", ".join(str(atom) for atom in query.atoms)
    if query.head:
        return f"({', '.join(query.head)}) :- {body}"
    return body


@dataclass(frozen=True)
class SoakOptions:
    """Knobs of one soak run.

    ``qps`` is the *aggregate* offered rate across all ``clients``; the
    total request count is ``round(qps * duration_seconds)``.  ``address``
    of ``None`` runs an ephemeral in-process daemon for the duration of the
    soak.  ``deadline_seconds`` rides on every request (daemon semantics:
    queue wait included).  ``check_parity`` re-decides every unique pair
    in-process after the run and counts verdict mismatches.
    """

    clients: int = 4
    qps: float = 8.0
    duration_seconds: float = 60.0
    address: Optional[str] = None
    seed: int = 0
    deadline_seconds: Optional[float] = None
    priority: str = "normal"
    scrape_interval_seconds: float = 1.0
    check_parity: bool = True
    daemon_options: Optional[BatchOptions] = None

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError("clients must be at least 1")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")


@dataclass
class _RequestOutcome:
    index: int
    latency: float
    lateness: float
    status: Optional[str] = None
    source: Optional[str] = None
    error: Optional[str] = None


class _EphemeralDaemon:
    """An in-process daemon on a private Unix socket, for self-contained soaks."""

    def __init__(self, options: Optional[BatchOptions]):
        self.socket_path = os.path.join(
            tempfile.mkdtemp(prefix="repro-soak-"), "daemon.sock"
        )
        self.daemon = ContainmentDaemon(options=options)
        self.address = parse_address(self.socket_path)
        self._server = make_server(self.daemon, self.address)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self.daemon.service.close()
        self._thread.join(timeout=5.0)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
            os.rmdir(os.path.dirname(self.socket_path))


def _percentile(sorted_values: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile over an already sorted sample."""
    if not sorted_values:
        return None
    rank = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _counter_value(samples: Dict[str, Dict], name: str) -> float:
    """Sum a family's samples across label sets (0.0 when absent)."""
    return float(sum(samples.get(name, {}).values()))


class _Scraper(threading.Thread):
    """Polls the daemon's ``metrics`` verb and records the hit-rate trajectory."""

    def __init__(self, client: DaemonClient, interval: float, stop: threading.Event):
        super().__init__(daemon=True)
        self.client = client
        self.interval = interval
        self.stop_event = stop
        self.trajectory: List[Dict[str, float]] = []
        self.scrape_errors = 0
        self.final_samples: Dict[str, Dict] = {}
        self._started_at = time.perf_counter()

    def scrape_once(self) -> None:
        try:
            samples = parse_exposition(self.client.metrics())
        except (DaemonUnavailable, ReproError):
            self.scrape_errors += 1
            return
        self.final_samples = samples
        submitted = _counter_value(samples, "repro_pairs_submitted_total")
        hits = _counter_value(samples, "repro_plan_cache_hits_total")
        self.trajectory.append(
            {
                "t": round(time.perf_counter() - self._started_at, 3),
                "pairs_submitted": submitted,
                "cache_hits": hits,
                "hit_rate": round(hits / submitted, 4) if submitted else 0.0,
                "queue_depth": _counter_value(samples, "repro_daemon_queue_depth"),
            }
        )

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            self.scrape_once()
        self.scrape_once()  # one final scrape after the load stops


def _client_worker(
    client_index: int,
    options: SoakOptions,
    address: str,
    texts: List[Tuple[str, str]],
    start_at: float,
    outcomes: List[Optional[_RequestOutcome]],
) -> None:
    client = DaemonClient(address)
    for index in range(client_index, len(texts), options.clients):
        target = start_at + index / options.qps
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        sent = time.perf_counter()
        try:
            response = client.batch(
                [texts[index]],
                deadline_seconds=options.deadline_seconds,
                priority=options.priority,
            )
        except (DaemonUnavailable, DaemonConnectionBroken) as error:
            outcomes[index] = _RequestOutcome(
                index=index,
                latency=time.perf_counter() - sent,
                lateness=sent - target,
                error=str(error),
            )
            continue
        latency = time.perf_counter() - sent
        if response.ok and response.verdicts:
            verdict = response.verdicts[0]
            outcomes[index] = _RequestOutcome(
                index=index,
                latency=latency,
                lateness=sent - target,
                status=verdict.status,
                source=verdict.source,
            )
        else:
            outcomes[index] = _RequestOutcome(
                index=index,
                latency=latency,
                lateness=sent - target,
                error=response.error or "empty response",
            )


def _check_parity(
    texts: List[Tuple[str, str]],
    outcomes: List[Optional[_RequestOutcome]],
    options: SoakOptions,
) -> Dict[str, object]:
    """Re-decide every unique pair in-process and compare verdicts.

    Pairs the daemon answered with a load-dependent UNKNOWN (deadline or
    budget exhaustion) are excluded — those verdicts are about the load, not
    the pair — and reported separately.
    """
    from repro.cq.parser import parse_query

    daemon_verdicts: Dict[Tuple[str, str], str] = {}
    load_unknowns = 0
    conflicting: List[Dict[str, object]] = []
    for text, outcome in zip(texts, outcomes):
        if outcome is None or outcome.status is None:
            continue
        if outcome.status == "unknown":
            load_unknowns += 1
            continue
        previous = daemon_verdicts.setdefault(text, outcome.status)
        if previous != outcome.status:
            conflicting.append(
                {"pair": list(text), "verdicts": sorted({previous, outcome.status})}
            )
    service = ContainmentService(options.daemon_options)
    mismatches: List[Dict[str, object]] = []
    for (q1_text, q2_text), daemon_status in daemon_verdicts.items():
        result = service.decide(
            parse_query(q1_text, name="P1"), parse_query(q2_text, name="P2")
        )
        if result.status.value != daemon_status:
            mismatches.append(
                {
                    "pair": [q1_text, q2_text],
                    "daemon": daemon_status,
                    "in_process": result.status.value,
                }
            )
    service.close()
    return {
        "unique_pairs_checked": len(daemon_verdicts),
        "load_dependent_unknowns": load_unknowns,
        "self_conflicts": conflicting,
        "mismatches": mismatches,
        "ok": not mismatches and not conflicting,
    }


def run_soak(options: SoakOptions) -> Dict[str, object]:
    """Run one soak and return the JSON-ready report."""
    total = max(1, int(round(options.qps * options.duration_seconds)))
    pairs = list(itertools.islice(stream_containment_pairs(seed=options.seed), total))
    texts = [(query_to_text(q1), query_to_text(q2)) for q1, q2 in pairs]

    ephemeral: Optional[_EphemeralDaemon] = None
    if options.address is None:
        ephemeral = _EphemeralDaemon(options.daemon_options)
        address = str(ephemeral.address)
    else:
        address = options.address
    outcomes: List[Optional[_RequestOutcome]] = [None] * total
    stop_scraper = threading.Event()
    scraper = _Scraper(
        DaemonClient(address), options.scrape_interval_seconds, stop_scraper
    )
    try:
        scraper.start()
        start_at = time.perf_counter() + 0.05
        workers = [
            threading.Thread(
                target=_client_worker,
                args=(k, options, address, texts, start_at, outcomes),
                daemon=True,
            )
            for k in range(options.clients)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        finished_at = time.perf_counter()
        stop_scraper.set()
        scraper.join(timeout=10.0)

        completed = [outcome for outcome in outcomes if outcome is not None]
        answered = [outcome for outcome in completed if outcome.error is None]
        latencies = sorted(outcome.latency for outcome in answered)
        statuses: Dict[str, int] = {}
        sources: Dict[str, int] = {}
        for outcome in answered:
            statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
            sources[outcome.source] = sources.get(outcome.source, 0) + 1
        wall = max(finished_at - start_at, 1e-9)
        samples = scraper.final_samples
        report: Dict[str, object] = {
            "config": {
                "clients": options.clients,
                "target_qps": options.qps,
                "duration_seconds": options.duration_seconds,
                "requests": total,
                "seed": options.seed,
                "address": address,
                "ephemeral_daemon": ephemeral is not None,
                "deadline_seconds": options.deadline_seconds,
                "priority": options.priority,
            },
            "achieved_qps": round(len(answered) / wall, 3),
            "wall_seconds": round(wall, 3),
            "requests_answered": len(answered),
            "requests_errored": len(completed) - len(answered),
            "latency_seconds": {
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "p99": _percentile(latencies, 0.99),
                "max": latencies[-1] if latencies else None,
                "mean": (
                    round(sum(latencies) / len(latencies), 6) if latencies else None
                ),
            },
            "max_schedule_lateness_seconds": (
                round(max(outcome.lateness for outcome in completed), 4)
                if completed
                else None
            ),
            "statuses": dict(sorted(statuses.items())),
            "sources": dict(sorted(sources.items())),
            "hit_rate_trajectory": scraper.trajectory,
            "scrape_errors": scraper.scrape_errors,
            "daemon_metrics": {
                "pairs_submitted": _counter_value(
                    samples, "repro_pairs_submitted_total"
                ),
                "cache_hits": _counter_value(samples, "repro_plan_cache_hits_total"),
                "batch_duplicates": _counter_value(
                    samples, "repro_batch_duplicates_total"
                ),
                "deadline_misses": _counter_value(
                    samples, "repro_pairs_deadline_exceeded_total"
                ),
                "requests_rejected": _counter_value(
                    samples, "repro_requests_rejected_total"
                ),
                "requests_degraded": _counter_value(
                    samples, "repro_requests_degraded_total"
                ),
                "lp_block_solves": _counter_value(
                    samples, "repro_lp_block_solves_total"
                ),
            },
        }
        if options.check_parity:
            report["parity"] = _check_parity(texts, outcomes, options)
        return report
    finally:
        stop_scraper.set()
        if ephemeral is not None:
            ephemeral.close()


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def format_report(report: Dict[str, object]) -> str:
    """A terse human summary of :func:`run_soak` output for the CLI."""
    latency = report["latency_seconds"]
    config = report["config"]

    def fmt(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value * 1000:.1f}ms"

    lines = [
        f"soak: {config['clients']} clients, target {config['target_qps']} qps "
        f"for {config['duration_seconds']}s against {config['address']}"
        f"{' (ephemeral)' if config['ephemeral_daemon'] else ''}",
        f"answered {report['requests_answered']}/{config['requests']} requests "
        f"({report['requests_errored']} errors) at {report['achieved_qps']} qps",
        f"latency p50={fmt(latency['p50'])} p95={fmt(latency['p95'])} "
        f"p99={fmt(latency['p99'])} max={fmt(latency['max'])}",
    ]
    trajectory = report["hit_rate_trajectory"]
    if trajectory:
        lines.append(
            f"plan-cache hit rate {trajectory[0]['hit_rate']:.0%} -> "
            f"{trajectory[-1]['hit_rate']:.0%} over {len(trajectory)} scrapes"
        )
    metrics = report["daemon_metrics"]
    lines.append(
        f"daemon: {int(metrics['pairs_submitted'])} pairs, "
        f"{int(metrics['cache_hits'])} cache hits, "
        f"{int(metrics['deadline_misses'])} deadline misses, "
        f"{int(metrics['requests_rejected'])} rejected"
    )
    parity = report.get("parity")
    if parity is not None:
        verdict = "OK" if parity["ok"] else "MISMATCH"
        lines.append(
            f"parity: {verdict} ({parity['unique_pairs_checked']} unique pairs, "
            f"{len(parity['mismatches'])} mismatches, "
            f"{parity['load_dependent_unknowns']} load-dependent unknowns)"
        )
    return "\n".join(lines)
