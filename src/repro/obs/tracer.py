"""Lightweight hierarchical span tracing for the containment stack.

A *span* is one named, timed unit of work — a batch, one pair's pipeline
advancement, one block-LP chunk, one row-generation round — with a parent
span, free-form attributes, and monotonic-clock timing
(:func:`time.perf_counter`).  A :class:`Tracer` collects finished spans into
a flat list of picklable :class:`SpanRecord` objects; trees are rebuilt from
``(span_id, parent_id)`` by the summary tooling.

Tracing is strictly opt-in and built to cost nothing when off: the
instrumentation sites call the module-level helpers (:func:`span`,
:func:`start_span`), which check one process-global and fall straight
through when no tracer is active.  ``repro batch --trace FILE`` activates a
tracer around one batch and exports the spans as JSONL.

Threads and processes
---------------------
Each thread keeps its own span stack (``threading.local``), so concurrent
chunk solves and pipeline advancements nest correctly without sharing
state; a span started on a pool thread may also name an explicit ``parent``
span id to attach under work that began elsewhere (the engine parents each
advancement under its pair's span this way).

Worker *processes* cannot see the parent's tracer.  The engine instead sets
:attr:`~repro.service.engine.PipelineTask.trace` on the tasks it ships; the
worker runs a private tracer around the replay and returns its finished
spans — with times relative to the task start — inside the
:class:`~repro.service.engine.PipelineStep`.  Back in the parent,
:meth:`Tracer.adopt` grafts them under the pair's span: fresh span ids,
parent links remapped, and the worker's relative clock shifted onto the
parent's timeline using the moment the task was submitted.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union


@dataclass
class SpanRecord:
    """One finished span.  Picklable and JSON-ready.

    ``start`` is seconds since the tracer's epoch (its construction time on
    a monotonic clock); ``duration`` is the span's wall time.  ``attrs``
    values should be JSON-serializable scalars.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "SpanRecord":
        return cls(
            span_id=int(record["span"]),
            parent_id=None if record.get("parent") is None else int(record["parent"]),
            name=str(record["name"]),
            start=float(record["start"]),
            duration=float(record["duration"]),
            attrs=dict(record.get("attrs") or {}),
        )


class Span:
    """A live (unfinished) span handle.

    Returned by :meth:`Tracer.start` / yielded by :meth:`Tracer.span`;
    :meth:`set` attaches attributes while the span is open, :meth:`finish`
    stamps the duration and files the record.  ``id`` is stable from the
    start, so children can reference the span before it finishes.
    """

    __slots__ = ("_tracer", "id", "parent_id", "name", "attrs", "_started", "_done")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: Optional[int],
                 name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._started = time.perf_counter()
        self._done = False

    def set(self, **attrs: object) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs: object) -> None:
        if self._done:  # pragma: no cover - defensive; double finish is a bug
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        now = time.perf_counter()
        self._tracer._file(
            SpanRecord(
                span_id=self.id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._started - self._tracer.epoch,
                duration=now - self._started,
                attrs=self.attrs,
            )
        )


class _NullSpan:
    """The do-nothing span handle returned while tracing is off."""

    __slots__ = ()
    id = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def finish(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; thread-safe; one per traced batch (or worker task)."""

    def __init__(self):
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _file(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def current_id(self) -> Optional[int]:
        """The calling thread's innermost open span id (or ``None``)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(
        self, name: str, parent: Optional[int] = None, **attrs: object
    ) -> Span:
        """Open a span *without* touching the thread's stack.

        Used for spans whose lifetime crosses threads (a pair's span is
        opened when its pipeline first advances and finished when the result
        lands).  ``parent=None`` attaches under the calling thread's
        innermost open span, if any.
        """
        if parent is None:
            parent = self.current_id()
        return Span(self, self._allocate(), parent, name, dict(attrs))

    @contextmanager
    def span(self, name: str, parent: Optional[int] = None, **attrs: object):
        """Context-manager span, pushed on the calling thread's stack."""
        handle = self.start(name, parent=parent, **attrs)
        stack = self._stack()
        stack.append(handle.id)
        try:
            yield handle
        finally:
            stack.pop()
            handle.finish()

    def record(
        self,
        name: str,
        started: float,
        duration: float,
        parent: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """File a span retrospectively from explicit timings.

        ``started`` is a :func:`time.perf_counter` stamp.  Used by hot loops
        (the row-generation rounds) that measure with two clock reads and
        only pay for span bookkeeping when the round is over — the no-trace
        path stays a single ``None`` check.  Returns the new span id.
        """
        if parent is None:
            parent = self.current_id()
        span_id = self._allocate()
        self._file(
            SpanRecord(
                span_id=span_id,
                parent_id=parent,
                name=name,
                start=started - self.epoch,
                duration=duration,
                attrs=dict(attrs),
            )
        )
        return span_id

    # ------------------------------------------------------------------ #
    # Cross-process adoption
    # ------------------------------------------------------------------ #
    def adopt(
        self,
        records: Sequence[SpanRecord],
        parent: Optional[int],
        start_offset: float,
    ) -> None:
        """Graft spans recorded by a worker-side tracer into this one.

        ``records`` carry worker-relative times (their tracer's epoch is the
        task start); ``start_offset`` is that task start on *this* tracer's
        timeline.  Ids are re-allocated, internal parent links remapped, and
        worker roots attached under ``parent``.
        """
        if not records:
            return
        mapping: Dict[int, int] = {}
        for record in records:
            mapping[record.span_id] = self._allocate()
        adopted: List[SpanRecord] = []
        for record in records:
            remapped_parent = (
                mapping.get(record.parent_id, parent)
                if record.parent_id is not None
                else parent
            )
            adopted.append(
                SpanRecord(
                    span_id=mapping[record.span_id],
                    parent_id=remapped_parent,
                    name=record.name,
                    start=record.start + start_offset,
                    duration=record.duration,
                    attrs=record.attrs,
                )
            )
        with self._lock:
            self._records.extend(adopted)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one span per line; returns the number of spans written."""
        records = sorted(self.records(), key=lambda r: r.start)
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                return self.export_jsonl(handle)
        for record in records:
            target.write(json.dumps(record.to_dict()) + "\n")
        return len(records)


def read_spans_jsonl(source: Union[str, IO[str], Iterable[str]]) -> List[SpanRecord]:
    """Load spans back from a ``--trace`` JSONL file (or line iterable)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_spans_jsonl(handle)
    records: List[SpanRecord] = []
    for line in source:
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


# --------------------------------------------------------------------- #
# The process-global active tracer (the instrumentation hook points)
# --------------------------------------------------------------------- #
_ACTIVE: Optional[Tracer] = None
_ACTIVE_LOCK = threading.Lock()


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global active tracer."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already active in this process")
        _ACTIVE = tracer
    return tracer


def deactivate() -> Optional[Tracer]:
    """Remove and return the active tracer (``None`` when none was active)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """``with tracing() as tracer:`` — activate for the block, always clean up."""
    tracer = tracer if tracer is not None else Tracer()
    activate(tracer)
    try:
        yield tracer
    finally:
        deactivate()


@contextmanager
def span(name: str, parent: Optional[int] = None, **attrs: object):
    """A span on the active tracer; free no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, parent=parent, **attrs) as handle:
        yield handle


def start_span(
    name: str, parent: Optional[int] = None, **attrs: object
) -> Union[Span, _NullSpan]:
    """Open a cross-thread span on the active tracer (no-op handle when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.start(name, parent=parent, **attrs)


def record_span(
    name: str,
    started: float,
    duration: float,
    parent: Optional[int] = None,
    **attrs: object,
) -> None:
    """Retrospectively file a span on the active tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.record(name, started, duration, parent=parent, **attrs)


def current_span_id() -> Optional[int]:
    tracer = _ACTIVE
    return tracer.current_id() if tracer is not None else None
