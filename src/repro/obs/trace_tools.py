"""Summaries over exported trace files (``repro trace summarize``).

Works on the flat :class:`~repro.obs.tracer.SpanRecord` list a ``repro
batch --trace FILE`` run exports: rebuilds the span forest, aggregates
per-phase (per span name) totals with *self* time (duration minus the time
covered by child spans), walks the duration-greedy critical path from the
largest root, and ranks the slowest pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import SpanRecord


@dataclass
class SpanNode:
    """One span with its children resolved (the tree view of a record)."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def duration(self) -> float:
        return self.record.duration

    def self_time(self) -> float:
        return max(0.0, self.duration - sum(c.duration for c in self.children))


def build_forest(records: Sequence[SpanRecord]) -> List[SpanNode]:
    """Rebuild the span forest; spans with unknown parents become roots.

    A dangling parent id is tolerated here (the file may be a filtered
    slice) — the *well-formedness tests* are where orphans are an error.
    """
    nodes = {record.span_id: SpanNode(record) for record in records}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = node.record.parent_id
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.record.start)
    roots.sort(key=lambda node: node.record.start)
    return roots


def phase_totals(records: Sequence[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Per span name: count, total wall time, total *self* time."""
    roots = build_forest(records)
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        bucket = totals.setdefault(
            node.name, {"count": 0, "seconds": 0.0, "self_seconds": 0.0}
        )
        bucket["count"] += 1
        bucket["seconds"] += node.duration
        bucket["self_seconds"] += node.self_time()
        for child in node.children:
            visit(child)

    for root in roots:
        visit(root)
    return totals


def critical_path(records: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """The duration-greedy chain from the largest root to a leaf.

    At every level, descend into the child with the largest duration — the
    chain a perf PR should attack first.  Each step reports the span name,
    its duration, and the fraction of its parent it covers.
    """
    roots = build_forest(records)
    if not roots:
        return []
    node = max(roots, key=lambda n: n.duration)
    path: List[Dict[str, object]] = []
    parent_duration: Optional[float] = None
    while True:
        step: Dict[str, object] = {
            "name": node.name,
            "seconds": node.duration,
            "attrs": dict(node.record.attrs),
        }
        if parent_duration:
            step["fraction_of_parent"] = (
                node.duration / parent_duration if parent_duration > 0 else 0.0
            )
        path.append(step)
        if not node.children:
            return path
        parent_duration = node.duration
        node = max(node.children, key=lambda child: child.duration)


def slowest_spans(
    records: Sequence[SpanRecord], name: str = "pair", top: int = 5
) -> List[Dict[str, object]]:
    """The ``top`` slowest spans named ``name`` (the slowest-pairs report)."""
    matching = sorted(
        (record for record in records if record.name == name),
        key=lambda record: record.duration,
        reverse=True,
    )
    return [
        {"seconds": record.duration, "attrs": dict(record.attrs)}
        for record in matching[:top]
    ]


def summarize(records: Sequence[SpanRecord], top: int = 5) -> Dict[str, object]:
    """The full ``repro trace summarize`` payload as a JSON-ready dict."""
    totals = phase_totals(records)
    return {
        "spans": len(records),
        "phases": {
            name: totals[name]
            for name in sorted(
                totals, key=lambda name: totals[name]["seconds"], reverse=True
            )
        },
        "critical_path": critical_path(records),
        "slowest_pairs": slowest_spans(records, name="pair", top=top),
    }


def format_summary(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize` for the CLI."""
    lines: List[str] = [f"spans: {summary['spans']}"]
    lines.append("")
    lines.append(f"{'phase':<24} {'count':>7} {'total s':>10} {'self s':>10}")
    for name, bucket in summary["phases"].items():
        lines.append(
            f"{name:<24} {int(bucket['count']):>7} "
            f"{bucket['seconds']:>10.4f} {bucket['self_seconds']:>10.4f}"
        )
    lines.append("")
    lines.append("critical path:")
    for depth, step in enumerate(summary["critical_path"]):
        fraction = step.get("fraction_of_parent")
        suffix = f"  ({fraction:.0%} of parent)" if fraction is not None else ""
        attrs = step.get("attrs") or {}
        attr_text = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"  {'  ' * depth}{step['name']}: {step['seconds']:.4f}s{suffix}{attr_text}"
        )
    if summary["slowest_pairs"]:
        lines.append("")
        lines.append("slowest pairs:")
        for entry in summary["slowest_pairs"]:
            attrs = entry.get("attrs") or {}
            attr_text = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(f"  {entry['seconds']:.4f}s  {attr_text}")
    return "\n".join(lines)
