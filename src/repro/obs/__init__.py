"""``repro.obs`` — the telemetry layer: span tracing, metrics, exposition.

Three pieces, used together by the serving stack and individually by tests
and tools:

* :mod:`repro.obs.tracer` — opt-in hierarchical span tracing with JSONL
  export (``repro batch --trace``); free when inactive.
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms in a
  thread-safe registry with Prometheus text exposition (``repro daemon
  status --prom``, the daemon's ``metrics`` protocol verb).
* :mod:`repro.obs.soak` — the multi-client soak harness driving a daemon at
  a sustained target qps while scraping its metrics (``repro soak``).

:mod:`repro.obs.trace_tools` turns exported traces into per-phase totals,
the critical path and the slowest pairs (``repro trace summarize``).
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    global_registry,
    parse_exposition,
    render_registries,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    activate,
    active_tracer,
    current_span_id,
    deactivate,
    read_spans_jsonl,
    record_span,
    span,
    start_span,
    tracing,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "SpanRecord",
    "Tracer",
    "activate",
    "active_tracer",
    "current_span_id",
    "deactivate",
    "global_registry",
    "parse_exposition",
    "read_spans_jsonl",
    "record_span",
    "render_registries",
    "span",
    "start_span",
    "tracing",
]
