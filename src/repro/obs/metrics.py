"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds a process- or daemon-scoped family of
named metrics and renders them in the Prometheus text exposition format
(version 0.0.4), so any scraper — the bundled soak harness, ``curl`` through
``repro daemon status --prom``, or a real Prometheus — reads the same
surface.  Three metric kinds cover everything the serving stack needs:

* :class:`Counter` — a monotone float total, optionally split by labels
  (``lp_solves_total{backend="scipy",method="rowgen"}``).
* :class:`Gauge` — a value that can go up and down (queue depth), either set
  explicitly or computed at scrape time through a ``callback``.
* :class:`Histogram` — fixed cumulative buckets plus ``_sum``/``_count``,
  the Prometheus layout (each observation lands in every bucket whose upper
  bound ``le`` is ≥ the value).

All mutation goes through one registry lock; increments are therefore safe
under the engine's worker threads, and the render is a consistent snapshot.
The module-level :func:`global_registry` is the process-wide default the LP
layer feeds (there is exactly one LP layer per process, unlike services,
which each own their registry); :func:`render_registries` merges several
registries into one exposition — the daemon renders its own registry plus
the global one.

:func:`parse_exposition` is the strict round-trip validator used by the
tests, the soak scraper and the CI daemon-smoke job: it accepts exactly the
subset of the format this module emits and returns ``{name: {labelset:
value}}`` samples.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

#: Default histogram buckets for latencies in seconds: sub-millisecond cache
#: hits through minutes-long LP solves.
LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ReproError):
    """An invalid metric registration, sample or exposition document."""


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (``+Inf`` included)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never emitted by our metrics
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Common bookkeeping of one registered metric family."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
    ):
        self._registry = registry
        self._lock = registry._lock
        self.name = _validate_name(name)
        self.help = help
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name {label!r} on {name!r}")
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"metric {self.name!r} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header_lines(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> List[str]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(_Metric):
    """A monotone total.  ``inc`` only; negative increments are rejected."""

    kind = "counter"

    def __init__(self, registry, name, help, labelnames=()):
        super().__init__(registry, name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def set_total(self, total: float, **labels: str) -> None:
        """Force the running total (the :class:`ServiceStats` setter shim).

        Prometheus counters are monotone on the wire; this exists so code
        that historically assigned ``stats.counter = value`` keeps working,
        and it refuses to run a total backwards.
        """
        key = self._key(labels)
        with self._lock:
            if total < self._values.get(key, 0.0):
                raise MetricsError(f"counter {self.name!r} cannot decrease")
            self._values[key] = float(total)

    def sample_lines(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_label_suffix(self.labelnames, key)} {format_value(value)}"
            for key, value in items
        ]

    def reset(self) -> None:
        with self._lock:
            if self.labelnames:
                self._values.clear()
            else:
                self._values = {(): 0.0}


class Gauge(_Metric):
    """A value that can go up and down; optionally computed at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        callback: Optional[Callable[[], float]] = None,
    ):
        super().__init__(registry, name, help, labelnames)
        if callback is not None and labelnames:
            raise MetricsError("callback gauges cannot carry labels")
        self.callback = callback
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames and callback is None:
            self._values[()] = 0.0

    def set(self, value: float, **labels: str) -> None:
        if self.callback is not None:
            raise MetricsError(f"gauge {self.name!r} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if self.callback is not None:
            raise MetricsError(f"gauge {self.name!r} is callback-driven")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if self.callback is not None:
            return float(self.callback())
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def sample_lines(self) -> List[str]:
        if self.callback is not None:
            return [f"{self.name} {format_value(float(self.callback()))}"]
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_label_suffix(self.labelnames, key)} {format_value(value)}"
            for key, value in items
        ]

    def reset(self) -> None:
        with self._lock:
            if self.labelnames:
                self._values.clear()
            elif self.callback is None:
                self._values = {(): 0.0}


class Histogram(_Metric):
    """Fixed cumulative buckets plus ``_sum``/``_count`` per label set.

    ``buckets`` are the finite upper bounds in strictly increasing order;
    the ``+Inf`` bucket is implicit.  An observation equal to a bound lands
    in that bound's bucket (Prometheus ``le`` semantics are ≤).
    """

    kind = "histogram"

    def __init__(self, registry, name, help, buckets, labelnames=()):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError(f"histogram {self.name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricsError(
                f"histogram {self.name!r} buckets must strictly increase"
            )
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        # Per label set: [per-finite-bucket counts..., inf count], sum.
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._counts[()] = [0] * (len(self.buckets) + 1)
            self._sums[()] = 0.0

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def bucket_counts(self, **labels: str) -> Dict[str, int]:
        """Cumulative counts keyed by the rendered ``le`` bound (tests/tools)."""
        key = self._key(labels)
        with self._lock:
            raw = list(self._counts.get(key, [0] * (len(self.buckets) + 1)))
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, raw):
            running += count
            cumulative[format_value(bound)] = running
        cumulative["+Inf"] = running + raw[-1]
        return cumulative

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """A bucket-resolution quantile estimate (upper bound of the bucket).

        Returns ``None`` with no observations.  The answer is the smallest
        bucket bound covering the ``q``-fraction of observations — exact up
        to bucket granularity, which is what a fixed-bucket histogram can
        honestly give.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError("quantile must be within [0, 1]")
        key = self._key(labels)
        with self._lock:
            raw = list(self._counts.get(key, ()))
        total = sum(raw)
        if total == 0:
            return None
        target = q * total
        running = 0
        for bound, count in zip(self.buckets, raw):
            running += count
            if running >= target:
                return bound
        return math.inf

    def sample_lines(self) -> List[str]:
        with self._lock:
            keys = sorted(self._counts)
            raw = {key: list(self._counts[key]) for key in keys}
            sums = dict(self._sums)
        lines: List[str] = []
        bucket_labelnames = self.labelnames + ("le",)
        for key in keys:
            running = 0
            for bound, count in zip(self.buckets, raw[key]):
                running += count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_suffix(bucket_labelnames, key + (format_value(bound),))}"
                    f" {running}"
                )
            running += raw[key][-1]
            lines.append(
                f"{self.name}_bucket"
                f"{_label_suffix(bucket_labelnames, key + ('+Inf',))} {running}"
            )
            lines.append(
                f"{self.name}_sum{_label_suffix(self.labelnames, key)} "
                f"{format_value(sums[key])}"
            )
            lines.append(
                f"{self.name}_count{_label_suffix(self.labelnames, key)} {running}"
            )
        return lines

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            if not self.labelnames:
                self._counts[()] = [0] * (len(self.buckets) + 1)
                self._sums[()] = 0.0


class MetricsRegistry:
    """A named family of metrics with one consistent text exposition."""

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or existing.labelnames != metric.labelnames:
                    raise MetricsError(
                        f"metric {metric.name!r} is already registered with a "
                        "different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        """Register (or fetch the existing) counter ``name``."""
        return self._register(Counter(self, name, help, labelnames))

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Register a gauge; ``callback`` computes the value at scrape time."""
        gauge = self._register(Gauge(self, name, help, labelnames, callback))
        if callback is not None:
            gauge.callback = callback  # re-registration refreshes the closure
        return gauge

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        """Register a fixed-bucket histogram."""
        return self._register(Histogram(self, name, help, buckets, labelnames))

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return render_registries(self)

    def reset(self) -> None:
        """Zero every metric, keeping the registrations (test isolation)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()


def render_registries(*registries: MetricsRegistry) -> str:
    """Merge several registries into one exposition document.

    Later registries must not re-declare a name an earlier one exposed —
    duplicate metric families are a scrape error in Prometheus, so they are
    one here too.
    """
    lines: List[str] = []
    seen: Dict[str, str] = {}
    for registry in registries:
        with registry._lock:
            metrics = [registry._metrics[name] for name in sorted(registry._metrics)]
        for metric in metrics:
            if metric.name in seen:
                raise MetricsError(
                    f"metric {metric.name!r} exposed by more than one registry"
                )
            seen[metric.name] = metric.kind
            lines.extend(metric.header_lines())
            lines.extend(metric.sample_lines())
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry the LP layer feeds (one LP layer per process).
_GLOBAL_REGISTRY: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The lazily created process-wide default registry."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY


# --------------------------------------------------------------------- #
# Exposition parsing (the validator side)
# --------------------------------------------------------------------- #
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_exposition(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Strictly parse a Prometheus text document into ``{name: {labels: value}}``.

    ``labels`` keys are sorted ``(name, value)`` tuples.  Raises
    :class:`MetricsError` on anything malformed: unknown line shapes,
    samples without a preceding ``# TYPE``, duplicate samples, bad values.
    This is deliberately *stricter* than a real Prometheus scraper — it is
    the round-trip guard for our own renderer.
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    typed: Dict[str, str] = {}
    helped: Dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not _NAME_RE.match(parts[0]):
                raise MetricsError(f"line {line_number}: malformed HELP line")
            if parts[0] in helped:
                raise MetricsError(f"line {line_number}: duplicate HELP {parts[0]}")
            helped[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or not _NAME_RE.match(parts[0]):
                raise MetricsError(f"line {line_number}: malformed TYPE line")
            if parts[1] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise MetricsError(
                    f"line {line_number}: unknown metric type {parts[1]!r}"
                )
            if parts[0] in typed:
                raise MetricsError(f"line {line_number}: duplicate TYPE {parts[0]}")
            typed[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise MetricsError(f"line {line_number}: unparseable sample {line!r}")
        name = match.group("name")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
                break
        if family not in typed:
            raise MetricsError(
                f"line {line_number}: sample {name!r} has no preceding # TYPE"
            )
        labels: List[Tuple[str, str]] = []
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw_labels):
                labels.append(
                    (pair.group("name"), _unescape_label_value(pair.group("value")))
                )
                consumed = pair.end()
            if consumed != len(raw_labels):
                raise MetricsError(
                    f"line {line_number}: malformed label block {raw_labels!r}"
                )
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise MetricsError(
                    f"line {line_number}: bad sample value {value_text!r}"
                ) from None
        key = tuple(sorted(labels))
        series = samples.setdefault(name, {})
        if key in series:
            raise MetricsError(f"line {line_number}: duplicate sample {line!r}")
        series[key] = value
    return samples
