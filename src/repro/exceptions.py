"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so user
code can catch every library-specific failure with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class QueryError(ReproError):
    """A conjunctive query is malformed or violates a structural assumption."""


class ParseError(QueryError):
    """A textual conjunctive query could not be parsed."""


class VocabularyError(QueryError):
    """Two objects use the same relation name with inconsistent arities."""


class StructureError(ReproError):
    """A relational structure / database instance is malformed."""


class DecompositionError(ReproError):
    """A tree decomposition is invalid or cannot be constructed.

    Raised, for example, when a junction tree is requested for a query whose
    Gaifman graph is not chordal, or when a join tree is requested for a
    cyclic query.
    """


class EntropyError(ReproError):
    """An entropy / polymatroid computation received inconsistent input."""


class ExpressionError(ReproError):
    """A linear or max-linear information expression is malformed."""


class LPError(ReproError):
    """A linear program could not be solved reliably."""


class CertificateError(ReproError):
    """A proof certificate failed verification."""


class WitnessError(ReproError):
    """A counterexample witness failed verification or could not be built."""


class ReductionError(ReproError):
    """A many-one reduction received input outside its domain."""


class SearchBudgetExceeded(ReproError):
    """A counterexample / witness search exhausted its budget inconclusively."""


class StoreError(ReproError):
    """The durable verdict store is corrupt, unwritable or refused a record."""
