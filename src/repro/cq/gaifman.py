"""Gaifman graphs of conjunctive queries.

The Gaifman graph of a query has the query variables as vertices and an edge
between two variables whenever they co-occur in some atom.  Chordality of the
query (Section 3.1) is chordality of this graph.
"""

from __future__ import annotations

import networkx as nx

from repro.cq.query import ConjunctiveQuery


def gaifman_graph(query: ConjunctiveQuery) -> nx.Graph:
    """Build the Gaifman graph of ``query``.

    Every variable becomes a node even if it never co-occurs with another
    variable (atoms with a single distinct variable produce isolated nodes).
    """
    graph = nx.Graph()
    graph.add_nodes_from(query.variables)
    for atom in query.atoms:
        distinct = tuple(atom.variables)
        for i, u in enumerate(distinct):
            for v in distinct[i + 1:]:
                graph.add_edge(u, v)
    return graph


def is_clique(graph: nx.Graph, nodes) -> bool:
    """True when ``nodes`` induce a clique in ``graph``."""
    nodes = list(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if not graph.has_edge(u, v):
                return False
    return True


def maximal_cliques(graph: nx.Graph):
    """All maximal cliques of ``graph`` as frozensets (deterministic order)."""
    cliques = [frozenset(c) for c in nx.find_cliques(graph)] if graph.number_of_nodes() else []
    return sorted(cliques, key=lambda c: (len(c), sorted(c)))
