"""Set-semantics containment of conjunctive queries (Chandra–Merlin).

Under set semantics on set databases, ``Q1 ⊆ Q2`` holds if and only if there
is a homomorphism from ``Q2`` to the canonical database of ``Q1`` that maps
the head of ``Q2`` to the head of ``Q1`` (Chandra and Merlin, STOC 1977,
reference [7] of the paper).  This module provides that classical test; it
serves as the baseline comparator for the "set vs. bag" experiment (E10 in
DESIGN.md): bag containment implies set containment but not conversely.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import canonical_structure
from repro.cq.homomorphism import query_homomorphisms
from repro.exceptions import QueryError


def containment_homomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> Optional[Dict[str, str]]:
    """Return a homomorphism witnessing ``Q1 ⊆ Q2`` under set semantics.

    The witness is a homomorphism ``Q2 → Q1`` (as variable maps between the
    canonical structures) that maps the ``i``-th head variable of ``Q2`` to
    the ``i``-th head variable of ``Q1``.  Returns ``None`` when no such
    homomorphism exists, i.e. when set containment fails.
    """
    if len(q1.head) != len(q2.head):
        raise QueryError("queries must have the same number of head variables")
    fixed = dict(zip(q2.head, q1.head))
    # A head variable of Q2 repeated with two different targets is impossible.
    for variable, value in zip(q2.head, q1.head):
        if fixed[variable] != value:
            return None
    target = canonical_structure(q1)
    for assignment in query_homomorphisms(q2, target, fixed=fixed):
        return assignment
    return None


def set_contained(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ⊆ Q2`` under set semantics (the Chandra–Merlin test)."""
    return containment_homomorphism(q1, q2) is not None


def set_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide set-semantics equivalence of two conjunctive queries."""
    return set_contained(q1, q2) and set_contained(q2, q1)
