"""A small textual parser for conjunctive queries.

The accepted syntax mirrors how queries are written in the paper::

    R(x1, x2), R(x2, x3), R(x3, x1)            # Boolean query
    (x, z) :- P(x), S(u, x), S(v, z), R(z)     # query with head variables
    Q(x, z) :- P(x), S(u, x), S(v, z), R(z)    # optionally named

Atoms are separated by ``,`` or ``∧`` or ``&``.  Variable and relation names
are alphanumeric identifiers (underscores and primes allowed).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import ParseError

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_']*)\s*\(([^()]*)\)\s*")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_']*$")


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``R(x, y)``.

    >>> parse_atom("R(x, y)")
    Atom(relation='R', args=('x', 'y'))
    """
    match = _ATOM_RE.fullmatch(text)
    if match is None:
        raise ParseError(f"cannot parse atom: {text!r}")
    relation, arg_text = match.group(1), match.group(2)
    args = _parse_variable_list(arg_text, context=text)
    if not args:
        raise ParseError(f"atom {text!r} has no arguments")
    return Atom(relation, tuple(args))


def parse_query(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a conjunctive query from text.

    >>> q = parse_query("R(x, y), R(y, z)")
    >>> q.variables
    ('x', 'y', 'z')
    >>> q2 = parse_query("(x) :- R(x, y)")
    >>> q2.head
    ('x',)
    """
    text = text.strip()
    if not text:
        raise ParseError("empty query text")
    head: Tuple[str, ...] = ()
    body_text = text
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head, parsed_name = _parse_head(head_text)
        if parsed_name is not None:
            name = parsed_name
    atoms = _split_atoms(body_text)
    if not atoms:
        raise ParseError(f"query body has no atoms: {text!r}")
    return ConjunctiveQuery(
        atoms=tuple(parse_atom(atom) for atom in atoms), head=head, name=name
    )


def _parse_head(head_text: str) -> Tuple[Tuple[str, ...], str]:
    """Parse the head part, e.g. ``Q(x, z)`` or ``(x, z)`` or ``()``."""
    head_text = head_text.strip()
    name = None
    match = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_']*)?\s*\(([^()]*)\)", head_text)
    if match is None:
        raise ParseError(f"cannot parse query head: {head_text!r}")
    if match.group(1):
        name = match.group(1)
    head_vars = _parse_variable_list(match.group(2), context=head_text, allow_empty=True)
    return tuple(head_vars), name


def _parse_variable_list(
    text: str, context: str, allow_empty: bool = False
) -> List[str]:
    """Parse a comma-separated list of variable identifiers."""
    text = text.strip()
    if not text:
        if allow_empty:
            return []
        raise ParseError(f"empty variable list in {context!r}")
    variables = []
    for token in text.split(","):
        token = token.strip()
        if not _IDENT_RE.match(token):
            raise ParseError(f"invalid variable name {token!r} in {context!r}")
        variables.append(token)
    return variables


def _split_atoms(body_text: str) -> List[str]:
    """Split a query body on atom separators (commas outside parentheses)."""
    body_text = body_text.replace("∧", "&")
    atoms: List[str] = []
    depth = 0
    current: List[str] = []
    for char in body_text:
        if char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced parentheses in {body_text!r}")
            current.append(char)
        elif char in ",&" and depth == 0:
            piece = "".join(current).strip()
            if piece:
                atoms.append(piece)
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in {body_text!r}")
    piece = "".join(current).strip()
    if piece:
        atoms.append(piece)
    return atoms
