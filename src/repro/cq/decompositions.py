"""Tree decompositions, join trees and junction trees (paper Def. 2.6, Sec. 3.1).

The paper uses three flavours of decompositions:

* an *acyclic* query admits a tree decomposition whose bags are variable sets
  of atoms (a *join tree*);
* a *chordal* query (chordal Gaifman graph) admits a *junction tree*: a tree
  decomposition whose bags are the maximal cliques of the Gaifman graph;
* a junction tree is *simple* when adjacent bags share at most one variable,
  and *totally disconnected* when adjacent bags share no variable.

For chordal graphs the multiset of separators (intersections of adjacent
bags) is the same for every junction tree — it is the multiset of minimal
vertex separators.  Consequently a chordal query "admits a simple junction
tree" exactly when the junction tree produced by the standard
maximum-spanning-tree construction is simple, which is what
:func:`has_simple_junction_tree` checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import networkx as nx
from networkx.algorithms import approximation as nx_approx

from repro.cq.gaifman import gaifman_graph, maximal_cliques
from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import DecompositionError


@dataclass(frozen=True)
class TreeDecomposition:
    """A tree decomposition ``(T, χ)`` of a query.

    ``tree`` is an undirected forest over opaque node identifiers and
    ``bags`` maps each node to its bag ``χ(t)`` (a frozenset of variables).
    """

    tree: nx.Graph = field(compare=False)
    bags: Dict[object, FrozenSet[str]] = field(compare=False)

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> Tuple:
        return tuple(sorted(self.bags, key=str))

    @property
    def edges(self) -> Tuple[Tuple, ...]:
        return tuple(
            tuple(sorted(edge, key=str)) for edge in sorted(
                (tuple(sorted(e, key=str)) for e in self.tree.edges), key=str
            )
        )

    def bag(self, node) -> FrozenSet[str]:
        return self.bags[node]

    def all_variables(self) -> FrozenSet[str]:
        """Union of all bags."""
        result: set = set()
        for bag in self.bags.values():
            result |= bag
        return frozenset(result)

    def width(self) -> int:
        """Tree-width style width: max bag size minus one."""
        return max((len(bag) for bag in self.bags.values()), default=0) - 1

    def separators(self) -> List[FrozenSet[str]]:
        """The intersections ``χ(t1) ∩ χ(t2)`` over all tree edges."""
        return [
            self.bags[t1] & self.bags[t2] for t1, t2 in self.tree.edges
        ]

    def is_simple(self) -> bool:
        """Every pair of adjacent bags shares at most one variable."""
        return all(len(sep) <= 1 for sep in self.separators())

    def is_totally_disconnected(self) -> bool:
        """Every pair of adjacent bags shares no variable.

        Equivalently (footnote 5 of the paper) the decomposition could drop
        all its edges.
        """
        return all(len(sep) == 0 for sep in self.separators())

    def signature(self) -> Tuple:
        """A canonical, hashable description used to deduplicate decompositions."""
        bag_list = tuple(sorted(tuple(sorted(bag)) for bag in self.bags.values()))
        edge_list = tuple(
            sorted(
                tuple(
                    sorted(
                        (tuple(sorted(self.bags[a])), tuple(sorted(self.bags[b])))
                    )
                )
                for a, b in self.tree.edges
            )
        )
        return bag_list, edge_list

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, query: Optional[ConjunctiveQuery] = None) -> None:
        """Check the forest, running-intersection and coverage properties.

        Raises :class:`DecompositionError` on the first violation.  When
        ``query`` is omitted only the forest and running-intersection
        properties are checked.
        """
        if set(self.tree.nodes) != set(self.bags):
            raise DecompositionError("tree nodes and bag keys differ")
        if self.tree.number_of_nodes() and not nx.is_forest(self.tree):
            raise DecompositionError("the decomposition graph is not a forest")
        for variable in self.all_variables():
            nodes_with = [t for t, bag in self.bags.items() if variable in bag]
            induced = self.tree.subgraph(nodes_with)
            if nodes_with and not nx.is_connected(induced):
                raise DecompositionError(
                    f"running intersection fails for variable {variable!r}"
                )
        if query is not None:
            for atom in query.atoms:
                if not any(atom.variable_set <= bag for bag in self.bags.values()):
                    raise DecompositionError(
                        f"atom {atom} is not covered by any bag"
                    )

    def is_valid(self, query: Optional[ConjunctiveQuery] = None) -> bool:
        """Boolean version of :meth:`validate`."""
        try:
            self.validate(query)
        except DecompositionError:
            return False
        return True

    def is_decomposition_witnessing_acyclicity(self, query: ConjunctiveQuery) -> bool:
        """True when every bag equals ``vars(A)`` for some atom ``A`` (Def. 2.6)."""
        atom_var_sets = {atom.variable_set for atom in query.atoms}
        return all(bag in atom_var_sets for bag in self.bags.values())

    def is_junction_tree(self, query: ConjunctiveQuery) -> bool:
        """True when every bag is a maximal clique of the Gaifman graph."""
        cliques = set(maximal_cliques(gaifman_graph(query)))
        return all(bag in cliques for bag in self.bags.values())

    # ------------------------------------------------------------------ #
    # Rooting and atom assignment
    # ------------------------------------------------------------------ #
    def rooted_parents(self) -> Dict[object, Optional[object]]:
        """Parent map after rooting each connected component at its smallest node."""
        parent: Dict[object, Optional[object]] = {}
        for component in nx.connected_components(self.tree):
            root = min(component, key=str)
            parent[root] = None
            for child, par in nx.bfs_predecessors(self.tree.subgraph(component), root):
                parent[child] = par
        for node in self.bags:
            parent.setdefault(node, None)
        return parent

    def topological_order(self) -> List:
        """Nodes ordered so that every parent precedes its children."""
        parent = self.rooted_parents()
        order: List = []
        visited: set = set()
        roots = [node for node, par in parent.items() if par is None]
        children: Dict[object, List] = {node: [] for node in parent}
        for node, par in parent.items():
            if par is not None:
                children[par].append(node)
        stack = sorted(roots, key=str)
        while stack:
            node = stack.pop(0)
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            stack = sorted(children[node], key=str) + stack
        return order

    def assign_atoms(self, query: ConjunctiveQuery) -> Dict[object, Tuple[Atom, ...]]:
        """Assign every atom to exactly one node whose bag covers it.

        Nodes whose bag equals the atom's variable set are preferred, so that
        join-tree bags (which are atom variable sets by construction) are
        always covered by their own atoms — this keeps the counting dynamic
        program free of unconstrained bag variables.
        """
        assignment: Dict[object, List[Atom]] = {node: [] for node in self.bags}
        ordered_nodes = self.nodes
        for atom in query.atoms:
            exact = [
                node for node in ordered_nodes if self.bags[node] == atom.variable_set
            ]
            covering = exact or [
                node for node in ordered_nodes if atom.variable_set <= self.bags[node]
            ]
            if not covering:
                raise DecompositionError(f"atom {atom} is not covered by any bag")
            assignment[covering[0]].append(atom)
        return {node: tuple(atoms) for node, atoms in assignment.items()}


# ---------------------------------------------------------------------- #
# Acyclicity (GYO reduction) and join trees
# ---------------------------------------------------------------------- #
def is_acyclic(query: ConjunctiveQuery) -> bool:
    """α-acyclicity test via the GYO (Graham–Yu–Özsoyoğlu) reduction.

    Repeatedly (a) remove variables that occur in exactly one hyperedge and
    (b) remove hyperedges contained in another hyperedge; the query is
    acyclic iff the hypergraph reduces to at most one empty edge.
    """
    edges = [set(atom.variable_set) for atom in query.atoms]
    changed = True
    while changed:
        changed = False
        # Remove "ear" variables appearing in exactly one edge.
        variable_count: Dict[str, int] = {}
        for edge in edges:
            for variable in edge:
                variable_count[variable] = variable_count.get(variable, 0) + 1
        for edge in edges:
            lonely = {v for v in edge if variable_count[v] == 1}
            if lonely:
                edge -= lonely
                changed = True
        # Remove edges contained in another edge.
        edges.sort(key=len)
        survivors: List[set] = []
        for i, edge in enumerate(edges):
            contained = any(
                edge <= other for j, other in enumerate(edges) if j != i and (
                    len(other) > len(edge) or (len(other) == len(edge) and j > i)
                )
            )
            if contained:
                changed = True
            else:
                survivors.append(edge)
        edges = survivors
    return all(not edge for edge in edges)


def join_tree(query: ConjunctiveQuery) -> TreeDecomposition:
    """A tree decomposition witnessing acyclicity (bags = atom variable sets).

    The bags are the *maximal* atom variable sets; the tree is a maximum
    weight spanning forest of their intersection graph, which satisfies the
    running-intersection property exactly when the query is acyclic.

    Raises :class:`DecompositionError` when the query is not acyclic.
    """
    if not is_acyclic(query):
        raise DecompositionError(f"query {query.name} is not acyclic")
    var_sets = []
    for atom in query.atoms:
        if atom.variable_set not in var_sets:
            var_sets.append(atom.variable_set)
    maximal = [
        vs for vs in var_sets
        if not any(vs < other for other in var_sets)
    ]
    decomposition = _spanning_forest_decomposition(maximal)
    decomposition.validate(query)
    return decomposition


# ---------------------------------------------------------------------- #
# Chordality and junction trees
# ---------------------------------------------------------------------- #
def is_chordal(query: ConjunctiveQuery) -> bool:
    """True when the Gaifman graph of the query is chordal."""
    graph = gaifman_graph(query)
    if graph.number_of_nodes() <= 3:
        return True
    return nx.is_chordal(graph)


def junction_tree(query: ConjunctiveQuery) -> TreeDecomposition:
    """A junction tree of a chordal query (bags = maximal cliques).

    Built as a maximum weight spanning forest of the clique graph, the
    textbook construction (Def. 2.1 of Wainwright–Jordan, cited by the
    paper).  Raises :class:`DecompositionError` when the query is not
    chordal.
    """
    if not is_chordal(query):
        raise DecompositionError(f"query {query.name} is not chordal")
    cliques = maximal_cliques(gaifman_graph(query))
    decomposition = _spanning_forest_decomposition(cliques)
    decomposition.validate(query)
    return decomposition


def has_simple_junction_tree(query: ConjunctiveQuery) -> bool:
    """True when the query is chordal and admits a *simple* junction tree.

    Because the separators of a junction tree of a chordal graph do not
    depend on the choice of junction tree, checking the one produced by
    :func:`junction_tree` is enough.
    """
    if not is_chordal(query):
        return False
    return junction_tree(query).is_simple()


def has_totally_disconnected_junction_tree(query: ConjunctiveQuery) -> bool:
    """True when the query is chordal and its junction tree has empty separators."""
    if not is_chordal(query):
        return False
    return junction_tree(query).is_totally_disconnected()


# ---------------------------------------------------------------------- #
# General-purpose (heuristic) decompositions
# ---------------------------------------------------------------------- #
def heuristic_tree_decomposition(query: ConjunctiveQuery) -> TreeDecomposition:
    """A (not necessarily optimal) tree decomposition via min-fill-in.

    Used for the *sufficient* containment condition on queries that are
    neither acyclic nor chordal: any tree decomposition of ``Q2`` yields a
    sound sufficient check (see Theorem 4.2 and the discussion in
    Section 4.1).
    """
    graph = gaifman_graph(query)
    if graph.number_of_nodes() == 0:
        raise DecompositionError("query has no variables")
    components = list(nx.connected_components(graph))
    tree = nx.Graph()
    bags: Dict[object, FrozenSet[str]] = {}
    next_id = 0
    for component in components:
        subgraph = graph.subgraph(component).copy()
        _, decomposition_graph = nx_approx.treewidth_min_fill_in(subgraph)
        local_ids: Dict[frozenset, int] = {}
        for bag in decomposition_graph.nodes:
            local_ids[bag] = next_id
            bags[next_id] = frozenset(bag)
            tree.add_node(next_id)
            next_id += 1
        for bag_a, bag_b in decomposition_graph.edges:
            tree.add_edge(local_ids[bag_a], local_ids[bag_b])
    result = TreeDecomposition(tree=tree, bags=bags)
    result.validate(query)
    return result


def candidate_tree_decompositions(query: ConjunctiveQuery) -> List[TreeDecomposition]:
    """A small set of useful tree decompositions of ``query``.

    Includes the join tree when the query is acyclic, the junction tree when
    it is chordal, and the min-fill heuristic decomposition otherwise.
    Duplicates (same bags and edges) are removed.
    """
    candidates: List[TreeDecomposition] = []
    if is_acyclic(query):
        candidates.append(join_tree(query))
    if is_chordal(query):
        candidates.append(junction_tree(query))
    if not candidates:
        candidates.append(heuristic_tree_decomposition(query))
    unique: List[TreeDecomposition] = []
    seen = set()
    for candidate in candidates:
        signature = candidate.signature()
        if signature not in seen:
            seen.add(signature)
            unique.append(candidate)
    return unique


# ---------------------------------------------------------------------- #
# Shared construction
# ---------------------------------------------------------------------- #
def _spanning_forest_decomposition(bags: List[FrozenSet[str]]) -> TreeDecomposition:
    """Maximum-weight spanning forest over bags, weighted by intersection size."""
    graph = nx.Graph()
    for index, bag in enumerate(bags):
        graph.add_node(index)
    for i in range(len(bags)):
        for j in range(i + 1, len(bags)):
            weight = len(bags[i] & bags[j])
            if weight > 0:
                graph.add_edge(i, j, weight=weight)
    forest = nx.Graph()
    forest.add_nodes_from(graph.nodes)
    for component in nx.connected_components(graph):
        subgraph = graph.subgraph(component)
        spanning = nx.maximum_spanning_tree(subgraph, weight="weight")
        forest.add_edges_from(spanning.edges)
    return TreeDecomposition(tree=forest, bags={i: bag for i, bag in enumerate(bags)})
