"""Conjunctive-query substrate.

This package implements everything the paper assumes about conjunctive
queries and relational structures (paper Sections 2.1–2.2 and Appendix A):

* atoms, conjunctive queries and vocabularies (:mod:`repro.cq.query`),
* a small textual parser (:mod:`repro.cq.parser`),
* relational structures / database instances and named relations
  (:mod:`repro.cq.structures`),
* generalized projections and the induced database ``Π_Q(P)`` of Eq. (4)
  (:mod:`repro.cq.projection`),
* homomorphism enumeration and counting (:mod:`repro.cq.homomorphism`),
* bag-set and set semantics evaluation (:mod:`repro.cq.evaluation`),
* Gaifman graphs, tree decompositions, join trees and junction trees
  (:mod:`repro.cq.gaifman`, :mod:`repro.cq.decompositions`),
* the Boolean-query, bag-bag and projection-saturation reductions of
  Appendix A (:mod:`repro.cq.reductions`),
* the Chandra–Merlin set-semantics containment baseline
  (:mod:`repro.cq.chandra_merlin`).
"""

from repro.cq.query import Atom, ConjunctiveQuery, Vocabulary
from repro.cq.parser import parse_atom, parse_query
from repro.cq.structures import Relation, Structure, canonical_structure
from repro.cq.projection import (
    annotate_relation,
    generalized_projection,
    induced_database,
)
from repro.cq.homomorphism import (
    count_homomorphisms,
    count_query_homomorphisms,
    exists_homomorphism,
    homomorphisms,
    query_homomorphisms,
)
from repro.cq.evaluation import (
    bag_contained_on,
    evaluate_bag,
    evaluate_set,
)
from repro.cq.gaifman import gaifman_graph
from repro.cq.decompositions import (
    TreeDecomposition,
    candidate_tree_decompositions,
    has_simple_junction_tree,
    heuristic_tree_decomposition,
    is_acyclic,
    is_chordal,
    join_tree,
    junction_tree,
)
from repro.cq.reductions import (
    bag_bag_to_bag_set,
    desaturate_database,
    saturate_database,
    saturate_query,
    to_boolean_pair,
)
from repro.cq.chandra_merlin import set_contained

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Vocabulary",
    "parse_atom",
    "parse_query",
    "Relation",
    "Structure",
    "canonical_structure",
    "generalized_projection",
    "induced_database",
    "annotate_relation",
    "homomorphisms",
    "count_homomorphisms",
    "exists_homomorphism",
    "query_homomorphisms",
    "count_query_homomorphisms",
    "evaluate_bag",
    "evaluate_set",
    "bag_contained_on",
    "gaifman_graph",
    "TreeDecomposition",
    "is_acyclic",
    "is_chordal",
    "join_tree",
    "junction_tree",
    "has_simple_junction_tree",
    "heuristic_tree_decomposition",
    "candidate_tree_decompositions",
    "to_boolean_pair",
    "bag_bag_to_bag_set",
    "saturate_query",
    "saturate_database",
    "desaturate_database",
    "set_contained",
]
