"""Generalized projections and the induced database ``Π_Q(P)`` of Eq. (4).

Given a ``V``-relation ``P`` (a candidate witness) and a query ``Q`` over the
variables ``V``, the paper builds the database instance ``Π_Q(P)`` whose
relation ``R_ℓ`` is the union of the *generalized projections* of ``P`` onto
the atoms with relation name ``R_ℓ``.  Generalized projections differ from
standard ones in that the same source attribute may be repeated (for atoms
with repeated variables such as ``R(x, x, y)``).

The module also implements the *annotation* trick used in the proof of
Theorem 4.4: every value is tagged with the variable name of its column so
that the witness database admits the "erasing" homomorphism ``e : D → Q1``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import Relation, Structure
from repro.exceptions import StructureError


def generalized_projection(
    relation: Relation, mapping: Mapping[str, str] | Sequence[str]
) -> Relation:
    """The generalized projection ``Π_φ(P)`` of Section 3.1.

    ``mapping`` describes the function ``φ : Y → V``: it either maps each
    output attribute name to a source attribute, or is a sequence of source
    attributes in which case the output attributes are synthesized as
    ``pos0, pos1, ...``.

    Repeated source attributes are allowed: with ``P = {(a, b)}`` over
    attributes ``(x, y)`` and ``mapping = {"u": "x", "v": "x", "w": "y"}``,
    the result is ``{(a, a, b)}`` over ``(u, v, w)``.
    """
    if not isinstance(mapping, Mapping):
        mapping = {f"pos{i}": source for i, source in enumerate(mapping)}
    output_attrs = tuple(mapping)
    source_idx = [relation.column_index(mapping[a]) for a in output_attrs]
    rows = {tuple(row[i] for i in source_idx) for row in relation.rows}
    return Relation(attributes=output_attrs, rows=rows)


def atom_projection(relation: Relation, args: Sequence[str]) -> frozenset:
    """Project ``relation`` onto an atom's argument list, as raw tuples.

    This is ``Π_{vars(A)}(P)`` from Eq. (4), where ``vars(A)`` is the
    position → variable function of the atom (repeats allowed).  The result is
    a set of plain tuples ready to be inserted into a database relation.
    """
    indices = [relation.column_index(a) for a in args]
    return frozenset(tuple(row[i] for i in indices) for row in relation.rows)


def induced_database(query: ConjunctiveQuery, relation: Relation) -> Structure:
    """The induced database ``Π_Q(P)`` of Eq. (4).

    For each relation name ``R_ℓ`` of the query, the database relation is the
    union over all atoms ``A`` with ``rel(A) = R_ℓ`` of the generalized
    projection of ``P`` onto ``vars(A)``.

    Every variable of the query must be an attribute of ``P``.
    """
    missing = set(query.variables) - relation.attribute_set
    if missing:
        raise StructureError(
            f"witness relation is missing query variables {sorted(missing)}"
        )
    relations: Dict[str, set] = {}
    for atom in query.atoms:
        tuples = relations.setdefault(atom.relation, set())
        tuples.update(atom_projection(relation, atom.args))
    domain = set()
    for tuples in relations.values():
        for row in tuples:
            domain.update(row)
    return Structure(domain=frozenset(domain), relations=relations)


def annotate_relation(relation: Relation) -> Relation:
    """Tag every value with its column (variable) name.

    A value ``c`` in column ``X`` becomes the pair ``(X, c)``.  The annotated
    relation is isomorphic to the original (hence still totally uniform when
    the original is), and the database it induces via :func:`induced_database`
    admits the erasing homomorphism back to the canonical structure of the
    query — the key step in the proof of Theorem 4.4.
    """
    rows = set()
    for row in relation.rows:
        rows.add(tuple((attr, value) for attr, value in zip(relation.attributes, row)))
    return Relation(attributes=relation.attributes, rows=rows)


def erasing_homomorphism(structure: Structure) -> Dict[Tuple, str]:
    """The homomorphism ``e : D → Q1`` that maps ``(X, c)`` back to ``X``.

    Only defined for structures built from an annotated relation; raises if a
    domain element is not a ``(variable, value)`` pair.
    """
    mapping: Dict[Tuple, str] = {}
    for element in structure.domain:
        if not (isinstance(element, tuple) and len(element) == 2):
            raise StructureError(
                f"domain element {element!r} is not an annotated (variable, value) pair"
            )
        mapping[element] = element[0]
    return mapping
