"""Query evaluation under bag-set and set semantics (paper Problem 2.3).

Under *bag-set* semantics the input database is a set and the answer of
``Q(x)`` is the mapping ``d ↦ |Q(D)[d]|`` counting, for every head tuple
``d``, the homomorphisms that agree with ``d`` on the head variables — the
SQL ``COUNT(*) ... GROUP BY`` semantics.  Under *set* semantics the answer is
just the set of head tuples with a non-zero count.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Tuple

from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import Structure
from repro.cq.homomorphism import query_homomorphisms

HeadTuple = Tuple
BagAnswer = Dict[HeadTuple, int]


def evaluate_bag(query: ConjunctiveQuery, database: Structure) -> BagAnswer:
    """Evaluate ``query`` on ``database`` under bag-set semantics.

    Returns a dictionary mapping each head tuple with a non-zero multiplicity
    to its multiplicity.  For a Boolean query the dictionary has the single
    key ``()`` whose value is ``|hom(Q, D)|`` (and is empty when the count is
    zero).
    """
    answer: BagAnswer = {}
    for assignment in query_homomorphisms(query, database):
        head_tuple = tuple(assignment[v] for v in query.head)
        answer[head_tuple] = answer.get(head_tuple, 0) + 1
    return answer


def evaluate_set(query: ConjunctiveQuery, database: Structure) -> FrozenSet[HeadTuple]:
    """Evaluate ``query`` on ``database`` under set semantics."""
    return frozenset(evaluate_bag(query, database))


def bag_multiplicity(
    query: ConjunctiveQuery, database: Structure, head_tuple: HeadTuple
) -> int:
    """The multiplicity ``|Q(D)[d]|`` of a single head tuple ``d``."""
    fixed = dict(zip(query.head, head_tuple))
    return sum(1 for _ in query_homomorphisms(query, database, fixed=fixed))


def bag_contained_on(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, database: Structure
) -> bool:
    """Check the pointwise inequality ``Q1(D) ≤ Q2(D)`` on one database.

    The two queries must have the same number of head variables.  This is the
    per-database test whose universal quantification over all databases is
    the containment problem ``Q1 ⊑ Q2``.
    """
    if len(q1.head) != len(q2.head):
        raise ValueError("queries must have the same number of head variables")
    answer1 = evaluate_bag(q1, database)
    answer2 = evaluate_bag(q2, database)
    return all(count <= answer2.get(head, 0) for head, count in answer1.items())


def set_contained_on(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, database: Structure
) -> bool:
    """Check ``Q1(D) ⊆ Q2(D)`` under set semantics on one database."""
    if len(q1.head) != len(q2.head):
        raise ValueError("queries must have the same number of head variables")
    return evaluate_set(q1, database) <= evaluate_set(q2, database)


def enumerate_databases(
    vocabulary, domain_size: int, max_tuples_per_relation: int = None
):
    """Enumerate all databases over ``[0, domain_size)`` for a vocabulary.

    Used by brute-force containment refutation on tiny instances.  The number
    of databases is doubly exponential; callers must keep ``domain_size`` and
    the vocabulary small.  ``max_tuples_per_relation`` optionally caps the
    relation sizes to bound the enumeration further.
    """
    domain = tuple(range(domain_size))
    relation_names = vocabulary.relations()
    all_tuples = {
        name: list(itertools.product(domain, repeat=vocabulary.arity(name)))
        for name in relation_names
    }

    def subsets(tuples):
        limit = len(tuples) if max_tuples_per_relation is None else min(
            len(tuples), max_tuples_per_relation
        )
        for size in range(limit + 1):
            yield from itertools.combinations(tuples, size)

    for choice in itertools.product(*(subsets(all_tuples[n]) for n in relation_names)):
        relations = {name: frozenset(rows) for name, rows in zip(relation_names, choice)}
        yield Structure(domain=frozenset(domain), relations=relations)
