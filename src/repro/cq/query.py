"""Atoms, conjunctive queries and vocabularies (paper Section 2.2).

A conjunctive query ``Q(x) = A_1 ∧ ... ∧ A_k`` is represented by its tuple of
head variables ``x`` and its tuple of atoms ``A_j``.  Each atom carries a
relation name and a tuple of variables; repeated variables inside an atom are
allowed (``R(x, x, y)``), exactly as in the paper.

Because the paper works under bag-set semantics, repeated *atoms* carry no
meaning and are eliminated when the query is constructed (Section 2.2,
"Bag-bag Semantics" discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.exceptions import QueryError, VocabularyError
from repro.utils.ordering import stable_unique

Variable = str
RelationName = str


@dataclass(frozen=True, order=True)
class Atom:
    """A single relational atom ``R(x_1, ..., x_a)``.

    Attributes
    ----------
    relation:
        The relation name ``R``.
    args:
        The tuple of variables in attribute-position order.  Variables may
        repeat, e.g. ``Atom("R", ("x", "x", "y"))``.
    """

    relation: RelationName
    args: Tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("atom relation name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if len(self.args) == 0:
            raise QueryError(
                f"atom {self.relation!r} must have at least one argument"
            )
        for arg in self.args:
            if not isinstance(arg, str) or not arg:
                raise QueryError(
                    f"atom {self.relation!r} has a non-string or empty variable: {arg!r}"
                )

    @property
    def arity(self) -> int:
        """Number of attribute positions of the atom's relation."""
        return len(self.args)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables of the atom in first-occurrence order."""
        return stable_unique(self.args)

    @property
    def variable_set(self) -> FrozenSet[Variable]:
        """Distinct variables of the atom as a frozenset."""
        return frozenset(self.args)

    def rename(self, mapping: Mapping[Variable, Variable]) -> "Atom":
        """Return a copy of the atom with variables renamed via ``mapping``.

        Variables absent from ``mapping`` are kept unchanged.
        """
        return Atom(self.relation, tuple(mapping.get(v, v) for v in self.args))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class Vocabulary:
    """A relational vocabulary: a mapping from relation names to arities."""

    arities: Mapping[RelationName, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arities", dict(self.arities))

    def arity(self, relation: RelationName) -> int:
        """Return the arity of ``relation``; raise if unknown."""
        try:
            return self.arities[relation]
        except KeyError as exc:
            raise VocabularyError(f"unknown relation name: {relation!r}") from exc

    def relations(self) -> Tuple[RelationName, ...]:
        """Relation names in sorted order."""
        return tuple(sorted(self.arities))

    def merged_with(self, other: "Vocabulary") -> "Vocabulary":
        """Merge two vocabularies, raising on arity conflicts."""
        merged: Dict[RelationName, int] = dict(self.arities)
        for name, arity in other.arities.items():
            if name in merged and merged[name] != arity:
                raise VocabularyError(
                    f"relation {name!r} used with arities {merged[name]} and {arity}"
                )
            merged[name] = arity
        return Vocabulary(merged)

    def __contains__(self, relation: RelationName) -> bool:
        return relation in self.arities

    def __len__(self) -> int:
        return len(self.arities)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query under bag-set semantics.

    Attributes
    ----------
    atoms:
        The atoms of the body.  Repeated atoms are removed on construction
        (they are meaningless under bag-set semantics).
    head:
        The tuple of head (free) variables.  A query with an empty head is a
        *Boolean* query in the paper's terminology: its bag-set answer is a
        single number, the count of homomorphisms into the database.
    name:
        Optional human-readable name used in reprs and reports.
    """

    atoms: Tuple[Atom, ...]
    head: Tuple[Variable, ...] = ()
    name: str = field(default="Q", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if len(self.atoms) == 0:
            raise QueryError("a conjunctive query must have at least one atom")
        # Eliminate repeated atoms (bag-set semantics, Section 2.2).
        object.__setattr__(self, "atoms", stable_unique(self.atoms))
        body_vars = set()
        for atom in self.atoms:
            body_vars.update(atom.args)
        for head_var in self.head:
            if head_var not in body_vars:
                raise QueryError(
                    f"head variable {head_var!r} does not occur in the body"
                )
        # Check arity consistency across atoms.
        arities: Dict[RelationName, int] = {}
        for atom in self.atoms:
            known = arities.get(atom.relation)
            if known is not None and known != atom.arity:
                raise VocabularyError(
                    f"relation {atom.relation!r} used with arities {known} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the query in first-occurrence order."""
        return stable_unique(v for atom in self.atoms for v in atom.args)

    @property
    def variable_set(self) -> FrozenSet[Variable]:
        """All variables of the query as a frozenset."""
        return frozenset(self.variables)

    @property
    def existential_variables(self) -> Tuple[Variable, ...]:
        """Variables that are existentially quantified (not in the head)."""
        head = set(self.head)
        return tuple(v for v in self.variables if v not in head)

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary (relation name → arity) used by the query."""
        arities: Dict[RelationName, int] = {}
        for atom in self.atoms:
            arities[atom.relation] = atom.arity
        return Vocabulary(arities)

    @property
    def is_boolean(self) -> bool:
        """True when the query has no head variables."""
        return len(self.head) == 0

    @property
    def is_projection_free(self) -> bool:
        """True when no variable is existentially quantified."""
        return set(self.head) == set(self.variables)

    def atoms_with_relation(self, relation: RelationName) -> Tuple[Atom, ...]:
        """All atoms whose relation name equals ``relation``."""
        return tuple(atom for atom in self.atoms if atom.relation == relation)

    def atoms_within(self, variables: Iterable[Variable]) -> Tuple[Atom, ...]:
        """Atoms whose variables are all contained in ``variables``.

        This is the sub-query ``Q_t`` at a bag ``χ(t)`` used throughout
        Section 4 of the paper.
        """
        allowed = frozenset(variables)
        return tuple(
            atom for atom in self.atoms if atom.variable_set <= allowed
        )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def rename(self, mapping: Mapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Rename variables according to ``mapping`` (missing keys unchanged)."""
        return ConjunctiveQuery(
            atoms=tuple(atom.rename(mapping) for atom in self.atoms),
            head=tuple(mapping.get(v, v) for v in self.head),
            name=self.name,
        )

    def with_fresh_variables(self, suffix: str) -> "ConjunctiveQuery":
        """Rename every variable ``v`` to ``v + suffix``."""
        return self.rename({v: v + suffix for v in self.variables})

    def drop_head(self) -> "ConjunctiveQuery":
        """Return the Boolean query with the same body."""
        return ConjunctiveQuery(atoms=self.atoms, head=(), name=self.name)

    def conjoin(self, other: "ConjunctiveQuery", name: str = None) -> "ConjunctiveQuery":
        """Conjoin two queries (their variable sets are taken as given).

        The head of the result is the concatenation of both heads with
        duplicates removed.
        """
        self.vocabulary.merged_with(other.vocabulary)
        return ConjunctiveQuery(
            atoms=self.atoms + other.atoms,
            head=stable_unique(self.head + other.head),
            name=name or f"{self.name}∧{other.name}",
        )

    def disjoint_copies(self, count: int) -> "ConjunctiveQuery":
        """Return the conjunction of ``count`` variable-disjoint copies.

        This realizes the structure ``n · A`` of Kopparty–Rossman used by the
        reduction from exponent domination to DOM
        (paper Section 2.1, Lemma 2.2 of [21]): the number of homomorphisms
        of the result into any database is ``|hom(Q, D)| ** count``.
        """
        if count < 1:
            raise QueryError("disjoint_copies requires count >= 1")
        copies = [self.with_fresh_variables(f"__copy{i}") for i in range(count)]
        result = copies[0]
        for copy in copies[1:]:
            result = result.conjoin(copy)
        return ConjunctiveQuery(
            atoms=result.atoms, head=result.head, name=f"{self.name}^{count}"
        )

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        head = ", ".join(self.head)
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        return f"{self.name}({head}) :- {body}"

    def __len__(self) -> int:
        return len(self.atoms)


def make_query(
    atoms: Sequence[Tuple[RelationName, Sequence[Variable]]],
    head: Sequence[Variable] = (),
    name: str = "Q",
) -> ConjunctiveQuery:
    """Convenience constructor from ``(relation, variables)`` pairs.

    >>> q = make_query([("R", ("x", "y")), ("R", ("y", "z"))])
    >>> len(q.atoms)
    2
    """
    return ConjunctiveQuery(
        atoms=tuple(Atom(rel, tuple(args)) for rel, args in atoms),
        head=tuple(head),
        name=name,
    )
