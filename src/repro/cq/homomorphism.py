"""Homomorphism enumeration and counting.

Homomorphism counts are the central quantity of the paper: the answer of a
Boolean conjunctive query ``Q`` on a database ``D`` under bag-set semantics
is ``|hom(Q, D)|``, and ``Q1 ⊑ Q2`` means ``|hom(Q1, D)| ≤ |hom(Q2, D)|`` for
every ``D``.

Two counting engines are provided:

* a generic backtracking engine (:func:`query_homomorphisms`) that works for
  every query and also powers structure-to-structure homomorphism counting;
* a tree-decomposition engine
  (:func:`count_homomorphisms_via_decomposition`), the Yannakakis-style
  dynamic program, which is exponentially faster on acyclic / bounded-width
  queries and serves as the "substrate" baseline for the A1 ablation
  benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure, canonical_structure
from repro.exceptions import QueryError

Assignment = Dict[str, object]


# ---------------------------------------------------------------------- #
# Backtracking engine
# ---------------------------------------------------------------------- #
def _order_atoms(query: ConjunctiveQuery) -> List[Atom]:
    """Order atoms so that each one shares variables with earlier atoms.

    A greedy connectivity-first order keeps the partial assignment as
    constrained as possible, which prunes the backtracking search early.
    """
    remaining = list(query.atoms)
    ordered: List[Atom] = []
    bound: set = set()
    while remaining:
        best_index = 0
        best_score = (-1, 0)
        for index, atom in enumerate(remaining):
            shared = len(atom.variable_set & bound)
            # Prefer atoms with many already-bound variables, then small atoms.
            score = (shared, -len(atom.variable_set))
            if score > best_score:
                best_score = score
                best_index = index
        atom = remaining.pop(best_index)
        ordered.append(atom)
        bound.update(atom.variable_set)
    return ordered


def _matches(
    atom: Atom, structure: Structure, assignment: Assignment
) -> Iterator[Assignment]:
    """Yield extensions of ``assignment`` that satisfy ``atom`` in ``structure``."""
    for row in structure.tuples(atom.relation):
        if len(row) != len(atom.args):
            continue
        extension: Assignment = {}
        ok = True
        for variable, value in zip(atom.args, row):
            bound = assignment.get(variable, extension.get(variable))
            if bound is None:
                extension[variable] = value
            elif bound != value:
                ok = False
                break
        if ok:
            yield extension


def query_homomorphisms(
    query: ConjunctiveQuery,
    structure: Structure,
    fixed: Optional[Mapping[str, object]] = None,
) -> Iterator[Assignment]:
    """Enumerate the homomorphisms (satisfying assignments) of ``query`` in ``structure``.

    ``fixed`` optionally pre-binds some variables (used to evaluate queries
    with head variables and to restrict to ``hom_φ`` in Section 4.2).
    Each yielded assignment maps every variable of the query to a domain
    element of ``structure``.
    """
    ordered = _order_atoms(query)
    base: Assignment = dict(fixed) if fixed else {}
    for variable, value in base.items():
        if value not in structure.domain:
            return

    def backtrack(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[index]
        for extension in _matches(atom, structure, assignment):
            assignment.update(extension)
            yield from backtrack(index + 1, assignment)
            for variable in extension:
                del assignment[variable]

    yield from backtrack(0, base)


def count_query_homomorphisms(
    query: ConjunctiveQuery,
    structure: Structure,
    fixed: Optional[Mapping[str, object]] = None,
    method: str = "auto",
) -> int:
    """Count ``|hom(Q, D)|`` (restricted to assignments extending ``fixed``).

    ``method`` is one of ``"auto"``, ``"backtracking"`` or ``"decomposition"``.
    ``"auto"`` uses the tree-decomposition dynamic program when the query is
    acyclic and no variables are fixed, and backtracking otherwise.
    """
    if method not in {"auto", "backtracking", "decomposition"}:
        raise QueryError(f"unknown homomorphism counting method {method!r}")
    if method in {"auto", "decomposition"} and not fixed:
        from repro.cq.decompositions import is_acyclic, join_tree

        try:
            if is_acyclic(query):
                return count_homomorphisms_via_decomposition(
                    query, structure, join_tree(query)
                )
            if method == "decomposition":
                from repro.cq.decompositions import heuristic_tree_decomposition

                return count_homomorphisms_via_decomposition(
                    query, structure, heuristic_tree_decomposition(query)
                )
        except QueryError:
            # A bag would materialize too many assignments; fall back to the
            # memory-frugal backtracking count.
            pass
    return sum(1 for _ in query_homomorphisms(query, structure, fixed=fixed))


def exists_query_homomorphism(
    query: ConjunctiveQuery,
    structure: Structure,
    fixed: Optional[Mapping[str, object]] = None,
) -> bool:
    """True when at least one homomorphism of ``query`` into ``structure`` exists."""
    for _ in query_homomorphisms(query, structure, fixed=fixed):
        return True
    return False


# ---------------------------------------------------------------------- #
# Structure-to-structure homomorphisms
# ---------------------------------------------------------------------- #
def _structure_as_query(structure: Structure) -> Tuple[ConjunctiveQuery, Tuple]:
    """View a structure as a Boolean query (facts become atoms).

    Returns the query together with the tuple of isolated domain elements
    (elements that appear in no fact); those are unconstrained and multiply
    the homomorphism count by ``|target domain|`` each.
    """
    atoms = []
    used = set()
    for name, row in structure.facts():
        atoms.append(Atom(name, tuple(f"__elem_{value!r}" for value in row)))
        used.update(row)
    isolated = tuple(sorted((structure.domain - used), key=str))
    if not atoms:
        raise QueryError("structure with no facts cannot be viewed as a query")
    return ConjunctiveQuery(atoms=tuple(atoms), head=()), isolated


def homomorphisms(source: Structure, target: Structure) -> Iterator[Dict]:
    """Enumerate homomorphisms ``source → target`` as domain-element maps."""
    query, isolated = _structure_as_query(source)
    reverse = {f"__elem_{value!r}": value for value in source.domain}
    target_domain = sorted(target.domain, key=str)

    def attach_isolated(core: Dict) -> Iterator[Dict]:
        if not isolated:
            yield core
            return
        import itertools

        for values in itertools.product(target_domain, repeat=len(isolated)):
            mapping = dict(core)
            mapping.update(dict(zip(isolated, values)))
            yield mapping

    for assignment in query_homomorphisms(query, target):
        core = {reverse[variable]: value for variable, value in assignment.items()}
        yield from attach_isolated(core)


def count_homomorphisms(source: Structure, target: Structure) -> int:
    """Count ``|hom(source, target)|`` between two structures."""
    query, isolated = _structure_as_query(source)
    base = count_query_homomorphisms(query, target)
    return base * (len(target.domain) ** len(isolated))


def exists_homomorphism(source: Structure, target: Structure) -> bool:
    """True when a homomorphism ``source → target`` exists."""
    query, _ = _structure_as_query(source)
    return exists_query_homomorphism(query, target)


def query_to_query_homomorphisms(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> List[Dict[str, str]]:
    """All homomorphisms ``source → target`` between queries.

    Queries are identified with their canonical structures (Section 2.2):
    a homomorphism maps variables of ``source`` to variables of ``target``
    such that every atom of ``source`` becomes an atom of ``target``.
    The result is the set ``hom(Q2, Q1)`` appearing in Eq. (8) when called as
    ``query_to_query_homomorphisms(q2, q1)``.
    """
    return list(query_homomorphisms(source, canonical_structure(target)))


def count_query_to_query_homomorphisms(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> int:
    """Count homomorphisms between two queries."""
    return count_query_homomorphisms(source, canonical_structure(target))


# ---------------------------------------------------------------------- #
# Tree-decomposition (Yannakakis-style) counting
# ---------------------------------------------------------------------- #
_MAX_BAG_ROWS = 500_000


def _bag_assignments(
    query: ConjunctiveQuery,
    structure: Structure,
    bag: frozenset,
    covered_atoms: Tuple[Atom, ...],
) -> List[Tuple]:
    """All assignments of the bag variables satisfying the bag's atoms.

    The bag's variables that are not constrained by any covered atom range
    over the whole domain of the structure.  To keep memory bounded the
    materialization refuses to build more than ``_MAX_BAG_ROWS`` rows (the
    caller falls back to backtracking in that case).
    """
    variables = tuple(sorted(bag))
    sub_query_atoms = covered_atoms
    constrained = set()
    for atom in sub_query_atoms:
        constrained.update(atom.variable_set)
    free = [v for v in variables if v not in constrained]

    assignments: List[Dict[str, object]] = []
    if sub_query_atoms:
        sub_query = ConjunctiveQuery(atoms=sub_query_atoms, head=())
        assignments = list(query_homomorphisms(sub_query, structure))
    else:
        assignments = [{}]

    import itertools

    domain = sorted(structure.domain, key=str)
    estimated = len(assignments) * (len(domain) ** len(free))
    if estimated > _MAX_BAG_ROWS:
        raise QueryError(
            f"bag over {variables} would materialize ~{estimated} assignments"
        )
    rows: List[Tuple] = []
    for assignment in assignments:
        if free:
            for values in itertools.product(domain, repeat=len(free)):
                full = dict(assignment)
                full.update(dict(zip(free, values)))
                rows.append(tuple(full[v] for v in variables))
        else:
            rows.append(tuple(assignment[v] for v in variables))
    return rows


def count_homomorphisms_via_decomposition(
    query: ConjunctiveQuery, structure: Structure, decomposition
) -> int:
    """Count ``|hom(Q, D)|`` using a tree decomposition of ``Q``.

    This is the classical dynamic program over a (rooted) tree decomposition:
    every atom is assigned to one bag that covers it, each bag materializes
    its satisfying assignments, and counts are aggregated bottom-up along the
    tree.  For decompositions of bounded width this runs in polynomial time.
    """
    decomposition.validate(query)
    assignment_of_atoms = decomposition.assign_atoms(query)
    parent = decomposition.rooted_parents()
    order = decomposition.topological_order()

    variables_of = {node: tuple(sorted(decomposition.bags[node])) for node in order}
    rows_of: Dict[object, List[Tuple]] = {}
    for node in order:
        rows_of[node] = _bag_assignments(
            query, structure, decomposition.bags[node], assignment_of_atoms[node]
        )

    # weight[node][row] = number of homomorphisms of the subtree rooted at node
    # whose restriction to the bag equals row.
    weight: Dict[object, Dict[Tuple, int]] = {}
    children: Dict[object, List[object]] = {node: [] for node in order}
    for node, par in parent.items():
        if par is not None:
            children[par].append(node)

    for node in reversed(order):
        bag_vars = variables_of[node]
        node_weights: Dict[Tuple, int] = {}
        for row in rows_of[node]:
            row_assignment = dict(zip(bag_vars, row))
            total = 1
            for child in children[node]:
                child_vars = variables_of[child]
                shared = [v for v in child_vars if v in row_assignment]
                child_total = 0
                for child_row, child_weight in weight[child].items():
                    child_assignment = dict(zip(child_vars, child_row))
                    if all(child_assignment[v] == row_assignment[v] for v in shared):
                        child_total += child_weight
                total *= child_total
                if total == 0:
                    break
            node_weights[row] = node_weights.get(row, 0) + total
        weight[node] = node_weights

    # Multiply the root counts of each connected component of the forest and
    # account for query variables not covered by any bag (there are none for
    # valid decompositions, by the coverage property).
    result = 1
    for node in order:
        if parent[node] is None:
            result *= sum(weight[node].values())
    return result
