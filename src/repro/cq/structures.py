"""Relational structures, database instances and named relations.

Two data structures live here:

* :class:`Structure` — a relational structure / database instance
  ``D = (D, R_1^D, ..., R_m^D)`` (paper Section 2.1).  Under bag-set
  semantics the instance itself is a *set* database.
* :class:`Relation` — a ``V``-relation ``P ⊆ D^V`` with named attributes
  (paper Section 3.1).  ``V``-relations are the witnesses of Fact 3.2; their
  uniform distributions supply the entropic functions used in Sections 3–5.

The module also provides :func:`canonical_structure`, the canonical database
of a conjunctive query (variables as domain elements, atoms as facts), which
identifies queries with structures as in Section 2.2 of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
)

from repro.cq.query import ConjunctiveQuery, Vocabulary
from repro.exceptions import StructureError

Fact = Tuple[str, Tuple]


@dataclass(frozen=True)
class Structure:
    """A finite relational structure (a set database instance).

    Attributes
    ----------
    domain:
        The finite set of domain elements.
    relations:
        Mapping from relation name to the set of tuples of that relation.
        Every tuple must only use elements of ``domain`` and all tuples of a
        relation must have the same arity.
    """

    domain: FrozenSet
    relations: Mapping[str, FrozenSet[Tuple]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "domain", frozenset(self.domain))
        normalized: Dict[str, FrozenSet[Tuple]] = {}
        for name, tuples in self.relations.items():
            frozen = frozenset(tuple(t) for t in tuples)
            arities = {len(t) for t in frozen}
            if len(arities) > 1:
                raise StructureError(
                    f"relation {name!r} has tuples of mixed arities {sorted(arities)}"
                )
            for row in frozen:
                for value in row:
                    if value not in self.domain:
                        raise StructureError(
                            f"relation {name!r} uses value {value!r} outside the domain"
                        )
            normalized[name] = frozen
        object.__setattr__(self, "relations", normalized)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_facts(cls, facts: Iterable[Fact], domain: Iterable = None) -> "Structure":
        """Build a structure from ``(relation, tuple)`` facts.

        When ``domain`` is omitted it is the set of values mentioned in the
        facts (the *active domain*).
        """
        relations: Dict[str, set] = {}
        values = set(domain) if domain is not None else set()
        for name, row in facts:
            row = tuple(row)
            relations.setdefault(name, set()).add(row)
            values.update(row)
        return cls(domain=frozenset(values), relations=relations)

    @classmethod
    def empty(cls, vocabulary: Vocabulary, domain: Iterable = ()) -> "Structure":
        """A structure with empty relations for every vocabulary symbol."""
        return cls(
            domain=frozenset(domain),
            relations={name: frozenset() for name in vocabulary.relations()},
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def tuples(self, relation: str) -> FrozenSet[Tuple]:
        """All tuples of ``relation`` (empty if the relation is absent)."""
        return self.relations.get(relation, frozenset())

    def arity(self, relation: str) -> int:
        """Arity of ``relation``; 0 when the relation is empty or absent."""
        tuples = self.tuples(relation)
        for row in tuples:
            return len(row)
        return 0

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary of non-empty relations of the structure."""
        return Vocabulary(
            {name: self.arity(name) for name in self.relations if self.tuples(name)}
        )

    def total_tuples(self) -> int:
        """Total number of facts across all relations."""
        return sum(len(tuples) for tuples in self.relations.values())

    def facts(self) -> Iterator[Fact]:
        """Iterate over all ``(relation, tuple)`` facts in sorted order."""
        for name in sorted(self.relations):
            for row in sorted(self.tuples(name), key=str):
                yield name, row

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def restrict_vocabulary(self, names: Iterable[str]) -> "Structure":
        """Keep only the relations listed in ``names``."""
        allowed = set(names)
        return Structure(
            domain=self.domain,
            relations={n: t for n, t in self.relations.items() if n in allowed},
        )

    def rename_domain(self, mapping: Mapping) -> "Structure":
        """Apply an injective renaming to the domain elements."""
        image = [mapping.get(v, v) for v in self.domain]
        if len(set(image)) != len(image):
            raise StructureError("domain renaming must be injective")
        return Structure(
            domain=frozenset(image),
            relations={
                name: frozenset(
                    tuple(mapping.get(v, v) for v in row) for row in tuples
                )
                for name, tuples in self.relations.items()
            },
        )

    def disjoint_union(self, other: "Structure") -> "Structure":
        """Disjoint union of two structures (elements tagged 0 / 1).

        ``hom(Q, A ⊎ B)`` relates to homomorphism counts of connected queries
        additively; the operation is mainly used by the workload generators.
        """
        left = self.rename_domain({v: (0, v) for v in self.domain})
        right = other.rename_domain({v: (1, v) for v in other.domain})
        relations: Dict[str, set] = {}
        for name in set(left.relations) | set(right.relations):
            relations[name] = set(left.tuples(name)) | set(right.tuples(name))
        return Structure(
            domain=left.domain | right.domain, relations=relations
        )

    def product(self, other: "Structure") -> "Structure":
        """Categorical product of two structures.

        ``hom(Q, A × B) = hom(Q, A) × hom(Q, B)``, hence
        ``|hom(Q, A × B)| = |hom(Q, A)| · |hom(Q, B)|`` — the standard tool
        for amplifying counting gaps.
        """
        relations: Dict[str, set] = {}
        names = set(self.relations) & set(other.relations)
        for name in names:
            left, right = self.tuples(name), other.tuples(name)
            combined = set()
            for row_a in left:
                for row_b in right:
                    if len(row_a) == len(row_b):
                        combined.add(tuple(zip(row_a, row_b)))
            relations[name] = combined
        domain = frozenset(itertools.product(self.domain, other.domain))
        return Structure(domain=domain, relations=relations)

    def __str__(self) -> str:
        parts = [f"|domain|={len(self.domain)}"]
        for name in sorted(self.relations):
            parts.append(f"{name}:{len(self.tuples(name))}")
        return "Structure(" + ", ".join(parts) + ")"


def canonical_structure(query: ConjunctiveQuery) -> Structure:
    """The canonical structure of a query (variables as domain elements).

    Following Section 2.2 of the paper, a query ``Q`` is identified with the
    structure whose domain is ``vars(Q)`` and whose relation ``R_i`` contains
    the argument tuple of every atom with relation name ``R_i``.
    """
    relations: Dict[str, set] = {}
    for atom in query.atoms:
        relations.setdefault(atom.relation, set()).add(atom.args)
    return Structure(domain=frozenset(query.variables), relations=relations)


@dataclass(frozen=True)
class Relation:
    """A named-attribute relation ``P ⊆ D^V`` (a ``V``-relation).

    Attributes
    ----------
    attributes:
        The tuple of attribute (variable) names ``V`` in a fixed order.
    rows:
        The set of rows; each row is a tuple aligned with ``attributes``.
    """

    attributes: Tuple[str, ...]
    rows: FrozenSet[Tuple]

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if len(set(self.attributes)) != len(self.attributes):
            raise StructureError("relation attributes must be distinct")
        frozen = frozenset(tuple(r) for r in self.rows)
        for row in frozen:
            if len(row) != len(self.attributes):
                raise StructureError(
                    f"row {row!r} does not match attributes {self.attributes!r}"
                )
        object.__setattr__(self, "rows", frozen)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_mappings(
        cls, attributes: Sequence[str], mappings: Iterable[Mapping]
    ) -> "Relation":
        """Build a relation from an iterable of attribute → value mappings."""
        attributes = tuple(attributes)
        rows = {tuple(mapping[a] for a in attributes) for mapping in mappings}
        return cls(attributes=attributes, rows=rows)

    @classmethod
    def product_relation(cls, columns: Mapping[str, Iterable]) -> "Relation":
        """The product relation ``∏_x S_x`` of Definition 3.3.

        ``columns`` maps each attribute to its unary relation ``S_x``; the
        result contains every combination of one value per attribute.
        """
        attributes = tuple(columns)
        value_lists = [sorted(set(columns[a]), key=str) for a in attributes]
        rows = set(itertools.product(*value_lists))
        return cls(attributes=attributes, rows=rows)

    @classmethod
    def step_relation(cls, attributes: Sequence[str], low_part: Iterable[str]) -> "Relation":
        """The two-tuple relation ``P_W`` whose entropy is the step function ``h_W``.

        Following Section 3.2 of the paper: the relation has the two tuples
        ``f1 = (1, ..., 1)`` and ``f2`` which equals 1 on the attributes in
        ``low_part`` (the set ``W``) and 2 elsewhere.
        """
        attributes = tuple(attributes)
        low = frozenset(low_part)
        unknown = low - set(attributes)
        if unknown:
            raise StructureError(f"low_part mentions unknown attributes {sorted(unknown)}")
        f1 = tuple(1 for _ in attributes)
        f2 = tuple(1 if a in low else 2 for a in attributes)
        return cls(attributes=attributes, rows={f1, f2})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    @property
    def attribute_set(self) -> FrozenSet[str]:
        return frozenset(self.attributes)

    def column_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the attribute tuple."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise StructureError(f"unknown attribute {attribute!r}") from exc

    def as_mappings(self) -> Iterator[Dict[str, object]]:
        """Iterate over rows as attribute → value dictionaries."""
        for row in self.rows:
            yield dict(zip(self.attributes, row))

    def active_domain(self) -> FrozenSet:
        """All values appearing anywhere in the relation."""
        return frozenset(value for row in self.rows for value in row)

    # ------------------------------------------------------------------ #
    # Relational algebra
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[str]) -> "Relation":
        """Standard projection ``Π_X(P)`` onto the listed attributes."""
        attributes = tuple(attributes)
        indices = [self.column_index(a) for a in attributes]
        rows = {tuple(row[i] for i in indices) for row in self.rows}
        return Relation(attributes=attributes, rows=rows)

    def select_equal(self, attribute: str, value) -> "Relation":
        """Selection ``σ_{attribute = value}(P)``."""
        index = self.column_index(attribute)
        rows = {row for row in self.rows if row[index] == value}
        return Relation(attributes=self.attributes, rows=rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on the shared attributes."""
        shared = [a for a in self.attributes if a in other.attribute_set]
        other_only = [a for a in other.attributes if a not in self.attribute_set]
        result_attrs = self.attributes + tuple(other_only)
        self_idx = [self.column_index(a) for a in shared]
        other_idx = [other.column_index(a) for a in shared]
        other_only_idx = [other.column_index(a) for a in other_only]

        buckets: Dict[Tuple, list] = {}
        for row in other.rows:
            key = tuple(row[i] for i in other_idx)
            buckets.setdefault(key, []).append(row)
        rows = set()
        for row in self.rows:
            key = tuple(row[i] for i in self_idx)
            for match in buckets.get(key, ()):
                rows.add(row + tuple(match[i] for i in other_only_idx))
        return Relation(attributes=result_attrs, rows=rows)

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ``P ⋉ other``: rows of ``P`` that join with ``other``."""
        shared = [a for a in self.attributes if a in other.attribute_set]
        if not shared:
            return self if other.rows else Relation(self.attributes, frozenset())
        self_idx = [self.column_index(a) for a in shared]
        other_keys = {tuple(row[other.column_index(a)] for a in shared) for row in other.rows}
        rows = {
            row for row in self.rows if tuple(row[i] for i in self_idx) in other_keys
        }
        return Relation(attributes=self.attributes, rows=rows)

    def domain_product(self, other: "Relation") -> "Relation":
        """The domain product ``P ⊗ P'`` of Definition B.1.

        Both relations must have the same attributes.  Each output row pairs
        the values of one row of ``self`` with one row of ``other``
        component-wise; the entropy of the result is the sum of the two
        entropies.
        """
        if set(self.attributes) != set(other.attribute_set):
            raise StructureError("domain_product requires identical attribute sets")
        other_perm = [other.column_index(a) for a in self.attributes]
        rows = set()
        for row_a in self.rows:
            for row_b in other.rows:
                rows.add(
                    tuple((row_a[i], row_b[other_perm[i]]) for i in range(len(row_a)))
                )
        return Relation(attributes=self.attributes, rows=rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes (missing keys unchanged)."""
        return Relation(
            attributes=tuple(mapping.get(a, a) for a in self.attributes),
            rows=self.rows,
        )

    def is_totally_uniform(self) -> bool:
        """Check Definition 4.5: every marginal of the uniform distribution is uniform.

        Equivalently: for every subset ``X`` of attributes, every tuple of
        ``Π_X(P)`` has the same number of extensions to a full row.
        """
        from repro.utils.subsets import nonempty_subsets

        for subset in nonempty_subsets(self.attributes):
            indices = [self.column_index(a) for a in subset]
            counts: Dict[Tuple, int] = {}
            for row in self.rows:
                key = tuple(row[i] for i in indices)
                counts[key] = counts.get(key, 0) + 1
            if len(set(counts.values())) > 1:
                return False
        return True

    def __str__(self) -> str:
        return f"Relation({', '.join(self.attributes)}; {len(self.rows)} rows)"
