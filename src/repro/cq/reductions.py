"""Query and database reductions from Appendix A of the paper.

Three reductions live here:

* :func:`to_boolean_pair` — Lemma A.1: containment of queries with head
  variables reduces to containment of Boolean queries by adding a fresh unary
  atom ``U_i(x_i)`` per head variable.  The reduction preserves acyclicity,
  chordality and simplicity.
* :func:`bag_bag_to_bag_set` — the folklore reduction from bag-bag to bag-set
  containment: every relation gets one extra attribute holding a fresh
  existential "tuple identifier" variable per atom.
* :func:`saturate_query` / :func:`saturate_database` /
  :func:`desaturate_database` — Fact A.3: enrich the vocabulary with
  projection relations ``R_S`` so that the sub-query at every bag of a tree
  decomposition covers the bag.  The database transformations implement the
  two directions of the proof, which together transfer witnesses between the
  original and the saturated vocabularies.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Tuple

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure
from repro.exceptions import ReductionError


# ---------------------------------------------------------------------- #
# Lemma A.1: reduction to Boolean queries
# ---------------------------------------------------------------------- #
def head_relation_name(index: int, prefix: str = "U") -> str:
    """The fresh unary relation name guarding the ``index``-th head variable."""
    return f"__{prefix}{index}"


def to_boolean_pair(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Reduce containment with head variables to Boolean containment.

    Following Lemma A.1, the two queries must have the same number of head
    variables; the heads are aligned positionally and each position ``i``
    receives a fresh unary atom ``U_i`` on the corresponding head variable.
    ``Q1 ⊑ Q2`` holds iff the returned Boolean pair is contained.
    """
    if len(q1.head) != len(q2.head):
        raise ReductionError(
            "queries must have the same number of head variables"
        )
    if q1.is_boolean:
        return q1, q2
    used = {atom.relation for atom in q1.atoms} | {atom.relation for atom in q2.atoms}

    def guard(query: ConjunctiveQuery) -> ConjunctiveQuery:
        atoms = list(query.atoms)
        for index, variable in enumerate(query.head):
            name = head_relation_name(index)
            if name in used:
                raise ReductionError(f"relation name {name!r} already in use")
            atoms.append(Atom(name, (variable,)))
        return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=query.name + "_bool")

    return guard(q1), guard(q2)


def boolean_pair_database(
    database: Structure, head_values: Tuple, head_count: int
) -> Structure:
    """Extend ``database`` with singleton unary relations ``U_i = {d_i}``.

    This is the database transformation of the ⇐ direction of Lemma A.1: the
    multiplicity of the head tuple ``d`` in ``Q(D)`` equals the homomorphism
    count of the Boolean query on the extended database.
    """
    if len(head_values) != head_count:
        raise ReductionError("head tuple length mismatch")
    relations = {name: set(tuples) for name, tuples in database.relations.items()}
    for index in range(head_count):
        relations[head_relation_name(index)] = {(head_values[index],)}
    return Structure(
        domain=database.domain | frozenset(head_values), relations=relations
    )


# ---------------------------------------------------------------------- #
# Bag-bag to bag-set semantics
# ---------------------------------------------------------------------- #
def bag_bag_to_bag_set(query: ConjunctiveQuery, suffix: str = "_bb") -> ConjunctiveQuery:
    """The bag-bag → bag-set reduction (Section 2.2, citing [16]).

    Every relation ``R`` of arity ``a`` is replaced by a relation ``R + suffix``
    of arity ``a + 1``; every atom receives a distinct fresh existential
    variable in the new position, which ranges over the tuple identifiers of
    the bag database.  Repeated atoms of the original query become distinct
    atoms of the result, so bag-bag multiplicity is preserved.
    """
    atoms = []
    for index, atom in enumerate(query.atoms):
        fresh = f"__tid_{index}"
        if fresh in query.variables:
            raise ReductionError(f"variable {fresh!r} already used by the query")
        atoms.append(Atom(atom.relation + suffix, atom.args + (fresh,)))
    return ConjunctiveQuery(atoms=tuple(atoms), head=query.head, name=query.name + suffix)


def bag_database_to_set_database(
    relations_with_multiplicity: Dict[str, Dict[Tuple, int]], suffix: str = "_bb"
) -> Structure:
    """Encode a bag database as a set database with tuple identifiers.

    ``relations_with_multiplicity`` maps each relation name to a mapping from
    tuple to multiplicity; each copy of a tuple receives a distinct
    identifier value appended as the final attribute.
    """
    facts = []
    for name, tuples in relations_with_multiplicity.items():
        for row, multiplicity in tuples.items():
            if multiplicity < 0:
                raise ReductionError("multiplicities must be non-negative")
            for copy in range(multiplicity):
                facts.append((name + suffix, tuple(row) + ((name, row, copy),)))
    return Structure.from_facts(facts)


# ---------------------------------------------------------------------- #
# Fact A.3: projection saturation
# ---------------------------------------------------------------------- #
def projection_relation_name(relation: str, positions: Tuple[int, ...]) -> str:
    """Name of the projection relation ``R_S`` for ``S = positions``."""
    return f"{relation}__proj_{'_'.join(str(p) for p in positions)}"


def _proper_position_subsets(arity: int) -> Iterable[Tuple[int, ...]]:
    """Non-empty proper subsets of ``[0, arity)`` in a deterministic order."""
    for size in range(1, arity):
        yield from itertools.combinations(range(arity), size)


def saturate_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Add projection atoms ``R_S(x_S)`` for every atom and proper subset ``S``.

    After saturation, for every atom ``A`` and every subset of its positions
    there is an atom on exactly those variables, which guarantees the
    property of Fact A.3: the sub-query at any bag of a tree decomposition
    has the bag as its variable set.  The Gaifman graph (hence chordality,
    simplicity and acyclicity of the decompositions used in the paper) is
    unchanged because no new co-occurrences are introduced.
    """
    atoms = list(query.atoms)
    seen = set(query.atoms)
    for atom in query.atoms:
        for positions in _proper_position_subsets(atom.arity):
            new_atom = Atom(
                projection_relation_name(atom.relation, positions),
                tuple(atom.args[p] for p in positions),
            )
            if new_atom not in seen:
                seen.add(new_atom)
                atoms.append(new_atom)
    return ConjunctiveQuery(atoms=tuple(atoms), head=query.head, name=query.name + "_sat")


def saturate_database(database: Structure, vocabulary=None) -> Structure:
    """Extend ``database`` with the projections ``R_S^D = Π_S(R^D)``.

    This is the ⇐-direction construction of Fact A.3: homomorphism counts of
    the original queries on ``database`` coincide with those of the saturated
    queries on the saturated database.
    """
    relations: Dict[str, set] = {
        name: set(tuples) for name, tuples in database.relations.items()
    }
    for name in list(database.relations):
        tuples = database.tuples(name)
        if not tuples:
            continue
        arity = database.arity(name)
        for positions in _proper_position_subsets(arity):
            projected = {tuple(row[p] for p in positions) for row in tuples}
            relations[projection_relation_name(name, positions)] = projected
    return Structure(domain=database.domain, relations=relations)


def desaturate_database(database: Structure, base_vocabulary) -> Structure:
    """Convert a database over the saturated vocabulary back to the base one.

    This is the ⇒-direction construction of Fact A.3: every base relation
    ``R^D`` is replaced by its semijoin with the join of its projection
    relations, i.e. only tuples whose every projection is present in the
    corresponding ``R_S`` survive.  Homomorphism counts of the saturated
    queries on ``database`` equal those of the base queries on the result,
    which is how witnesses of non-containment are transported back.
    """
    relations: Dict[str, set] = {}
    for name in base_vocabulary.relations():
        arity = base_vocabulary.arity(name)
        surviving = set()
        for row in database.tuples(name):
            keep = True
            for positions in _proper_position_subsets(arity):
                projection_name = projection_relation_name(name, positions)
                projected = tuple(row[p] for p in positions)
                if projected not in database.tuples(projection_name):
                    keep = False
                    break
            if keep:
                surviving.add(row)
        relations[name] = surviving
    domain = set()
    for tuples in relations.values():
        for row in tuples:
            domain.update(row)
    if not domain:
        domain = set(database.domain) or {0}
    return Structure(domain=frozenset(domain), relations=relations)
