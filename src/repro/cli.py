"""Command-line interface.

Eight sub-commands expose the main workflows::

    python -m repro contain "R(x,y), R(y,z), R(z,x)" "R(a,b), R(a,c)"
    python -m repro inspect "A(y1,y2), B(y1,y3), C(y4,y2)"
    python -m repro dominate --base "R:0,1;1,2;2,0" --dominating "R:a,b;a,c"
    python -m repro batch pairs.txt --jobs 4 --stats --trace spans.jsonl
    python -m repro trace summarize spans.jsonl
    python -m repro daemon start --jobs 4 --store verdicts.sqlite
    python -m repro batch pairs.txt --daemon
    python -m repro daemon status --prom
    python -m repro soak --clients 4 --qps 8 --duration 60 --report soak.json
    python -m repro cache verify --store verdicts.sqlite

``contain`` decides bag containment and prints the verdict, the decision
method and (for refutations) the witness database.  ``inspect`` reports the
structural properties that determine which fragment of the paper a query
falls into.  ``dominate`` runs the DOM problem on two structures given in a
compact facts syntax (``Rel:v1,v2;v1,v3 Rel2:...``).  ``batch`` reads a file
of query pairs and decides them all through the batch containment service,
emitting one JSON verdict per line; ``--trace FILE`` exports a span trace
of the run and ``trace summarize`` turns such a file into per-phase totals,
the critical path and the slowest pairs.  ``daemon`` manages the persistent
containment daemon (``start``/``run``/``stop``/``status``): a long-lived
process whose plan cache and warm provers survive across ``batch --daemon``
invocations (see :mod:`repro.service.daemon`); ``status --prom`` prints its
Prometheus metrics exposition.  ``soak`` drives a daemon (an ephemeral one
by default) with the endless mixed workload from several paced clients and
reports throughput, latency percentiles, the cache hit-rate trajectory and
verdict parity (see :mod:`repro.obs.soak`).  ``cache`` operates on the
durable verdict store written by ``batch --store`` / ``daemon --store``
(see :mod:`repro.store`): ``verify`` independently re-checks every stored
certificate and witness, ``export``/``import`` move records as JSONL,
``compact`` rewrites the append-only log to one row per verdict, and
``info`` prints the store's summary.

The ``batch`` input format is one pair per line, either as the two query
bodies separated by ``|``::

    R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)

or as a JSON object ``{"q1": "...", "q2": "..."}``.  Blank lines and lines
starting with ``#`` are ignored.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core.containment import decide_containment
from repro.core.domination import dominates
from repro.cq.decompositions import (
    has_simple_junction_tree,
    has_totally_disconnected_junction_tree,
    is_acyclic,
    is_chordal,
)
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import Structure
from repro.exceptions import ReproError
from repro.obs import tracer as obs_tracer
from repro.service import BatchOptions, ContainmentService
from repro.service.daemon import (
    DaemonClient,
    DaemonUnavailable,
    ShedOptions,
    default_socket_path,
    serve,
    spawn_daemon,
    stop_daemon,
)
from repro.service.engine import WORKER_MODES
from repro.service.fleet import (
    fleet_metrics,
    fleet_status,
    serve_gateway,
    start_fleet,
    stop_fleet,
)
from repro.service.protocol import PRIORITIES, SHED_POLICIES, parse_address
from repro.service.ring import DEFAULT_VNODES


def _parse_structure(text: str) -> Structure:
    """Parse the compact facts syntax ``Rel:v1,v2;v3,v4 Rel2:v5``."""
    facts = []
    for block in text.split():
        if ":" not in block:
            raise ReproError(f"cannot parse structure block {block!r}")
        relation, rows_text = block.split(":", 1)
        for row_text in rows_text.split(";"):
            if not row_text:
                continue
            facts.append((relation, tuple(value.strip() for value in row_text.split(","))))
    if not facts:
        raise ReproError("the structure has no facts")
    return Structure.from_facts(facts)


def _print_result(result, out) -> None:
    print(f"verdict : {result.status.value}", file=out)
    print(f"method  : {result.method}", file=out)
    if result.inequality is not None and not result.inequality.is_trivially_false:
        print(f"branches: {len(result.inequality.branches)}", file=out)
    if result.witness is not None:
        witness = result.witness
        print(
            f"witness : |hom(Q1,D)| = {witness.hom_q1} > |hom(Q2,D)| = {witness.hom_q2}",
            file=out,
        )
        for relation, row in witness.database.facts():
            print(f"    {relation}{row}", file=out)


def _cmd_contain(args, out) -> int:
    q1 = parse_query(args.q1, name="Q1")
    q2 = parse_query(args.q2, name="Q2")
    result = decide_containment(
        q1,
        q2,
        method=args.method,
        lp_method=args.lp_method,
        lp_backend=args.lp_backend,
    )
    _print_result(result, out)
    return 0 if result.status.value != "unknown" else 2


def _cmd_inspect(args, out) -> int:
    query = parse_query(args.query, name="Q")
    print(f"query     : {query}", file=out)
    print(f"variables : {len(query.variables)}", file=out)
    print(f"atoms     : {len(query.atoms)}", file=out)
    print(f"acyclic   : {is_acyclic(query)}", file=out)
    chordal = is_chordal(query)
    print(f"chordal   : {chordal}", file=out)
    if chordal:
        print(f"simple junction tree : {has_simple_junction_tree(query)}", file=out)
        print(
            f"totally disconnected : {has_totally_disconnected_junction_tree(query)}",
            file=out,
        )
    return 0


def _cmd_dominate(args, out) -> int:
    base = _parse_structure(args.base)
    dominating = _parse_structure(args.dominating)
    result = dominates(base, dominating)
    _print_result(result, out)
    return 0 if result.status.value != "unknown" else 2


def _parse_pair_line(
    line: str, line_number: int
) -> Tuple[Tuple[ConjunctiveQuery, ConjunctiveQuery], Tuple[str, str]]:
    """Parse one ``batch`` input line (``Q1 | Q2`` or a JSON object).

    Returns the parsed pair together with the raw body texts (the daemon
    path re-sends the texts over the wire; parsing here still validates them
    client-side first).
    """
    if line.lstrip().startswith("{"):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"line {line_number}: invalid JSON ({error})") from None
        if not isinstance(record, dict) or "q1" not in record or "q2" not in record:
            raise ReproError(f"line {line_number}: JSON pairs need 'q1' and 'q2' keys")
        q1_text, q2_text = record["q1"], record["q2"]
        if not isinstance(q1_text, str) or not isinstance(q2_text, str):
            raise ReproError(
                f"line {line_number}: 'q1' and 'q2' must be query strings"
            )
    else:
        parts = line.split("|")
        if len(parts) != 2:
            raise ReproError(
                f"line {line_number}: expected 'Q1 | Q2' (exactly one '|' separator)"
            )
        q1_text, q2_text = parts
    q1_text, q2_text = q1_text.strip(), q2_text.strip()
    pair = (
        parse_query(q1_text, name=f"Q1@{line_number}"),
        parse_query(q2_text, name=f"Q2@{line_number}"),
    )
    return pair, (q1_text, q2_text)


def _read_pairs(
    path: str,
) -> Tuple[List[Tuple[ConjunctiveQuery, ConjunctiveQuery]], List[Tuple[str, str]]]:
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    pairs = []
    texts = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        pair, pair_texts = _parse_pair_line(stripped, line_number)
        pairs.append(pair)
        texts.append(pair_texts)
    if not pairs:
        raise ReproError("the batch input contains no query pairs")
    return pairs, texts


def _batch_exit_code(statuses: Sequence[str]) -> int:
    return 0 if all(status != "unknown" for status in statuses) else 2


def _print_group_table(groups, stream) -> None:
    """The per-arity block-LP timing table (``stats["groups"]``) for humans."""
    if not groups:
        return
    print(
        f"{'group':<16} {'chunks':>7} {'requests':>9} {'rows':>7} {'seconds':>9}",
        file=stream,
    )
    for key in sorted(groups):
        bucket = groups[key]
        print(
            f"{key:<16} {int(bucket['chunks']):>7} {int(bucket['requests']):>9} "
            f"{int(bucket['rows']):>7} {bucket['seconds']:>9.4f}",
            file=stream,
        )


def _emit_batch_stats(stats, args) -> None:
    """Honour ``--stats`` (stderr JSON + group table) and ``--stats-json``."""
    if args.stats:
        # Table first, JSON last: scripted consumers parse the *last* stderr
        # line as the stats record (see tests/integration/test_daemon_e2e.py).
        _print_group_table(stats.get("groups") or {}, sys.stderr)
        print(json.dumps({"stats": stats}), file=sys.stderr)
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2)
            handle.write("\n")


#: Engine flags the batch subparser accepts but a daemon cannot honour per
#: request (it decides with the configuration it was started with):
#: (args attribute, parser default, flag spelling).
_DAEMON_SIDE_FLAGS = (
    ("method", "auto", "--method"),
    ("lp_method", "auto", "--lp-method"),
    ("lp_backend", "auto", "--lp-backend"),
    ("chunk_size", 32, "--chunk-size"),
    ("jobs", 1, "--jobs"),
    ("worker_mode", "auto", "--worker-mode"),
    ("budget", None, "--budget"),
    ("store", None, "--store"),
)


def _batch_via_daemon(args, pairs, texts, out) -> Optional[int]:
    """Decide the batch through a daemon; None means "fall back in-process"."""
    overridden = [
        flag
        for attribute, default, flag in _DAEMON_SIDE_FLAGS
        if getattr(args, attribute) != default
    ]
    if overridden:
        print(
            f"note: {', '.join(overridden)} configure the engine and are ignored "
            "with --daemon — the daemon decides with the settings it was started "
            "with (they apply again if this request falls back in-process)",
            file=sys.stderr,
        )
    address = args.daemon if args.daemon else None
    client = DaemonClient(address)
    try:
        response = client.batch(
            texts, deadline_seconds=args.deadline, priority=args.priority
        )
    except DaemonUnavailable as error:
        if args.daemon_only:
            raise
        print(
            f"note: {error}; deciding in-process instead", file=sys.stderr
        )
        return None
    if not response.ok:
        # The daemon answered but shed the request (queue-full under the
        # reject policy) — an explicit overload answer, not an outage, so
        # no silent in-process fallback that would defeat the shedding.
        print(f"error: daemon refused the batch: {response.error}", file=out)
        return 3
    for verdict, (q1, q2) in zip(response.verdicts, pairs):
        record = {
            "index": verdict.index,
            "status": verdict.status,
            "method": verdict.method,
            "source": verdict.source,
            "q1": str(q1),
            "q2": str(q2),
        }
        if verdict.witness_rows is not None:
            record["witness_rows"] = verdict.witness_rows
        print(json.dumps(record), file=out)
    _emit_batch_stats(response.stats, args)
    return _batch_exit_code([verdict.status for verdict in response.verdicts])


def _cmd_batch(args, out) -> int:
    if args.fleet is not None:
        if args.daemon is not None:
            print("error: --fleet and --daemon are mutually exclusive", file=out)
            return 2
        # The gateway speaks the daemon protocol, so --fleet is --daemon
        # pointed at the gateway — minus the in-process fallback: a fleet
        # outage should be loud, not silently absorbed by one local solve.
        args.daemon = args.fleet
        args.daemon_only = True
    pairs, texts = _read_pairs(args.pairs_file)
    if args.daemon is not None:
        if args.trace:
            print(
                "note: --trace applies to in-process solving only; the daemon "
                "decides remotely and its spans are not exported here",
                file=sys.stderr,
            )
        code = _batch_via_daemon(args, pairs, texts, out)
        if code is not None:
            return code
    service = ContainmentService(
        BatchOptions(
            method=args.method,
            chunk_size=args.chunk_size,
            max_workers=args.jobs,
            pair_budget=args.budget,
            on_error="capture",
            lp_method=args.lp_method,
            lp_backend=args.lp_backend,
            worker_mode=args.worker_mode,
            deadline=args.deadline,
            store_path=args.store,
        )
    )
    tracer = None
    if args.trace:
        tracer = obs_tracer.activate(obs_tracer.Tracer())
    try:
        report = service.run(pairs)
    finally:
        service.close()
        if tracer is not None:
            obs_tracer.deactivate()
            spans = tracer.export_jsonl(args.trace)
            print(f"trace: wrote {spans} spans to {args.trace}", file=sys.stderr)
    for outcome, (q1, q2) in zip(report.outcomes, pairs):
        record = {
            "index": outcome.index,
            "status": outcome.result.status.value,
            "method": outcome.result.method,
            "source": outcome.source,
            "q1": str(q1),
            "q2": str(q2),
        }
        if outcome.result.witness is not None:
            record["witness_rows"] = sum(
                1 for _ in outcome.result.witness.database.facts()
            )
        print(json.dumps(record), file=out)
    _emit_batch_stats(report.stats, args)
    return _batch_exit_code(
        [outcome.result.status.value for outcome in report.outcomes]
    )


# ---------------------------------------------------------------------- #
# Daemon management
# ---------------------------------------------------------------------- #
def _daemon_options(args) -> BatchOptions:
    return BatchOptions(
        method=args.method,
        chunk_size=args.chunk_size,
        max_workers=args.jobs,
        pair_budget=args.budget,
        on_error="capture",
        lp_method=args.lp_method,
        lp_backend=args.lp_backend,
        worker_mode=args.worker_mode,
        store_path=args.store,
    )


def _daemon_shed(args) -> ShedOptions:
    return ShedOptions(
        max_queue_depth=args.max_queue_depth,
        policy=args.shed_policy,
        degrade_pair_budget=args.degrade_budget,
        default_deadline=args.default_deadline,
    )


def _daemon_run_args(args) -> List[str]:
    """Re-serialize the engine/shedding flags for the detached child."""
    forwarded = [
        "--method", args.method,
        "--lp-method", args.lp_method,
        "--lp-backend", args.lp_backend,
        "--worker-mode", args.worker_mode,
        "--chunk-size", str(args.chunk_size),
        "--jobs", str(args.jobs),
        "--shed-policy", args.shed_policy,
        "--degrade-budget", str(args.degrade_budget),
    ]
    if args.budget is not None:
        forwarded += ["--budget", str(args.budget)]
    if args.store is not None:
        forwarded += ["--store", args.store]
    if args.max_queue_depth is not None:
        forwarded += ["--max-queue-depth", str(args.max_queue_depth)]
    if args.default_deadline is not None:
        forwarded += ["--default-deadline", str(args.default_deadline)]
    return forwarded


def _cmd_daemon_run(args, out) -> int:
    address = parse_address(args.socket)

    def announce(daemon):
        print(f"daemon pid {daemon.status()['pid']} serving at {address}", file=out)
        if out is sys.stdout:
            out.flush()

    serve(
        address,
        options=_daemon_options(args),
        shed=_daemon_shed(args),
        ready_callback=announce,
        warmup=args.warmup,
    )
    print("daemon stopped", file=out)
    return 0


def _cmd_daemon_start(args, out) -> int:
    pid = spawn_daemon(
        args.socket,
        extra_args=_daemon_run_args(args),
        log_path=args.log,
    )
    print(f"daemon started: pid {pid}, address {args.socket}", file=out)
    return 0


def _cmd_daemon_stop(args, out) -> int:
    stop_daemon(args.socket)
    print(f"daemon at {args.socket} stopped", file=out)
    return 0


def _cmd_daemon_status(args, out) -> int:
    client = DaemonClient(args.socket)
    if args.prom:
        print(client.metrics(), end="", file=out)
        return 0
    status = client.status()
    status.pop("ok", None)
    status.pop("protocol", None)
    print(json.dumps(status, indent=2, sort_keys=True), file=out)
    return 0


# ---------------------------------------------------------------------- #
# Fleet management
# ---------------------------------------------------------------------- #
def _cmd_fleet_start(args, out) -> int:
    if args.store is not None:
        print(
            "error: --store is per-replica in a fleet and is derived from "
            "--dir; remove the flag",
            file=out,
        )
        return 2
    manifest = start_fleet(
        directory=args.dir,
        replicas=args.replicas,
        gateway_address=args.socket,
        engine_args=_daemon_run_args(args),
        probe_interval=args.probe_interval,
        verify_every=args.verify_every,
        ring_vnodes=args.ring_vnodes,
        dispatch_parallelism=args.dispatch_parallelism,
    )
    gateway = manifest["gateway"]
    print(
        f"fleet started: {len(manifest['replicas'])} replicas behind "
        f"gateway {gateway['address']} (pid {gateway['pid']})",
        file=out,
    )
    for entry in manifest["replicas"]:
        print(
            f"  {entry['name']}: pid {entry['pid']}, address "
            f"{entry['address']}, store {entry['store']}",
            file=out,
        )
    return 0


def _cmd_fleet_stop(args, out) -> int:
    summary = stop_fleet(args.dir)
    print(json.dumps(summary, indent=2, sort_keys=True), file=out)
    return 0


def _cmd_fleet_status(args, out) -> int:
    if args.prom:
        print(
            fleet_metrics(address=args.socket, directory=args.dir),
            end="",
            file=out,
        )
        return 0
    status = fleet_status(address=args.socket, directory=args.dir)
    status.pop("ok", None)
    status.pop("protocol", None)
    print(json.dumps(status, indent=2, sort_keys=True), file=out)
    return 0


def _cmd_fleet_gateway(args, out) -> int:
    def announce(gateway):
        print(
            f"gateway pid {os.getpid()} serving {gateway.status()['fleet_size']} "
            f"replicas at {gateway.address}",
            file=out,
        )
        if out is sys.stdout:
            out.flush()

    serve_gateway(args.manifest, address=args.socket, ready_callback=announce)
    print("gateway stopped", file=out)
    return 0


# ---------------------------------------------------------------------- #
# Durable verdict store operations
# ---------------------------------------------------------------------- #
def _cmd_cache_info(args, out) -> int:
    from repro.store import VerdictStore

    with VerdictStore(args.store) as store:
        print(json.dumps(store.info(), indent=2, sort_keys=True), file=out)
    return 0


def _cmd_cache_verify(args, out) -> int:
    from repro.store import VerdictStore, verify_store

    with VerdictStore(args.store) as store:
        report = verify_store(store, farkas_backend=args.lp_backend)
        dropped = store.dropped
    print(
        f"checked {report.checked} records: {report.certificates} certificates, "
        f"{report.witnesses} witnesses, {report.unchecked} unchecked"
        + (f" ({dropped} torn log rows dropped on open)" if dropped else ""),
        file=out,
    )
    for hash_, reason in report.failures:
        print(f"FAIL {hash_}: {reason}", file=out)
    if report.failures:
        print(f"error: {len(report.failures)} records failed verification", file=out)
        return 1
    return 0


def _cmd_cache_export(args, out) -> int:
    from repro.store import VerdictStore

    with VerdictStore(args.store) as store:
        if args.output == "-":
            count = store.export_jsonl(out)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                count = store.export_jsonl(handle)
    print(f"exported {count} records", file=sys.stderr)
    return 0


def _cmd_cache_import(args, out) -> int:
    from repro.store import VerdictStore

    with VerdictStore(args.store) as store:
        if args.input == "-":
            imported, skipped = store.import_jsonl(sys.stdin)
        else:
            with open(args.input, "r", encoding="utf-8") as handle:
                imported, skipped = store.import_jsonl(handle)
    print(f"imported {imported} records, skipped {skipped} already present", file=out)
    return 0


def _cmd_cache_compact(args, out) -> int:
    from repro.store import VerdictStore

    with VerdictStore(args.store) as store:
        removed = store.compact()
        entries = len(store)
    print(f"compacted: {entries} records kept, {removed} superseded rows removed", file=out)
    return 0


def _cmd_trace_summarize(args, out) -> int:
    from repro.obs.trace_tools import format_summary, summarize
    from repro.obs.tracer import read_spans_jsonl

    summary = summarize(read_spans_jsonl(args.trace_file), top=args.top)
    if args.json:
        print(json.dumps(summary, indent=2), file=out)
    else:
        print(format_summary(summary), file=out)
    return 0


def _cmd_soak(args, out) -> int:
    from repro.obs.soak import SoakOptions, format_report, run_soak, write_report

    report = run_soak(
        SoakOptions(
            clients=args.clients,
            qps=args.qps,
            duration_seconds=args.duration,
            address=args.socket,
            seed=args.seed,
            deadline_seconds=args.deadline,
            priority=args.priority,
            check_parity=not args.no_parity,
        )
    )
    print(format_report(report), file=out)
    if args.report:
        write_report(report, args.report)
        print(f"report: {args.report}", file=out)
    parity = report.get("parity")
    if parity is not None and not parity["ok"]:
        return 4
    return 0 if not report["requests_errored"] else 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bag query containment via information theory (PODS 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    contain = subparsers.add_parser("contain", help="decide Q1 ⊑ Q2 under bag semantics")
    contain.add_argument("q1", help="the contained query, e.g. 'R(x,y), R(y,z)'")
    contain.add_argument("q2", help="the containing query")
    contain.add_argument(
        "--method",
        default="auto",
        choices=["auto", "theorem-3.1", "sufficient", "brute-force"],
    )
    contain.add_argument(
        "--lp-method",
        default="auto",
        choices=["auto", "dense", "rowgen"],
        help="Γn LP path: full elemental matrix vs lazy row generation (default auto)",
    )
    contain.add_argument(
        "--lp-backend",
        default="auto",
        choices=["auto", "scipy", "highs", "scipy-incremental"],
        help=(
            "LP solver backend: scipy's one-shot HiGHS vs the native incremental "
            "highspy driver (default auto = highs when installed, else scipy)"
        ),
    )
    contain.set_defaults(handler=_cmd_contain)

    inspect = subparsers.add_parser("inspect", help="report a query's structural class")
    inspect.add_argument("query")
    inspect.set_defaults(handler=_cmd_inspect)

    dominate = subparsers.add_parser("dominate", help="decide structure domination (DOM)")
    dominate.add_argument("--base", required=True, help="structure A in 'R:0,1;1,2' syntax")
    dominate.add_argument("--dominating", required=True, help="structure B")
    dominate.set_defaults(handler=_cmd_dominate)

    batch = subparsers.add_parser(
        "batch",
        help="decide a file of query pairs through the batch service (JSONL out)",
    )
    batch.add_argument(
        "pairs_file",
        help="path to the pairs file ('-' for stdin); one 'Q1 | Q2' or JSON pair per line",
    )
    _add_engine_arguments(batch)
    batch.add_argument(
        "--daemon",
        nargs="?",
        const="",
        default=None,
        metavar="ADDRESS",
        help=(
            "send the batch to a running containment daemon instead of solving "
            "in-process (socket path or host:port; no value = the default "
            f"socket, {default_socket_path()}).  Falls back to in-process "
            "solving when no daemon is reachable."
        ),
    )
    batch.add_argument(
        "--daemon-only",
        action="store_true",
        help="with --daemon: fail instead of falling back when no daemon answers",
    )
    batch.add_argument(
        "--fleet",
        default=None,
        metavar="ADDRESS",
        help=(
            "send the batch to a fleet gateway (see 'repro fleet start'); the "
            "gateway speaks the daemon protocol, so this is --daemon pointed "
            "at the gateway, without the in-process fallback"
        ),
    )
    batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        help=(
            "wall-clock deadline in seconds for the whole batch (daemon: queue "
            "wait included); undecided pairs report unknown/deadline-exceeded"
        ),
    )
    batch.add_argument(
        "--priority",
        default="normal",
        choices=list(PRIORITIES),
        help="daemon queue priority of this request (default normal)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print service statistics as JSON plus the per-arity block-LP "
            "timing table to stderr after the verdicts"
        ),
    )
    batch.add_argument(
        "--stats-json",
        default=None,
        metavar="FILE",
        help="also write the full stats snapshot (group timings included) to FILE",
    )
    batch.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record a span trace of the run (admission, canonicalization, "
            "plan cache, LP chunks, row-generation rounds) and export it as "
            "JSONL to FILE; summarize with 'repro trace summarize FILE'"
        ),
    )
    batch.set_defaults(handler=_cmd_batch)

    trace = subparsers.add_parser(
        "trace", help="tools over span traces exported by 'batch --trace'"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase totals, the critical path and the slowest pairs",
    )
    trace_summarize.add_argument("trace_file", help="a JSONL span file from --trace")
    trace_summarize.add_argument(
        "--top", type=int, default=5, help="how many slowest pairs to list (default 5)"
    )
    trace_summarize.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of text"
    )
    trace_summarize.set_defaults(handler=_cmd_trace_summarize)

    soak = subparsers.add_parser(
        "soak",
        help="drive a daemon with the mixed stream workload and report qps/latency",
    )
    soak.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads (default 4)"
    )
    soak.add_argument(
        "--qps",
        type=float,
        default=8.0,
        help="aggregate offered request rate across all clients (default 8)",
    )
    soak.add_argument(
        "--duration", type=float, default=60.0, help="soak length in seconds (default 60)"
    )
    soak.add_argument(
        "--socket",
        default=None,
        metavar="ADDRESS",
        help=(
            "daemon to drive (socket path or host:port); default: spin up an "
            "ephemeral in-process daemon for the run"
        ),
    )
    soak.add_argument("--seed", type=int, default=0, help="workload stream seed")
    soak.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds (daemon semantics: queue wait included)",
    )
    soak.add_argument(
        "--priority", default="normal", choices=list(PRIORITIES), help="request priority"
    )
    soak.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the post-run in-process verdict parity check",
    )
    soak.add_argument(
        "--report", default=None, metavar="FILE", help="write the full JSON report to FILE"
    )
    soak.set_defaults(handler=_cmd_soak)

    daemon = subparsers.add_parser(
        "daemon",
        help="manage the persistent containment daemon (warm caches across runs)",
    )
    daemon_commands = daemon.add_subparsers(dest="daemon_command", required=True)

    def add_address(sub):
        sub.add_argument(
            "--socket",
            default=default_socket_path(),
            metavar="ADDRESS",
            help=(
                "daemon endpoint: a Unix socket path, or host:port for the "
                f"localhost TCP fallback (default {default_socket_path()})"
            ),
        )

    run = daemon_commands.add_parser(
        "run", help="run a daemon in the foreground until 'repro daemon stop'"
    )
    add_address(run)
    run.add_argument(
        "--warmup",
        action="store_true",
        help=(
            "pre-solve a tiny built-in batch before binding the socket, so "
            "the first real request hits warm code paths (fleets always "
            "warm their replicas)"
        ),
    )
    _add_engine_arguments(run)
    _add_shed_arguments(run)
    run.set_defaults(handler=_cmd_daemon_run)

    start = daemon_commands.add_parser(
        "start", help="start a detached daemon and wait until it answers pings"
    )
    add_address(start)
    _add_engine_arguments(start)
    _add_shed_arguments(start)
    start.add_argument(
        "--log",
        default=None,
        help="daemon log file (default: a repro-daemon-<pid>.log under the temp dir)",
    )
    start.set_defaults(handler=_cmd_daemon_start)

    stop = daemon_commands.add_parser("stop", help="ask the daemon to shut down")
    add_address(stop)
    stop.set_defaults(handler=_cmd_daemon_stop)

    status = daemon_commands.add_parser(
        "status", help="print the daemon's status and stats snapshot as JSON"
    )
    add_address(status)
    status.add_argument(
        "--prom",
        action="store_true",
        help="print the Prometheus text exposition instead of the JSON status",
    )
    status.set_defaults(handler=_cmd_daemon_status)

    fleet = subparsers.add_parser(
        "fleet",
        help="run N daemon replicas behind a hash-sharding asyncio gateway",
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_dir(sub):
        sub.add_argument(
            "--dir",
            default=None,
            metavar="DIRECTORY",
            help=(
                "the fleet directory holding the manifest, per-replica "
                "sockets, stores and logs (default: repro-fleet-<uid> under "
                "the temp dir)"
            ),
        )

    fleet_start = fleet_commands.add_parser(
        "start",
        help="spawn N replicas on per-replica stores plus the gateway",
    )
    add_fleet_dir(fleet_start)
    fleet_start.add_argument(
        "--replicas", type=int, default=2, help="replica count (default 2)"
    )
    fleet_start.add_argument(
        "--socket",
        default=None,
        metavar="ADDRESS",
        help="gateway endpoint (default <dir>/gateway.sock)",
    )
    fleet_start.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        help="seconds between gateway health probes of each replica (default 2)",
    )
    fleet_start.add_argument(
        "--verify-every",
        type=int,
        default=0,
        help=(
            "additionally audit each replica's store (cache-verify semantics) "
            "every N probe sweeps; 0 disables the audit (default)"
        ),
    )
    fleet_start.add_argument(
        "--ring-vnodes",
        type=int,
        default=DEFAULT_VNODES,
        help=(
            "virtual nodes per replica on the consistent-hash routing ring "
            f"(default {DEFAULT_VNODES}); recorded in the manifest so every "
            "gateway restart rebuilds the identical ring"
        ),
    )
    fleet_start.add_argument(
        "--dispatch-parallelism",
        type=int,
        default=None,
        help=(
            "cap on concurrently in-flight sub-batch dispatches (default: "
            "the gateway host's CPU count — replicas spawned by 'fleet "
            "start' share its cores; set to the fleet size for replicas "
            "on other hosts)"
        ),
    )
    _add_engine_arguments(fleet_start)
    _add_shed_arguments(fleet_start)
    fleet_start.set_defaults(handler=_cmd_fleet_start)

    fleet_stop = fleet_commands.add_parser(
        "stop", help="stop the gateway first, then every replica"
    )
    add_fleet_dir(fleet_stop)
    fleet_stop.set_defaults(handler=_cmd_fleet_stop)

    fleet_status_cmd = fleet_commands.add_parser(
        "status", help="print the gateway's fleet status as JSON"
    )
    add_fleet_dir(fleet_status_cmd)
    fleet_status_cmd.add_argument(
        "--socket",
        default=None,
        metavar="ADDRESS",
        help="gateway endpoint (default: resolved from the manifest in --dir)",
    )
    fleet_status_cmd.add_argument(
        "--prom",
        action="store_true",
        help="print the gateway's Prometheus exposition instead of JSON",
    )
    fleet_status_cmd.set_defaults(handler=_cmd_fleet_status)

    fleet_gateway = fleet_commands.add_parser(
        "gateway",
        help="run the gateway in the foreground (used by 'fleet start')",
    )
    fleet_gateway.add_argument(
        "--manifest", required=True, help="path to the fleet.json manifest"
    )
    fleet_gateway.add_argument(
        "--socket",
        default=None,
        metavar="ADDRESS",
        help="bind address override (default: the manifest's gateway address)",
    )
    fleet_gateway.set_defaults(handler=_cmd_fleet_gateway)

    cache = subparsers.add_parser(
        "cache",
        help="operate on a durable verdict store (verify/export/import/compact/info)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    def add_store(sub):
        sub.add_argument(
            "--store",
            required=True,
            metavar="PATH",
            help="the SQLite verdict store (as passed to batch/daemon --store)",
        )

    cache_verify = cache_commands.add_parser(
        "verify",
        help=(
            "independently re-check every stored certificate (exact Shannon "
            "sum + Farkas recheck) and witness (homomorphism recount)"
        ),
    )
    add_store(cache_verify)
    cache_verify.add_argument(
        "--lp-backend",
        default="auto",
        choices=["auto", "scipy", "highs", "scipy-incremental"],
        help="backend for the Farkas feasibility recheck (default auto)",
    )
    cache_verify.set_defaults(handler=_cmd_cache_verify)

    cache_export = cache_commands.add_parser(
        "export", help="write the store's records as JSONL (canonical payloads)"
    )
    add_store(cache_export)
    cache_export.add_argument(
        "output", nargs="?", default="-", help="output file (default '-' = stdout)"
    )
    cache_export.set_defaults(handler=_cmd_cache_export)

    cache_import = cache_commands.add_parser(
        "import", help="merge a JSONL export into the store (present hashes skipped)"
    )
    add_store(cache_import)
    cache_import.add_argument(
        "input", nargs="?", default="-", help="input file (default '-' = stdin)"
    )
    cache_import.set_defaults(handler=_cmd_cache_import)

    cache_compact = cache_commands.add_parser(
        "compact", help="rewrite the append-only log to one row per verdict"
    )
    add_store(cache_compact)
    cache_compact.set_defaults(handler=_cmd_cache_compact)

    cache_info = cache_commands.add_parser(
        "info", help="print the store summary (entries, recovery counts, evidence)"
    )
    add_store(cache_info)
    cache_info.set_defaults(handler=_cmd_cache_info)
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The service/engine knobs shared by ``batch`` and ``daemon run/start``."""
    parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "theorem-3.1", "sufficient", "brute-force"],
    )
    parser.add_argument(
        "--lp-method",
        default="auto",
        choices=["auto", "dense", "rowgen"],
        help="Γn LP path: full elemental matrix vs lazy row generation (default auto)",
    )
    parser.add_argument(
        "--lp-backend",
        default="auto",
        choices=["auto", "scipy", "highs", "scipy-incremental"],
        help=(
            "LP solver backend: scipy's one-shot HiGHS vs the native incremental "
            "highspy driver (default auto = highs when installed, else scipy)"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=32,
        help="max Γn decisions folded into one block-LP solve (default 32)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for pipeline advancement (threads or processes; default 1)",
    )
    parser.add_argument(
        "--worker-mode",
        default="auto",
        choices=list(WORKER_MODES),
        help=(
            "how --jobs workers run the query-side pipeline stages: threads "
            "in-process, or worker processes for the GIL-bound stages "
            "(default auto = thread)"
        ),
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-pair wall-clock budget in seconds (over-budget pairs report unknown)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help=(
            "durable verdict store (SQLite) behind the plan cache: previously "
            "decided pairs are answered from disk and every new verdict is "
            "recorded with its certificate or witness (see 'repro cache')"
        ),
    )


def _add_shed_arguments(parser: argparse.ArgumentParser) -> None:
    """The daemon's admission-control knobs."""
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="max batch requests in the daemon at once (default: unbounded)",
    )
    parser.add_argument(
        "--shed-policy",
        default="reject",
        choices=list(SHED_POLICIES),
        help=(
            "what happens to requests over --max-queue-depth: reject with a "
            "queue-full answer, or degrade (run with --degrade-budget per pair)"
        ),
    )
    parser.add_argument(
        "--degrade-budget",
        type=float,
        default=1.0,
        help="per-pair budget (seconds) the degrade policy clamps to (default 1.0)",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="deadline for batch requests that do not carry their own (seconds)",
    )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
