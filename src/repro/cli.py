"""Command-line interface.

Four sub-commands expose the main workflows::

    python -m repro contain "R(x,y), R(y,z), R(z,x)" "R(a,b), R(a,c)"
    python -m repro inspect "A(y1,y2), B(y1,y3), C(y4,y2)"
    python -m repro dominate --base "R:0,1;1,2;2,0" --dominating "R:a,b;a,c"
    python -m repro batch pairs.txt --jobs 4 --stats

``contain`` decides bag containment and prints the verdict, the decision
method and (for refutations) the witness database.  ``inspect`` reports the
structural properties that determine which fragment of the paper a query
falls into.  ``dominate`` runs the DOM problem on two structures given in a
compact facts syntax (``Rel:v1,v2;v1,v3 Rel2:...``).  ``batch`` reads a file
of query pairs and decides them all through the batch containment service,
emitting one JSON verdict per line.

The ``batch`` input format is one pair per line, either as the two query
bodies separated by ``|``::

    R(x,y), R(y,z), R(z,x) | R(a,b), R(a,c)

or as a JSON object ``{"q1": "...", "q2": "..."}``.  Blank lines and lines
starting with ``#`` are ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core.containment import decide_containment
from repro.core.domination import dominates
from repro.cq.decompositions import (
    has_simple_junction_tree,
    has_totally_disconnected_junction_tree,
    is_acyclic,
    is_chordal,
)
from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import Structure
from repro.exceptions import ReproError
from repro.service import BatchOptions, ContainmentService


def _parse_structure(text: str) -> Structure:
    """Parse the compact facts syntax ``Rel:v1,v2;v3,v4 Rel2:v5``."""
    facts = []
    for block in text.split():
        if ":" not in block:
            raise ReproError(f"cannot parse structure block {block!r}")
        relation, rows_text = block.split(":", 1)
        for row_text in rows_text.split(";"):
            if not row_text:
                continue
            facts.append((relation, tuple(value.strip() for value in row_text.split(","))))
    if not facts:
        raise ReproError("the structure has no facts")
    return Structure.from_facts(facts)


def _print_result(result, out) -> None:
    print(f"verdict : {result.status.value}", file=out)
    print(f"method  : {result.method}", file=out)
    if result.inequality is not None and not result.inequality.is_trivially_false:
        print(f"branches: {len(result.inequality.branches)}", file=out)
    if result.witness is not None:
        witness = result.witness
        print(
            f"witness : |hom(Q1,D)| = {witness.hom_q1} > |hom(Q2,D)| = {witness.hom_q2}",
            file=out,
        )
        for relation, row in witness.database.facts():
            print(f"    {relation}{row}", file=out)


def _cmd_contain(args, out) -> int:
    q1 = parse_query(args.q1, name="Q1")
    q2 = parse_query(args.q2, name="Q2")
    result = decide_containment(
        q1,
        q2,
        method=args.method,
        lp_method=args.lp_method,
        lp_backend=args.lp_backend,
    )
    _print_result(result, out)
    return 0 if result.status.value != "unknown" else 2


def _cmd_inspect(args, out) -> int:
    query = parse_query(args.query, name="Q")
    print(f"query     : {query}", file=out)
    print(f"variables : {len(query.variables)}", file=out)
    print(f"atoms     : {len(query.atoms)}", file=out)
    print(f"acyclic   : {is_acyclic(query)}", file=out)
    chordal = is_chordal(query)
    print(f"chordal   : {chordal}", file=out)
    if chordal:
        print(f"simple junction tree : {has_simple_junction_tree(query)}", file=out)
        print(
            f"totally disconnected : {has_totally_disconnected_junction_tree(query)}",
            file=out,
        )
    return 0


def _cmd_dominate(args, out) -> int:
    base = _parse_structure(args.base)
    dominating = _parse_structure(args.dominating)
    result = dominates(base, dominating)
    _print_result(result, out)
    return 0 if result.status.value != "unknown" else 2


def _parse_pair_line(line: str, line_number: int) -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Parse one ``batch`` input line (``Q1 | Q2`` or a JSON object)."""
    if line.lstrip().startswith("{"):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(f"line {line_number}: invalid JSON ({error})") from None
        if not isinstance(record, dict) or "q1" not in record or "q2" not in record:
            raise ReproError(f"line {line_number}: JSON pairs need 'q1' and 'q2' keys")
        q1_text, q2_text = record["q1"], record["q2"]
        if not isinstance(q1_text, str) or not isinstance(q2_text, str):
            raise ReproError(
                f"line {line_number}: 'q1' and 'q2' must be query strings"
            )
    else:
        parts = line.split("|")
        if len(parts) != 2:
            raise ReproError(
                f"line {line_number}: expected 'Q1 | Q2' (exactly one '|' separator)"
            )
        q1_text, q2_text = parts
    return (
        parse_query(q1_text.strip(), name=f"Q1@{line_number}"),
        parse_query(q2_text.strip(), name=f"Q2@{line_number}"),
    )


def _read_pairs(path: str) -> List[Tuple[ConjunctiveQuery, ConjunctiveQuery]]:
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    pairs = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        pairs.append(_parse_pair_line(stripped, line_number))
    if not pairs:
        raise ReproError("the batch input contains no query pairs")
    return pairs


def _cmd_batch(args, out) -> int:
    pairs = _read_pairs(args.pairs_file)
    service = ContainmentService(
        BatchOptions(
            method=args.method,
            chunk_size=args.chunk_size,
            max_workers=args.jobs,
            pair_budget=args.budget,
            on_error="capture",
            lp_method=args.lp_method,
            lp_backend=args.lp_backend,
        )
    )
    report = service.run(pairs)
    for outcome, (q1, q2) in zip(report.outcomes, pairs):
        record = {
            "index": outcome.index,
            "status": outcome.result.status.value,
            "method": outcome.result.method,
            "source": outcome.source,
            "q1": str(q1),
            "q2": str(q2),
        }
        if outcome.result.witness is not None:
            record["witness_rows"] = sum(
                1 for _ in outcome.result.witness.database.facts()
            )
        print(json.dumps(record), file=out)
    if args.stats:
        print(json.dumps({"stats": report.stats}), file=sys.stderr)
    unknown = sum(
        1 for outcome in report.outcomes if outcome.result.status.value == "unknown"
    )
    return 0 if unknown == 0 else 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bag query containment via information theory (PODS 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    contain = subparsers.add_parser("contain", help="decide Q1 ⊑ Q2 under bag semantics")
    contain.add_argument("q1", help="the contained query, e.g. 'R(x,y), R(y,z)'")
    contain.add_argument("q2", help="the containing query")
    contain.add_argument(
        "--method",
        default="auto",
        choices=["auto", "theorem-3.1", "sufficient", "brute-force"],
    )
    contain.add_argument(
        "--lp-method",
        default="auto",
        choices=["auto", "dense", "rowgen"],
        help="Γn LP path: full elemental matrix vs lazy row generation (default auto)",
    )
    contain.add_argument(
        "--lp-backend",
        default="auto",
        choices=["auto", "scipy", "highs", "scipy-incremental"],
        help=(
            "LP solver backend: scipy's one-shot HiGHS vs the native incremental "
            "highspy driver (default auto = highs when installed, else scipy)"
        ),
    )
    contain.set_defaults(handler=_cmd_contain)

    inspect = subparsers.add_parser("inspect", help="report a query's structural class")
    inspect.add_argument("query")
    inspect.set_defaults(handler=_cmd_inspect)

    dominate = subparsers.add_parser("dominate", help="decide structure domination (DOM)")
    dominate.add_argument("--base", required=True, help="structure A in 'R:0,1;1,2' syntax")
    dominate.add_argument("--dominating", required=True, help="structure B")
    dominate.set_defaults(handler=_cmd_dominate)

    batch = subparsers.add_parser(
        "batch",
        help="decide a file of query pairs through the batch service (JSONL out)",
    )
    batch.add_argument(
        "pairs_file",
        help="path to the pairs file ('-' for stdin); one 'Q1 | Q2' or JSON pair per line",
    )
    batch.add_argument(
        "--method",
        default="auto",
        choices=["auto", "theorem-3.1", "sufficient", "brute-force"],
    )
    batch.add_argument(
        "--lp-method",
        default="auto",
        choices=["auto", "dense", "rowgen"],
        help="Γn LP path: full elemental matrix vs lazy row generation (default auto)",
    )
    batch.add_argument(
        "--lp-backend",
        default="auto",
        choices=["auto", "scipy", "highs", "scipy-incremental"],
        help=(
            "LP solver backend: scipy's one-shot HiGHS vs the native incremental "
            "highspy driver (default auto = highs when installed, else scipy)"
        ),
    )
    batch.add_argument(
        "--chunk-size",
        type=int,
        default=32,
        help="max Γn decisions folded into one block-LP solve (default 32)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for pipeline advancement and LP solving (default 1)",
    )
    batch.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-pair wall-clock budget in seconds (over-budget pairs report unknown)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="print service statistics as JSON to stderr after the verdicts",
    )
    batch.set_defaults(handler=_cmd_batch)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
