"""One-call entropy profile of a relation.

:func:`profile_relation` packages the individual analyses of
:mod:`repro.analysis.dependencies` together with the structural properties
that matter to the paper's machinery (total uniformity, normality of the
entropy, the modular gap) into a single report object that the examples
print.  The profile is intentionally redundant with the lower-level
functions — its role is to give library users a "show me everything about
this relation" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.dependencies import (
    FunctionalDependency,
    MultivaluedDependency,
    discover_functional_dependencies,
    discover_multivalued_dependencies,
    key_attributes,
)
from repro.cq.structures import Relation
from repro.exceptions import StructureError
from repro.infotheory.entropy import relation_entropy
from repro.infotheory.imeasure import is_normal_function
from repro.infotheory.setfunction import SetFunction


@dataclass(frozen=True)
class RelationProfile:
    """Everything the analysis layer knows about one relation.

    Attributes
    ----------
    attributes:
        The relation's attribute tuple.
    row_count / distinct_per_attribute:
        Basic cardinality statistics.
    entropy:
        The entropy function of the uniform distribution on the relation.
    total_entropy / marginal_entropies:
        ``h(V)`` and the single-attribute marginals ``h(A)`` in bits.
    functional_dependencies / multivalued_dependencies / keys:
        Minimal dependencies discovered via Lee's criteria.
    is_totally_uniform:
        Definition 4.5 — every marginal of the uniform distribution is
        uniform (the shape of the Theorem 4.4 witnesses).
    entropy_is_normal:
        Whether the entropy has a non-negative I-measure (a *normal*
        function); normal witnesses are what Theorem 3.4(ii) guarantees.
    modular_gap:
        ``Σ_A h(A) − h(V)`` — non-negative by subadditivity and zero exactly
        when the attributes are mutually independent.
    """

    attributes: Tuple[str, ...]
    row_count: int
    distinct_per_attribute: Dict[str, int]
    entropy: SetFunction = field(compare=False)
    total_entropy: float
    marginal_entropies: Dict[str, float]
    functional_dependencies: List[FunctionalDependency]
    multivalued_dependencies: List[MultivaluedDependency]
    keys: List[FrozenSet[str]]
    is_totally_uniform: bool
    entropy_is_normal: bool
    modular_gap: float

    def summary_lines(self) -> List[str]:
        """Human-readable report lines (used by the example scripts)."""
        lines = [
            f"attributes            : {', '.join(self.attributes)}",
            f"rows                  : {self.row_count}",
            f"total entropy h(V)    : {self.total_entropy:.4f} bits",
            "marginals             : "
            + ", ".join(f"h({a})={value:.3f}" for a, value in self.marginal_entropies.items()),
            f"totally uniform       : {self.is_totally_uniform}",
            f"entropy is normal     : {self.entropy_is_normal}",
            f"independence gap      : {self.modular_gap:.4f} bits",
            f"minimal keys          : "
            + ("; ".join("{" + ", ".join(sorted(k)) + "}" for k in self.keys) or "none"),
        ]
        if self.functional_dependencies:
            lines.append("functional deps       : " + "; ".join(map(str, self.functional_dependencies)))
        else:
            lines.append("functional deps       : none")
        if self.multivalued_dependencies:
            lines.append("multivalued deps      : " + "; ".join(map(str, self.multivalued_dependencies)))
        else:
            lines.append("multivalued deps      : none")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())


def profile_relation(
    relation: Relation,
    max_determinant_size: int = None,
) -> RelationProfile:
    """Compute the full :class:`RelationProfile` of a non-empty relation."""
    if not relation.rows:
        raise StructureError("cannot profile an empty relation")
    entropy = relation_entropy(relation)
    marginals = {
        attribute: entropy(frozenset([attribute])) for attribute in relation.attributes
    }
    modular_gap = sum(marginals.values()) - entropy(entropy.ground_set)
    distinct = {
        attribute: len(relation.project([attribute]).rows)
        for attribute in relation.attributes
    }
    return RelationProfile(
        attributes=tuple(relation.attributes),
        row_count=len(relation.rows),
        distinct_per_attribute=distinct,
        entropy=entropy,
        total_entropy=entropy(entropy.ground_set),
        marginal_entropies=marginals,
        functional_dependencies=discover_functional_dependencies(
            relation, max_determinant_size=max_determinant_size
        ),
        multivalued_dependencies=discover_multivalued_dependencies(
            relation, max_determinant_size=max_determinant_size
        ),
        keys=key_attributes(relation),
        is_totally_uniform=relation.is_totally_uniform(),
        entropy_is_normal=is_normal_function(entropy),
        modular_gap=max(0.0, modular_gap),
    )
