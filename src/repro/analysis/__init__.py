"""Entropy-based relation analysis (``repro.analysis``).

Lee's information-theoretic analysis of relational databases (references
[22, 23] of the paper, revisited in its Section 6) characterizes classical
database constraints through the entropy ``h`` of the uniform distribution on
a relation ``P``:

* a functional dependency ``X → Y`` holds iff ``h(Y | X) = 0``;
* a multivalued dependency ``X ↠ Y`` holds iff ``I(Y ; V∖(X∪Y) | X) = 0``;
* ``P`` admits a lossless acyclic join decomposition along a tree ``T`` iff
  ``E_T(h) = h(V)`` — the same remarkable expression ``E_T`` (Eq. (7)) that
  drives the containment machinery.

This subpackage turns those characterizations into a small data-profiling
toolkit over :class:`repro.cq.structures.Relation` objects: dependency
discovery, lossless-join checks and decomposition suggestions.  It is the
substrate behind the ``dependency_discovery`` example.
"""

from repro.analysis.dependencies import (
    FunctionalDependency,
    MultivaluedDependency,
    decomposition_gap,
    discover_functional_dependencies,
    discover_multivalued_dependencies,
    is_lossless_decomposition,
    key_attributes,
    suggest_binary_decompositions,
)
from repro.analysis.profile import RelationProfile, profile_relation

__all__ = [
    "FunctionalDependency",
    "MultivaluedDependency",
    "discover_functional_dependencies",
    "discover_multivalued_dependencies",
    "key_attributes",
    "is_lossless_decomposition",
    "decomposition_gap",
    "suggest_binary_decompositions",
    "RelationProfile",
    "profile_relation",
]
