"""Entropy-based discovery of database dependencies (Lee's theorems).

Everything here operates on the entropy ``h`` of the uniform distribution on
a relation (computed once by :func:`repro.infotheory.entropy.relation_entropy`)
and applies the characterizations quoted in Section 6 of the paper:

* ``X → Y``  (functional dependency)    ⇔  ``h(Y | X) = 0``;
* ``X ↠ Y``  (multivalued dependency)   ⇔  ``I(Y ; rest | X) = 0``;
* a join decomposition with bag tree ``T`` is lossless ⇔ ``E_T(h) = h(V)``.

Discovery is exhaustive over candidate left-hand sides up to a configurable
size, returning only *minimal* dependencies (no strict subset of the
left-hand side already determines the right-hand side), which is what a data
profiler would report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cq.structures import Relation
from repro.exceptions import StructureError
from repro.infotheory.entropy import relation_entropy
from repro.infotheory.setfunction import SetFunction

DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinant → dependent``."""

    determinant: FrozenSet[str]
    dependent: str

    def __str__(self) -> str:
        lhs = ", ".join(sorted(self.determinant)) or "∅"
        return f"{{{lhs}}} -> {self.dependent}"


@dataclass(frozen=True)
class MultivaluedDependency:
    """A multivalued dependency ``determinant ↠ dependents``."""

    determinant: FrozenSet[str]
    dependents: FrozenSet[str]

    def __str__(self) -> str:
        lhs = ", ".join(sorted(self.determinant)) or "∅"
        rhs = ", ".join(sorted(self.dependents))
        return f"{{{lhs}}} ->> {{{rhs}}}"


def _entropy_of(relation_or_entropy) -> SetFunction:
    if isinstance(relation_or_entropy, SetFunction):
        return relation_or_entropy
    if isinstance(relation_or_entropy, Relation):
        if not relation_or_entropy.rows:
            raise StructureError("cannot analyse an empty relation")
        return relation_entropy(relation_or_entropy)
    raise StructureError(
        "expected a Relation or a SetFunction, got "
        f"{type(relation_or_entropy).__name__}"
    )


# ---------------------------------------------------------------------- #
# Functional dependencies
# ---------------------------------------------------------------------- #
def functional_dependency_holds(
    relation_or_entropy,
    determinant: Sequence[str],
    dependent: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Lee's criterion: ``X → A`` holds iff ``h(A | X) = 0``."""
    entropy = _entropy_of(relation_or_entropy)
    return abs(entropy.conditional([dependent], determinant)) <= tolerance


def discover_functional_dependencies(
    relation: Relation,
    max_determinant_size: Optional[int] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[FunctionalDependency]:
    """All minimal functional dependencies of a relation.

    A dependency ``X → A`` is reported only when no strict subset of ``X``
    already determines ``A`` and ``A ∉ X``.  ``max_determinant_size`` bounds
    the left-hand sides considered (defaults to all attributes but one).
    """
    entropy = _entropy_of(relation)
    attributes = tuple(relation.attributes)
    limit = (
        len(attributes) - 1
        if max_determinant_size is None
        else min(max_determinant_size, len(attributes) - 1)
    )
    found: List[FunctionalDependency] = []
    minimal_for: Dict[str, List[FrozenSet[str]]] = {a: [] for a in attributes}
    for size in range(0, limit + 1):
        for determinant in itertools.combinations(attributes, size):
            determinant_set = frozenset(determinant)
            for dependent in attributes:
                if dependent in determinant_set:
                    continue
                if any(known <= determinant_set for known in minimal_for[dependent]):
                    continue
                if functional_dependency_holds(entropy, determinant, dependent, tolerance):
                    minimal_for[dependent].append(determinant_set)
                    found.append(
                        FunctionalDependency(
                            determinant=determinant_set, dependent=dependent
                        )
                    )
    return found


def key_attributes(
    relation: Relation, tolerance: float = DEFAULT_TOLERANCE
) -> List[FrozenSet[str]]:
    """All minimal keys: attribute sets ``X`` with ``h(V | X) = 0``.

    Every relation has at least the trivial key ``V`` itself.
    """
    entropy = _entropy_of(relation)
    attributes = tuple(relation.attributes)
    others = frozenset(attributes)
    keys: List[FrozenSet[str]] = []
    for size in range(0, len(attributes) + 1):
        for candidate in itertools.combinations(attributes, size):
            candidate_set = frozenset(candidate)
            if any(key <= candidate_set for key in keys):
                continue
            if abs(entropy.conditional(others - candidate_set, candidate_set)) <= tolerance:
                keys.append(candidate_set)
    return keys


# ---------------------------------------------------------------------- #
# Multivalued dependencies
# ---------------------------------------------------------------------- #
def multivalued_dependency_holds(
    relation_or_entropy,
    determinant: Sequence[str],
    dependents: Sequence[str],
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Lee's criterion: ``X ↠ Y`` holds iff ``I(Y ; V∖(X∪Y) | X) = 0``."""
    entropy = _entropy_of(relation_or_entropy)
    determinant_set = frozenset(determinant)
    dependents_set = frozenset(dependents) - determinant_set
    rest = entropy.ground_set - determinant_set - dependents_set
    if not dependents_set or not rest:
        return True
    return abs(entropy.mutual_information(dependents_set, rest, determinant_set)) <= tolerance


def discover_multivalued_dependencies(
    relation: Relation,
    max_determinant_size: Optional[int] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[MultivaluedDependency]:
    """All non-trivial multivalued dependencies with minimal determinants.

    For each determinant ``X`` the reported right-hand sides are the finest
    non-trivial blocks: a dependency ``X ↠ Y`` is skipped when ``Y`` (or its
    complement) is empty, when ``X ↠ Y`` already follows from a functional
    dependency (``h(Y|X) = 0`` is reported separately), or when a strictly
    smaller determinant yields the same split.
    """
    entropy = _entropy_of(relation)
    attributes = tuple(relation.attributes)
    limit = (
        len(attributes) - 2
        if max_determinant_size is None
        else min(max_determinant_size, len(attributes) - 2)
    )
    found: List[MultivaluedDependency] = []
    seen_splits: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
    for size in range(0, max(limit, -1) + 1):
        for determinant in itertools.combinations(attributes, size):
            determinant_set = frozenset(determinant)
            remaining = [a for a in attributes if a not in determinant_set]
            if len(remaining) < 2:
                continue
            # Enumerate splits of the remaining attributes up to complement symmetry.
            anchor, rest = remaining[0], remaining[1:]
            for subset_size in range(0, len(rest) + 1):
                for extra in itertools.combinations(rest, subset_size):
                    dependents = frozenset((anchor,) + extra)
                    complement = frozenset(remaining) - dependents
                    if not complement:
                        continue
                    if any(
                        known_det <= determinant_set and known_dep in (dependents, complement)
                        for known_det, known_dep in seen_splits
                    ):
                        continue
                    if multivalued_dependency_holds(
                        entropy, determinant_set, dependents, tolerance
                    ):
                        found.append(
                            MultivaluedDependency(
                                determinant=determinant_set, dependents=dependents
                            )
                        )
                        seen_splits.append((determinant_set, dependents))
    return found


# ---------------------------------------------------------------------- #
# Lossless join decompositions (the E_T criterion)
# ---------------------------------------------------------------------- #
def decomposition_gap(
    relation_or_entropy, bags: Sequence[Sequence[str]], tolerance: float = DEFAULT_TOLERANCE
) -> float:
    """The non-negative gap ``Σ_t h(χ(t) | separator) − h(V)`` for a bag chain.

    The bags are arranged in the given order as a path tree decomposition
    (each bag's parent is the previous bag), which matches how practitioners
    write decompositions ``R(V) ≈ Π_{B1}(R) ⋈ Π_{B2}(R) ⋈ ...``.  A zero gap
    means the decomposition is lossless (Lee's acyclic-join criterion); a
    positive gap quantifies how much information the decomposition loses
    about the joint distribution.
    """
    entropy = _entropy_of(relation_or_entropy)
    bag_sets = [frozenset(bag) for bag in bags]
    if not bag_sets:
        raise StructureError("a decomposition needs at least one bag")
    covered = frozenset().union(*bag_sets)
    if covered != entropy.ground_set:
        missing = sorted(entropy.ground_set - covered)
        raise StructureError(f"decomposition does not cover attributes {missing}")
    total = 0.0
    union_so_far: FrozenSet[str] = frozenset()
    for bag in bag_sets:
        separator = bag & union_so_far
        total += entropy.conditional(bag, separator)
        union_so_far |= bag
    gap = total - entropy(entropy.ground_set)
    return max(gap, 0.0) if abs(gap) <= tolerance else gap


def is_lossless_decomposition(
    relation_or_entropy, bags: Sequence[Sequence[str]], tolerance: float = 1e-7
) -> bool:
    """True when projecting onto ``bags`` and re-joining loses no tuples."""
    return decomposition_gap(relation_or_entropy, bags) <= tolerance


def suggest_binary_decompositions(
    relation: Relation, tolerance: float = 1e-7
) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """All lossless two-way splits ``(X ∪ S, Y ∪ S)`` of the attribute set.

    Each suggestion is a pair of overlapping attribute sets covering all
    attributes whose join reconstructs the relation exactly — the classical
    BCNF/4NF decomposition step, driven here purely by entropy.
    """
    entropy = _entropy_of(relation)
    attributes = tuple(relation.attributes)
    suggestions: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
    full = frozenset(attributes)
    for separator_size in range(0, len(attributes) - 1):
        for separator in itertools.combinations(attributes, separator_size):
            separator_set = frozenset(separator)
            remaining = [a for a in attributes if a not in separator_set]
            if len(remaining) < 2:
                continue
            anchor, rest = remaining[0], remaining[1:]
            for subset_size in range(0, len(rest)):
                for extra in itertools.combinations(rest, subset_size):
                    left = separator_set | {anchor} | set(extra)
                    right = full - (left - separator_set)
                    if left == full or right == full:
                        continue
                    if is_lossless_decomposition(entropy, [left, right], tolerance):
                        pair = (frozenset(left), frozenset(right))
                        if pair not in suggestions and (pair[1], pair[0]) not in suggestions:
                            suggestions.append(pair)
    return suggestions
