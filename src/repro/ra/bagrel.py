"""Bag (multiset) relations and the bag relational-algebra operators.

A :class:`BagRelation` is a relation under bag semantics: each row carries a
positive integer multiplicity.  The operators follow the standard bag
semantics of SQL:

* projection keeps duplicates (multiplicities of collapsing rows add up);
* natural join multiplies multiplicities of matching rows;
* ``UNION ALL`` adds multiplicities, bag difference subtracts them (monus);
* ``DISTINCT`` resets every multiplicity to one;
* ``GROUP BY`` + ``COUNT(*)`` aggregates multiplicities per group.

Set relations (:class:`repro.cq.structures.Relation`) convert losslessly to
bag relations with multiplicity one and back via :meth:`BagRelation.distinct`
— this is the bridge the bag-set semantics of the paper uses: the *input*
database is a set, only the query answer is a bag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.cq.structures import Relation
from repro.exceptions import StructureError

Row = Tuple


@dataclass(frozen=True)
class BagRelation:
    """A relation under bag semantics: rows with positive multiplicities.

    Attributes
    ----------
    attributes:
        Attribute names in a fixed order.
    multiplicities:
        Mapping from a row (a tuple aligned with ``attributes``) to its
        multiplicity.  Rows with multiplicity zero are dropped at
        construction; negative multiplicities are rejected.
    """

    attributes: Tuple[str, ...]
    multiplicities: Mapping[Row, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        attributes = tuple(self.attributes)
        if len(set(attributes)) != len(attributes):
            raise StructureError("bag relation attributes must be distinct")
        cleaned: Dict[Row, int] = {}
        for row, count in dict(self.multiplicities).items():
            row = tuple(row)
            if len(row) != len(attributes):
                raise StructureError(
                    f"row {row!r} does not match attributes {attributes!r}"
                )
            if count < 0:
                raise StructureError(f"negative multiplicity {count} for row {row!r}")
            if count == 0:
                continue
            cleaned[row] = cleaned.get(row, 0) + int(count)
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "multiplicities", cleaned)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, attributes: Sequence[str]) -> "BagRelation":
        """The empty bag relation over the given attributes."""
        return cls(attributes=tuple(attributes), multiplicities={})

    @classmethod
    def from_rows(
        cls, attributes: Sequence[str], rows: Iterable[Row]
    ) -> "BagRelation":
        """Build from an iterable of rows; repeated rows accumulate multiplicity."""
        counts: Dict[Row, int] = {}
        for row in rows:
            row = tuple(row)
            counts[row] = counts.get(row, 0) + 1
        return cls(attributes=tuple(attributes), multiplicities=counts)

    @classmethod
    def from_relation(cls, relation: Relation) -> "BagRelation":
        """A set relation viewed as a bag (every multiplicity is one)."""
        return cls(
            attributes=relation.attributes,
            multiplicities={row: 1 for row in relation.rows},
        )

    @classmethod
    def from_mappings(
        cls, attributes: Sequence[str], mappings: Iterable[Mapping[str, object]]
    ) -> "BagRelation":
        """Build from attribute → value dictionaries (duplicates accumulate)."""
        attributes = tuple(attributes)
        return cls.from_rows(
            attributes, (tuple(mapping[a] for a in attributes) for mapping in mappings)
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Total number of rows counted with multiplicity (``COUNT(*)``)."""
        return sum(self.multiplicities.values())

    def __bool__(self) -> bool:
        return bool(self.multiplicities)

    def __iter__(self) -> Iterator[Row]:
        """Iterate over rows, each repeated according to its multiplicity."""
        for row, count in self.multiplicities.items():
            for _ in range(count):
                yield row

    def distinct_count(self) -> int:
        """Number of distinct rows (``COUNT(DISTINCT *)``)."""
        return len(self.multiplicities)

    def multiplicity(self, row: Row) -> int:
        """Multiplicity of ``row`` (zero when absent)."""
        return self.multiplicities.get(tuple(row), 0)

    @property
    def attribute_set(self) -> FrozenSet[str]:
        return frozenset(self.attributes)

    def column_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the attribute tuple."""
        try:
            return self.attributes.index(attribute)
        except ValueError as exc:
            raise StructureError(f"unknown attribute {attribute!r}") from exc

    def support(self) -> FrozenSet[Row]:
        """The set of distinct rows."""
        return frozenset(self.multiplicities)

    def active_domain(self) -> FrozenSet:
        """All values appearing anywhere in the relation."""
        return frozenset(value for row in self.multiplicities for value in row)

    def as_mappings(self) -> Iterator[Dict[str, object]]:
        """Iterate over distinct rows as attribute → value dictionaries."""
        for row in self.multiplicities:
            yield dict(zip(self.attributes, row))

    def to_relation(self) -> Relation:
        """Forget multiplicities and return the underlying set relation."""
        return Relation(attributes=self.attributes, rows=self.support())

    # ------------------------------------------------------------------ #
    # Bag relational algebra
    # ------------------------------------------------------------------ #
    def project(self, attributes: Sequence[str]) -> "BagRelation":
        """Bag projection ``Π_X``: multiplicities of collapsing rows add up."""
        attributes = tuple(attributes)
        indices = [self.column_index(a) for a in attributes]
        counts: Dict[Row, int] = {}
        for row, count in self.multiplicities.items():
            key = tuple(row[i] for i in indices)
            counts[key] = counts.get(key, 0) + count
        return BagRelation(attributes=attributes, multiplicities=counts)

    def select(self, predicate: Callable[[Dict[str, object]], bool]) -> "BagRelation":
        """Selection by an arbitrary predicate over attribute → value mappings."""
        counts = {
            row: count
            for row, count in self.multiplicities.items()
            if predicate(dict(zip(self.attributes, row)))
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def select_equal(self, attribute: str, value) -> "BagRelation":
        """Selection ``σ_{attribute = value}``."""
        index = self.column_index(attribute)
        counts = {
            row: count for row, count in self.multiplicities.items() if row[index] == value
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def select_equal_columns(self, left: str, right: str) -> "BagRelation":
        """Selection ``σ_{left = right}`` between two columns.

        This is how repeated variables inside an atom (``R(x, x, y)``) are
        handled by the compiler.
        """
        left_index = self.column_index(left)
        right_index = self.column_index(right)
        counts = {
            row: count
            for row, count in self.multiplicities.items()
            if row[left_index] == row[right_index]
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def rename(self, mapping: Mapping[str, str]) -> "BagRelation":
        """Rename attributes (attributes missing from ``mapping`` are unchanged)."""
        return BagRelation(
            attributes=tuple(mapping.get(a, a) for a in self.attributes),
            multiplicities=dict(self.multiplicities),
        )

    def natural_join(self, other: "BagRelation") -> "BagRelation":
        """Bag natural join: multiplicities of matching rows multiply."""
        shared = [a for a in self.attributes if a in other.attribute_set]
        other_only = [a for a in other.attributes if a not in self.attribute_set]
        result_attrs = self.attributes + tuple(other_only)
        self_idx = [self.column_index(a) for a in shared]
        other_idx = [other.column_index(a) for a in shared]
        other_only_idx = [other.column_index(a) for a in other_only]

        buckets: Dict[Row, list] = {}
        for row, count in other.multiplicities.items():
            key = tuple(row[i] for i in other_idx)
            buckets.setdefault(key, []).append((row, count))
        counts: Dict[Row, int] = {}
        for row, count in self.multiplicities.items():
            key = tuple(row[i] for i in self_idx)
            for match, match_count in buckets.get(key, ()):
                joined = row + tuple(match[i] for i in other_only_idx)
                counts[joined] = counts.get(joined, 0) + count * match_count
        return BagRelation(attributes=result_attrs, multiplicities=counts)

    def semijoin(self, other: "BagRelation") -> "BagRelation":
        """Bag semijoin ``P ⋉ other``: rows of ``P`` with a join partner.

        Multiplicities of ``P`` are preserved (not multiplied) — the standard
        semijoin used by the Yannakakis full reducer.
        """
        shared = [a for a in self.attributes if a in other.attribute_set]
        if not shared:
            return self if other else BagRelation.empty(self.attributes)
        self_idx = [self.column_index(a) for a in shared]
        other_idx = [other.column_index(a) for a in shared]
        keys = {tuple(row[i] for i in other_idx) for row in other.multiplicities}
        counts = {
            row: count
            for row, count in self.multiplicities.items()
            if tuple(row[i] for i in self_idx) in keys
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def union_all(self, other: "BagRelation") -> "BagRelation":
        """Bag union (``UNION ALL``): multiplicities add up."""
        self._check_union_compatible(other)
        counts = dict(self.multiplicities)
        permutation = [other.column_index(a) for a in self.attributes]
        for row, count in other.multiplicities.items():
            aligned = tuple(row[i] for i in permutation)
            counts[aligned] = counts.get(aligned, 0) + count
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def difference(self, other: "BagRelation") -> "BagRelation":
        """Bag difference (monus): multiplicities subtract, clipped at zero."""
        self._check_union_compatible(other)
        permutation = [other.column_index(a) for a in self.attributes]
        other_counts: Dict[Row, int] = {}
        for row, count in other.multiplicities.items():
            aligned = tuple(row[i] for i in permutation)
            other_counts[aligned] = other_counts.get(aligned, 0) + count
        counts = {
            row: count - other_counts.get(row, 0)
            for row, count in self.multiplicities.items()
            if count - other_counts.get(row, 0) > 0
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def intersection(self, other: "BagRelation") -> "BagRelation":
        """Bag intersection: the minimum of the two multiplicities."""
        self._check_union_compatible(other)
        permutation = [other.column_index(a) for a in self.attributes]
        other_counts: Dict[Row, int] = {}
        for row, count in other.multiplicities.items():
            aligned = tuple(row[i] for i in permutation)
            other_counts[aligned] = other_counts.get(aligned, 0) + count
        counts = {
            row: min(count, other_counts.get(row, 0))
            for row, count in self.multiplicities.items()
            if min(count, other_counts.get(row, 0)) > 0
        }
        return BagRelation(attributes=self.attributes, multiplicities=counts)

    def distinct(self) -> "BagRelation":
        """``SELECT DISTINCT``: every multiplicity becomes one."""
        return BagRelation(
            attributes=self.attributes,
            multiplicities={row: 1 for row in self.multiplicities},
        )

    def group_count(self, group_attributes: Sequence[str]) -> Dict[Row, int]:
        """``SELECT group, COUNT(*) ... GROUP BY group`` as a dictionary.

        For the empty grouping list the result has the single key ``()`` with
        the total row count — exactly the bag-set answer of a Boolean query.
        """
        grouped = self.project(group_attributes)
        return dict(grouped.multiplicities)

    def scale(self, factor: int) -> "BagRelation":
        """Multiply every multiplicity by a non-negative integer factor."""
        if factor < 0:
            raise StructureError("scaling factor must be non-negative")
        return BagRelation(
            attributes=self.attributes,
            multiplicities={row: count * factor for row, count in self.multiplicities.items()},
        )

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def bag_contained_in(self, other: "BagRelation") -> bool:
        """Pointwise multiplicity comparison ``self ≤ other``."""
        self._check_union_compatible(other)
        permutation = [other.column_index(a) for a in self.attributes]
        other_counts: Dict[Row, int] = {}
        for row, count in other.multiplicities.items():
            aligned = tuple(row[i] for i in permutation)
            other_counts[aligned] = other_counts.get(aligned, 0) + count
        return all(
            count <= other_counts.get(row, 0) for row, count in self.multiplicities.items()
        )

    def same_bag(self, other: "BagRelation") -> bool:
        """Equality as bags (same rows with the same multiplicities)."""
        return self.bag_contained_in(other) and other.bag_contained_in(self)

    def _check_union_compatible(self, other: "BagRelation") -> None:
        if self.attribute_set != other.attribute_set:
            raise StructureError(
                "bag operations over two relations require identical attribute sets"
            )

    def __str__(self) -> str:
        return (
            f"BagRelation({', '.join(self.attributes)}; "
            f"{self.distinct_count()} distinct rows, {len(self)} total)"
        )
