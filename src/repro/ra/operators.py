"""Logical plan operators over bag relations.

A plan is a tree of :class:`PlanNode` objects.  Each node knows its output
schema (attribute tuple), evaluates bottom-up against a database given as a
mapping from relation name to :class:`~repro.ra.bagrel.BagRelation`, and can
pretty-print itself (``explain``) in the style of an ``EXPLAIN`` output.

The node set is deliberately small — exactly what is needed to express the
bag-set semantics of conjunctive queries (the ``COUNT(*) ... GROUP BY``
reading of the paper) plus the ``UNION ALL`` / ``DISTINCT`` operators used by
the examples and tests:

``Scan → Rename / Select / Project → Join → Distinct / UnionAll → CountGroup``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.exceptions import StructureError
from repro.ra.bagrel import BagRelation

Database = Mapping[str, BagRelation]


class PlanNode:
    """Base class of all logical plan operators."""

    def schema(self) -> Tuple[str, ...]:
        """The output attribute tuple of this operator."""
        raise NotImplementedError

    def evaluate(self, database: Database) -> BagRelation:
        """Evaluate the subtree rooted at this node against ``database``."""
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        """Direct children, used by traversals and ``explain``."""
        return ()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def label(self) -> str:
        """One-line description of this operator (without children)."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """An ``EXPLAIN``-style indented rendering of the plan."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def operator_count(self) -> int:
        """Total number of operators in the subtree."""
        return 1 + sum(child.operator_count() for child in self.children())

    def depth(self) -> int:
        """Height of the plan tree."""
        if not self.children():
            return 1
        return 1 + max(child.depth() for child in self.children())

    def __str__(self) -> str:
        return self.explain()


@dataclass(frozen=True)
class ScanOp(PlanNode):
    """Scan a stored relation and expose it under positional column names."""

    relation: str
    columns: Tuple[str, ...]

    def schema(self) -> Tuple[str, ...]:
        return self.columns

    def evaluate(self, database: Database) -> BagRelation:
        if self.relation not in database:
            raise StructureError(f"unknown relation {self.relation!r} in scan")
        stored = database[self.relation]
        if not stored:
            # An empty stored relation carries no arity information (the
            # structure cannot know it); the scan's own columns decide.
            return BagRelation.empty(self.columns)
        if len(stored.attributes) != len(self.columns):
            raise StructureError(
                f"scan of {self.relation!r} expects arity {len(self.columns)}, "
                f"stored relation has arity {len(stored.attributes)}"
            )
        return stored.rename(dict(zip(stored.attributes, self.columns)))

    def label(self) -> str:
        return f"Scan {self.relation}({', '.join(self.columns)})"


@dataclass(frozen=True)
class RenameOp(PlanNode):
    """Rename attributes of the child output."""

    child: PlanNode
    mapping: Tuple[Tuple[str, str], ...]

    def schema(self) -> Tuple[str, ...]:
        mapping = dict(self.mapping)
        return tuple(mapping.get(a, a) for a in self.child.schema())

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).rename(dict(self.mapping))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"Rename [{renames}]"


@dataclass(frozen=True)
class ProjectOp(PlanNode):
    """Bag projection onto the listed attributes (duplicates preserved)."""

    child: PlanNode
    attributes: Tuple[str, ...]

    def schema(self) -> Tuple[str, ...]:
        return self.attributes

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).project(self.attributes)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project [{', '.join(self.attributes)}]"


@dataclass(frozen=True)
class SelectEqualOp(PlanNode):
    """Selection ``attribute = constant``."""

    child: PlanNode
    attribute: str
    value: object

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).select_equal(self.attribute, self.value)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Select [{self.attribute} = {self.value!r}]"


@dataclass(frozen=True)
class SelectEqualColumnsOp(PlanNode):
    """Selection ``left = right`` between two columns (repeated query variables)."""

    child: PlanNode
    left: str
    right: str

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).select_equal_columns(self.left, self.right)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Select [{self.left} = {self.right}]"


@dataclass(frozen=True)
class JoinOp(PlanNode):
    """Bag natural join of the two children on their shared attributes."""

    left: PlanNode
    right: PlanNode

    def schema(self) -> Tuple[str, ...]:
        left_schema = self.left.schema()
        return left_schema + tuple(
            a for a in self.right.schema() if a not in set(left_schema)
        )

    def evaluate(self, database: Database) -> BagRelation:
        return self.left.evaluate(database).natural_join(self.right.evaluate(database))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        shared = sorted(set(self.left.schema()) & set(self.right.schema()))
        return f"Join [{', '.join(shared) or 'cartesian'}]"


@dataclass(frozen=True)
class SemiJoinOp(PlanNode):
    """Bag semijoin: keep left rows with a partner on the right (Yannakakis pass)."""

    left: PlanNode
    right: PlanNode

    def schema(self) -> Tuple[str, ...]:
        return self.left.schema()

    def evaluate(self, database: Database) -> BagRelation:
        return self.left.evaluate(database).semijoin(self.right.evaluate(database))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        shared = sorted(set(self.left.schema()) & set(self.right.schema()))
        return f"SemiJoin [{', '.join(shared) or 'none'}]"


@dataclass(frozen=True)
class DistinctOp(PlanNode):
    """``SELECT DISTINCT`` — reset every multiplicity to one."""

    child: PlanNode

    def schema(self) -> Tuple[str, ...]:
        return self.child.schema()

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).distinct()

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class UnionAllOp(PlanNode):
    """``UNION ALL`` of two union-compatible children."""

    left: PlanNode
    right: PlanNode

    def schema(self) -> Tuple[str, ...]:
        return self.left.schema()

    def evaluate(self, database: Database) -> BagRelation:
        return self.left.evaluate(database).union_all(self.right.evaluate(database))

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "UnionAll"


@dataclass(frozen=True)
class CountGroupOp(PlanNode):
    """``SELECT group, COUNT(*) ... GROUP BY group`` as a terminal operator.

    Evaluation returns a bag relation whose *multiplicities* are the counts
    and whose rows are the group keys — i.e. the bag-set answer of the paper.
    Use :meth:`answer` to obtain the answer dictionary directly.
    """

    child: PlanNode
    group_attributes: Tuple[str, ...]

    def schema(self) -> Tuple[str, ...]:
        return self.group_attributes

    def evaluate(self, database: Database) -> BagRelation:
        return self.child.evaluate(database).project(self.group_attributes)

    def answer(self, database: Database) -> Dict[Tuple, int]:
        """The bag answer ``d ↦ COUNT(*)`` as a plain dictionary."""
        return self.child.evaluate(database).group_count(self.group_attributes)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(self.group_attributes) or "()"
        return f"CountGroup [{keys}]"


def join_all(nodes: Sequence[PlanNode]) -> PlanNode:
    """Left-deep join of a non-empty sequence of plan nodes."""
    nodes = list(nodes)
    if not nodes:
        raise StructureError("cannot join an empty list of plan nodes")
    plan = nodes[0]
    for node in nodes[1:]:
        plan = JoinOp(left=plan, right=node)
    return plan
