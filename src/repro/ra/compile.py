"""Compile conjunctive queries into bag relational-algebra plans.

The compiler turns a :class:`~repro.cq.query.ConjunctiveQuery` into the plan

    ``CountGroup_head( Join( atom_1, ..., atom_k ) )``

which is exactly the ``COUNT(*) ... GROUP BY head`` reading of bag-set
semantics in Section 2.2 of the paper.  Every atom becomes a scan with
positional columns, followed by column-equality selections for repeated
variables, a rename to query variables and a projection to the distinct
variables of the atom.  The join order is chosen greedily so that each next
atom shares as many variables as possible with the atoms already joined
(falling back to a cartesian product only when the query is disconnected).

Two evaluation entry points are provided:

* :func:`evaluate_query_bag` — the bag answer through the plan; it must agree
  with the homomorphism-based :func:`repro.cq.evaluation.evaluate_bag` on
  every input, which is asserted by the integration tests;
* :func:`yannakakis_set_evaluation` — set-semantics evaluation of an acyclic
  query using the Yannakakis full reducer (semijoin passes along a join
  tree), the classical polynomial-time algorithm that the homomorphism
  counting DP of :mod:`repro.cq.homomorphism` mirrors on the counting side.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.cq.decompositions import is_acyclic, join_tree
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure
from repro.exceptions import DecompositionError, QueryError
from repro.ra.bagrel import BagRelation
from repro.ra.operators import (
    CountGroupOp,
    PlanNode,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectEqualColumnsOp,
    join_all,
)

BagAnswer = Dict[Tuple, int]


# ---------------------------------------------------------------------- #
# Storage bridge
# ---------------------------------------------------------------------- #
def bag_database(structure: Structure) -> Dict[str, BagRelation]:
    """View a set-semantics :class:`Structure` as a database of bag relations.

    Every stored tuple gets multiplicity one — the "input database is a set"
    half of bag-set semantics.  Column names are positional (``col0`` ...);
    scans rename them per atom.
    """
    database: Dict[str, BagRelation] = {}
    for name in structure.relations:
        arity = structure.arity(name)
        columns = tuple(f"col{i}" for i in range(arity))
        database[name] = BagRelation(
            attributes=columns,
            multiplicities={row: 1 for row in structure.tuples(name)},
        )
    return database


# ---------------------------------------------------------------------- #
# Atom and join-order compilation
# ---------------------------------------------------------------------- #
def atom_plan(atom: Atom, suffix: str = "") -> PlanNode:
    """Plan fragment producing the distinct variables bound by one atom.

    Scan with positional columns, equate columns carrying the same query
    variable, rename the first occurrence of each variable to the variable
    name, and project to the distinct variables.
    """
    columns = tuple(f"{atom.relation}{suffix}_p{i}" for i in range(atom.arity))
    plan: PlanNode = ScanOp(relation=atom.relation, columns=columns)
    first_position: Dict[str, str] = {}
    for column, variable in zip(columns, atom.args):
        if variable in first_position:
            plan = SelectEqualColumnsOp(
                child=plan, left=first_position[variable], right=column
            )
        else:
            first_position[variable] = column
    plan = RenameOp(
        child=plan,
        mapping=tuple((column, variable) for variable, column in first_position.items()),
    )
    return ProjectOp(child=plan, attributes=tuple(first_position))


def greedy_atom_order(query: ConjunctiveQuery) -> Tuple[Atom, ...]:
    """Order atoms so each next atom shares variables with the prefix when possible.

    Within ties the atom binding the most new variables first is preferred,
    which keeps intermediate join results narrow for the common path/star
    query shapes.
    """
    remaining: List[Atom] = list(query.atoms)
    if not remaining:
        raise QueryError("cannot order the atoms of an empty query")
    ordered: List[Atom] = []
    bound: set = set()

    def score(atom: Atom) -> Tuple[int, int]:
        shared = len(atom.variable_set & bound)
        new = len(atom.variable_set - bound)
        return (shared, -new)

    # Start from the atom with the most variables (largest anchor).
    first = max(remaining, key=lambda a: (len(a.variable_set), a.relation))
    ordered.append(first)
    bound |= first.variable_set
    remaining.remove(first)
    while remaining:
        best = max(remaining, key=lambda a: (score(a), a.relation))
        ordered.append(best)
        bound |= best.variable_set
        remaining.remove(best)
    return tuple(ordered)


def compile_query(query: ConjunctiveQuery) -> CountGroupOp:
    """Compile a conjunctive query to its ``CountGroup(Join(...))`` plan."""
    ordered = greedy_atom_order(query)
    fragments = [atom_plan(atom, suffix=f"_{index}") for index, atom in enumerate(ordered)]
    joined = join_all(fragments)
    return CountGroupOp(child=joined, group_attributes=tuple(query.head))


# ---------------------------------------------------------------------- #
# Evaluation entry points
# ---------------------------------------------------------------------- #
def evaluate_query_bag(query: ConjunctiveQuery, structure: Structure) -> BagAnswer:
    """Bag-set answer of ``query`` on ``structure`` through the plan pipeline.

    Agrees with the homomorphism-based evaluator on every input; the plan
    route exists so the two independent implementations cross-check each
    other and so the engine can be benchmarked on its own.
    """
    plan = compile_query(query)
    return plan.answer(bag_database(structure))


def evaluate_query_set(query: ConjunctiveQuery, structure: Structure) -> FrozenSet[Tuple]:
    """Set-semantics answer (the support of the bag answer)."""
    return frozenset(evaluate_query_bag(query, structure))


# ---------------------------------------------------------------------- #
# Yannakakis evaluation for acyclic queries
# ---------------------------------------------------------------------- #
def yannakakis_set_evaluation(
    query: ConjunctiveQuery, structure: Structure
) -> FrozenSet[Tuple]:
    """Set-semantics evaluation of an acyclic query via the Yannakakis algorithm.

    The three classical phases over a join tree of the query:

    1. bottom-up semijoin pass (each bag is reduced by its children),
    2. top-down semijoin pass (each bag is reduced by its parent),
    3. joins along the tree, projecting onto the head after each join so
       intermediate results stay polynomial.

    Raises :class:`DecompositionError` when the query is not acyclic.
    """
    if not is_acyclic(query):
        raise DecompositionError("Yannakakis evaluation requires an acyclic query")
    decomposition = join_tree(query)
    database = bag_database(structure)

    # Materialize one reduced bag relation per decomposition node: the join of
    # the atoms covered by that bag, projected onto the bag's variables.
    node_relations: Dict[object, BagRelation] = {}
    for node in decomposition.nodes:
        bag = decomposition.bag(node)
        atoms = [atom for atom in query.atoms if atom.variable_set <= bag]
        if not atoms:
            raise DecompositionError(
                f"join-tree bag {sorted(bag)} covers no atom; not a join tree"
            )
        fragments = [
            atom_plan(atom, suffix=f"_{node}_{index}").evaluate(database)
            for index, atom in enumerate(atoms)
        ]
        joined = fragments[0]
        for fragment in fragments[1:]:
            joined = joined.natural_join(fragment)
        node_relations[node] = joined.distinct()

    parents = dict(decomposition.rooted_parents())
    order = _topological_children_first(parents)

    # Bottom-up pass: reduce each parent by each child.
    for node in order:
        parent = parents.get(node)
        if parent is not None:
            node_relations[parent] = node_relations[parent].semijoin(node_relations[node])
    # Top-down pass: reduce each child by its parent.
    for node in reversed(order):
        parent = parents.get(node)
        if parent is not None:
            node_relations[node] = node_relations[node].semijoin(node_relations[parent])

    # Final join along the tree (children into parents, then across roots).
    head = tuple(query.head)
    keep = set(head)
    for node in order:
        parent = parents.get(node)
        if parent is None:
            continue
        merged = node_relations[parent].natural_join(node_relations[node])
        projection = [
            a
            for a in merged.attributes
            if a in keep or _still_needed(a, node, parents, decomposition, order)
        ]
        node_relations[parent] = merged.project(tuple(projection)).distinct()
    roots = [node for node in order if parents.get(node) is None]
    result = node_relations[roots[0]]
    for root in roots[1:]:
        result = result.natural_join(node_relations[root])
    projected = result.project(tuple(v for v in head if v in result.attribute_set))
    if tuple(projected.attributes) != head:
        # Head variables missing from the decomposition can only happen for
        # malformed queries; surface it rather than returning a wrong schema.
        missing = [v for v in head if v not in result.attribute_set]
        if missing:
            raise DecompositionError(f"head variables {missing} not covered by the join tree")
    return projected.support()


def _topological_children_first(parents: Dict[object, object]) -> List[object]:
    """Order nodes so every node appears before its parent."""
    depth: Dict[object, int] = {}

    def node_depth(node) -> int:
        if node in depth:
            return depth[node]
        parent = parents.get(node)
        depth[node] = 0 if parent is None else node_depth(parent) + 1
        return depth[node]

    nodes = list(parents)
    for node in nodes:
        node_depth(node)
    return sorted(nodes, key=lambda n: (-depth[n], str(n)))


def _still_needed(attribute, merged_node, parents, decomposition, order) -> bool:
    """Whether a non-head attribute can still participate in a later join."""
    for node in order:
        if node == merged_node:
            continue
        if attribute in decomposition.bag(node):
            return True
    return False
