"""Render conjunctive queries as the paper's ``COUNT(*) ... GROUP BY`` SQL.

Section 2.2 observes that the bag-set answer of a conjunctive query "is the
count(*)-groupby query in SQL".  This module makes that correspondence
concrete and testable: :func:`to_sql` emits the SQL text of a query, and
:func:`create_table_statements` emits the schema DDL of its vocabulary, so
that the examples can show users exactly which SQL a containment verdict is
talking about.

The generated SQL uses one table alias per atom, equality predicates between
alias columns for every shared or repeated variable, and groups by the head
columns.  Boolean queries become a plain ``SELECT COUNT(*)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cq.query import ConjunctiveQuery, Vocabulary
from repro.exceptions import QueryError


def _column_name(position: int) -> str:
    return f"a{position + 1}"


def create_table_statements(vocabulary: Vocabulary) -> List[str]:
    """``CREATE TABLE`` statements for every relation of the vocabulary."""
    statements = []
    for relation in vocabulary.relations():
        columns = ", ".join(
            f"{_column_name(i)} TEXT NOT NULL" for i in range(vocabulary.arity(relation))
        )
        statements.append(f"CREATE TABLE {relation} ({columns});")
    return statements


def _alias(relation: str, index: int) -> str:
    return f"{relation.lower()}{index}"


def to_sql(query: ConjunctiveQuery, pretty: bool = True) -> str:
    """The ``COUNT(*) ... GROUP BY`` SQL text of a conjunctive query.

    Every atom becomes an aliased table in the ``FROM`` clause; every
    occurrence of a variable after its first becomes an equality predicate in
    the ``WHERE`` clause; the head variables become the ``SELECT`` and
    ``GROUP BY`` columns, followed by ``COUNT(*)``.
    """
    if not query.atoms:
        raise QueryError("cannot render an empty query as SQL")
    from_items: List[str] = []
    predicates: List[str] = []
    first_site: Dict[str, str] = {}
    for index, atom in enumerate(query.atoms):
        alias = _alias(atom.relation, index)
        from_items.append(f"{atom.relation} AS {alias}")
        for position, variable in enumerate(atom.args):
            site = f"{alias}.{_column_name(position)}"
            if variable in first_site:
                predicates.append(f"{first_site[variable]} = {site}")
            else:
                first_site[variable] = site

    select_items = [f"{first_site[v]} AS {v}" for v in query.head]
    select_items.append("COUNT(*) AS multiplicity")
    group_items = [first_site[v] for v in query.head]

    separator = "\n" if pretty else " "
    clause_indent = "  " if pretty else ""
    parts = ["SELECT " + ", ".join(select_items)]
    parts.append("FROM " + (",%s" % (separator + clause_indent)).join(from_items))
    if predicates:
        joiner = separator + clause_indent + "AND "
        parts.append("WHERE " + joiner.join(predicates))
    if group_items:
        parts.append("GROUP BY " + ", ".join(group_items))
    return separator.join(parts) + ";"


def containment_check_sql(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> Tuple[str, str, str]:
    """SQL artefacts for explaining a containment question to a SQL audience.

    Returns the SQL of both queries plus a commented comparison query that a
    user could run against a concrete database to spot a violation of
    ``Q1 ⊑ Q2`` (a head tuple where ``Q1``'s count exceeds ``Q2``'s).
    """
    sql1 = to_sql(q1)
    sql2 = to_sql(q2)
    head = ", ".join(q1.head) if q1.head else "(no head variables)"
    comparison = (
        "-- Q1 ⊑ Q2 fails on a database exactly when this query returns a row:\n"
        "WITH q1 AS (\n" + _indent(sql1.rstrip(";")) + "\n),\n"
        "q2 AS (\n" + _indent(sql2.rstrip(";")) + "\n)\n"
        "SELECT q1.*, q2.multiplicity AS q2_multiplicity\n"
        "FROM q1 LEFT JOIN q2 USING (" + head + ")\n"
        "WHERE q1.multiplicity > COALESCE(q2.multiplicity, 0);"
    )
    return sql1, sql2, comparison


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
