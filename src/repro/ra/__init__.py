"""Bag relational algebra engine (``repro.ra``).

The paper phrases bag-set semantics as "the ``COUNT(*) ... GROUP BY`` query
in SQL" (Section 2.2).  This subpackage makes that reading executable: it
provides a small in-memory relational algebra over *bag relations* (rows with
multiplicities), a logical plan layer, and a compiler from conjunctive
queries to plans.  The engine is used as an independent evaluation substrate
that cross-checks the homomorphism-based evaluator of :mod:`repro.cq` and as
the workhorse of the Yannakakis-style acyclic evaluation benchmarks.

Public API
----------
* :class:`~repro.ra.bagrel.BagRelation` — multiset relation with the bag
  operators (projection, selection, natural join, union-all, difference,
  distinct, group-by count).
* :mod:`repro.ra.operators` — logical plan nodes with ``evaluate`` and
  ``explain``.
* :func:`~repro.ra.compile.compile_query` /
  :func:`~repro.ra.compile.evaluate_query_bag` — conjunctive query → plan →
  bag answer.
* :func:`~repro.ra.sql.to_sql` — the paper's count(*)-group-by SQL rendering
  of a conjunctive query.
"""

from repro.ra.bagrel import BagRelation
from repro.ra.operators import (
    CountGroupOp,
    DistinctOp,
    JoinOp,
    PlanNode,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectEqualColumnsOp,
    SelectEqualOp,
    UnionAllOp,
)
from repro.ra.compile import (
    bag_database,
    compile_query,
    evaluate_query_bag,
    evaluate_query_set,
    greedy_atom_order,
    yannakakis_set_evaluation,
)
from repro.ra.sql import create_table_statements, to_sql

__all__ = [
    "BagRelation",
    "PlanNode",
    "ScanOp",
    "RenameOp",
    "ProjectOp",
    "SelectEqualOp",
    "SelectEqualColumnsOp",
    "JoinOp",
    "DistinctOp",
    "UnionAllOp",
    "CountGroupOp",
    "bag_database",
    "compile_query",
    "evaluate_query_bag",
    "evaluate_query_set",
    "greedy_atom_order",
    "yannakakis_set_evaluation",
    "to_sql",
    "create_table_statements",
]
