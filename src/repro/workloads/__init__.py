"""Workload generators and the paper's named examples.

* :mod:`repro.workloads.generators` — parameterized families of conjunctive
  queries (paths, cycles, stars, cliques, random chordal queries with simple
  junction trees), random databases and random Max-IIs, used by the test
  suite and the benchmark harness;
* :mod:`repro.workloads.paper_examples` — every worked example of the paper
  as a ready-made object (Example 3.5, Example 3.8, Example 4.3 / Eric Vee,
  Example 5.2, Example A.2, the parity function of Example B.4 / E.2);
* :mod:`repro.workloads.graph_families` — the graph world of the prior work
  [21]: series-parallel patterns built compositionally, grids, fans, books,
  and graph databases (complete, path, cycle, bipartite, Erdős–Rényi).
"""

from repro.workloads.graph_families import (
    bipartite_graph_database,
    book_query,
    complete_graph_database,
    cycle_graph_database,
    diamond_query,
    fan_query,
    graph_database_from_edges,
    grid_query,
    path_graph_database,
    random_graph_database,
    series_parallel_query,
    theta_query,
)
from repro.workloads.generators import (
    clique_query,
    cycle_query,
    mixed_containment_pairs,
    path_query,
    random_chordal_simple_query,
    random_database,
    random_max_ii,
    random_query,
    star_query,
)
from repro.workloads.paper_examples import (
    chaudhuri_vardi_example,
    example_3_5,
    example_3_8_inequality,
    example_5_2_inequality,
    parity_example,
    vee_example,
)

__all__ = [
    "path_query",
    "cycle_query",
    "star_query",
    "clique_query",
    "random_query",
    "random_chordal_simple_query",
    "random_database",
    "random_max_ii",
    "mixed_containment_pairs",
    "vee_example",
    "example_3_5",
    "example_3_8_inequality",
    "example_5_2_inequality",
    "chaudhuri_vardi_example",
    "parity_example",
    "series_parallel_query",
    "diamond_query",
    "grid_query",
    "fan_query",
    "book_query",
    "theta_query",
    "complete_graph_database",
    "path_graph_database",
    "cycle_graph_database",
    "bipartite_graph_database",
    "random_graph_database",
    "graph_database_from_edges",
]
