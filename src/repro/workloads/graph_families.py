"""Graph-shaped query families and graph databases (Kopparty–Rossman setting).

The prior work the paper builds on ([21], homomorphism domination exponent)
lives entirely in the world of *graphs*: databases with a single binary
relation symbol.  This module provides that world as a workload source:

* **two-terminal series-parallel queries** — the class for which [21] proves
  decidability of domination against chordal queries; built compositionally
  from an edge by series and parallel composition;
* structured graph queries: grids, fans, books, theta graphs;
* graph *databases*: complete graphs, paths, cycles, balanced bipartite
  graphs and Erdős–Rényi random graphs as :class:`Structure` instances.

Every generator is deterministic given its arguments (random ones take a
seed), so the benchmarks built on top of them are reproducible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure
from repro.exceptions import QueryError

EDGE_RELATION = "R"


# ---------------------------------------------------------------------- #
# Series-parallel queries
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TwoTerminalGraph:
    """A two-terminal graph: edges plus a source and a sink vertex.

    Vertices are strings; edges are directed pairs feeding the single binary
    relation symbol of the graph vocabulary.
    """

    source: str
    sink: str
    edges: Tuple[Tuple[str, str], ...]

    def vertices(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for a, b in self.edges:
            for v in (a, b):
                if v not in seen:
                    seen.append(v)
        for v in (self.source, self.sink):
            if v not in seen:
                seen.append(v)
        return tuple(seen)

    def to_query(self, relation: str = EDGE_RELATION, name: str = None) -> ConjunctiveQuery:
        """The Boolean conjunctive query with one atom per edge."""
        if not self.edges:
            raise QueryError("a two-terminal graph needs at least one edge")
        atoms = tuple(Atom(relation, edge) for edge in self.edges)
        return ConjunctiveQuery(atoms=atoms, head=(), name=name or "sp_query")


def single_edge(prefix: str = "v") -> TwoTerminalGraph:
    """The single-edge two-terminal graph — the base case of SP composition."""
    return TwoTerminalGraph(
        source=f"{prefix}_s", sink=f"{prefix}_t", edges=((f"{prefix}_s", f"{prefix}_t"),)
    )


def _relabel(graph: TwoTerminalGraph, tag: str) -> TwoTerminalGraph:
    mapping = {v: f"{v}@{tag}" for v in graph.vertices()}
    return TwoTerminalGraph(
        source=mapping[graph.source],
        sink=mapping[graph.sink],
        edges=tuple((mapping[a], mapping[b]) for a, b in graph.edges),
    )


def _substitute(graph: TwoTerminalGraph, old: str, new: str) -> TwoTerminalGraph:
    def sub(v: str) -> str:
        return new if v == old else v

    return TwoTerminalGraph(
        source=sub(graph.source),
        sink=sub(graph.sink),
        edges=tuple((sub(a), sub(b)) for a, b in graph.edges),
    )


def series_composition(first: TwoTerminalGraph, second: TwoTerminalGraph) -> TwoTerminalGraph:
    """Series composition: identify the sink of ``first`` with the source of ``second``."""
    left = _relabel(first, "L")
    right = _relabel(second, "R")
    right = _substitute(right, right.source, left.sink)
    return TwoTerminalGraph(
        source=left.source, sink=right.sink, edges=left.edges + right.edges
    )


def parallel_composition(first: TwoTerminalGraph, second: TwoTerminalGraph) -> TwoTerminalGraph:
    """Parallel composition: identify the two sources and the two sinks."""
    left = _relabel(first, "L")
    right = _relabel(second, "R")
    right = _substitute(right, right.source, left.source)
    right = _substitute(right, right.sink, left.sink)
    return TwoTerminalGraph(
        source=left.source, sink=left.sink, edges=left.edges + right.edges
    )


SPSpec = Union[str, Tuple]


def series_parallel_graph(spec: SPSpec) -> TwoTerminalGraph:
    """Build a series-parallel graph from a nested specification.

    The specification grammar is ``"e"`` for a single edge,
    ``("s", spec, spec, ...)`` for series composition and
    ``("p", spec, spec, ...)`` for parallel composition.  For example the
    diamond (two parallel length-2 paths) is ``("p", ("s", "e", "e"), ("s",
    "e", "e"))``.
    """
    if spec == "e":
        return single_edge()
    if not isinstance(spec, tuple) or len(spec) < 3 or spec[0] not in ("s", "p"):
        raise QueryError(f"invalid series-parallel specification: {spec!r}")
    operator, *children = spec
    graphs = [series_parallel_graph(child) for child in children]
    combine = series_composition if operator == "s" else parallel_composition
    result = graphs[0]
    for graph in graphs[1:]:
        result = combine(result, graph)
    return result


def series_parallel_query(
    spec: SPSpec, relation: str = EDGE_RELATION, name: str = None
) -> ConjunctiveQuery:
    """The Boolean query of a series-parallel graph built from ``spec``."""
    graph = series_parallel_graph(spec)
    return graph.to_query(relation=relation, name=name or f"sp:{spec!r}")


def diamond_query(parallel_paths: int = 2, path_length: int = 2) -> ConjunctiveQuery:
    """``parallel_paths`` parallel directed paths of ``path_length`` edges each."""
    if parallel_paths < 1 or path_length < 1:
        raise QueryError("diamond queries need at least one path of at least one edge")
    path_spec: SPSpec = ("s", *(["e"] * path_length)) if path_length > 1 else "e"
    if parallel_paths == 1:
        spec: SPSpec = path_spec
    else:
        spec = ("p", *([path_spec] * parallel_paths))
    return series_parallel_query(spec, name=f"diamond_{parallel_paths}x{path_length}")


# ---------------------------------------------------------------------- #
# Other structured graph queries
# ---------------------------------------------------------------------- #
def grid_query(rows: int, cols: int, relation: str = EDGE_RELATION) -> ConjunctiveQuery:
    """The ``rows × cols`` grid query (right and down edges); cyclic for 2×2 and larger."""
    if rows < 1 or cols < 1:
        raise QueryError("grid dimensions must be positive")
    atoms: List[Atom] = []
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                atoms.append(Atom(relation, (f"g{i}_{j}", f"g{i}_{j + 1}")))
            if i + 1 < rows:
                atoms.append(Atom(relation, (f"g{i}_{j}", f"g{i + 1}_{j}")))
    if not atoms:
        raise QueryError("a 1×1 grid has no edges")
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=f"grid{rows}x{cols}")


def fan_query(blades: int, relation: str = EDGE_RELATION) -> ConjunctiveQuery:
    """The fan: a path ``x_0 … x_blades`` plus an apex adjacent to every path vertex.

    Fans are chordal; their junction trees have two-variable separators, so
    they fall *outside* the simple-junction-tree fragment — useful as
    negative examples for :func:`repro.cq.decompositions.has_simple_junction_tree`.
    """
    if blades < 1:
        raise QueryError("a fan needs at least one blade")
    atoms: List[Atom] = []
    for i in range(blades):
        atoms.append(Atom(relation, (f"x{i}", f"x{i + 1}")))
    for i in range(blades + 1):
        atoms.append(Atom(relation, ("apex", f"x{i}")))
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=f"fan{blades}")


def book_query(pages: int, relation: str = EDGE_RELATION) -> ConjunctiveQuery:
    """The book: ``pages`` triangles sharing one common edge (chordal, not simple)."""
    if pages < 1:
        raise QueryError("a book needs at least one page")
    atoms: List[Atom] = [Atom(relation, ("spine_a", "spine_b"))]
    for i in range(pages):
        atoms.append(Atom(relation, ("spine_a", f"page{i}")))
        atoms.append(Atom(relation, (f"page{i}", "spine_b")))
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=f"book{pages}")


def theta_query(path_lengths: Sequence[int], relation: str = EDGE_RELATION) -> ConjunctiveQuery:
    """The theta graph: internally disjoint paths between two shared endpoints."""
    if len(path_lengths) < 2 or any(length < 1 for length in path_lengths):
        raise QueryError("a theta graph needs at least two paths of positive length")
    atoms: List[Atom] = []
    for p, length in enumerate(path_lengths):
        previous = "theta_s"
        for i in range(length - 1):
            vertex = f"t{p}_{i}"
            atoms.append(Atom(relation, (previous, vertex)))
            previous = vertex
        atoms.append(Atom(relation, (previous, "theta_t")))
    return ConjunctiveQuery(
        atoms=tuple(atoms), head=(), name=f"theta{'_'.join(map(str, path_lengths))}"
    )


# ---------------------------------------------------------------------- #
# Graph databases
# ---------------------------------------------------------------------- #
def complete_graph_database(
    size: int, relation: str = EDGE_RELATION, with_loops: bool = False
) -> Structure:
    """The complete directed graph on ``size`` vertices as a database."""
    if size < 1:
        raise QueryError("a graph database needs at least one vertex")
    edges = {
        (i, j)
        for i, j in itertools.product(range(size), repeat=2)
        if with_loops or i != j
    }
    return Structure(domain=frozenset(range(size)), relations={relation: edges})


def path_graph_database(size: int, relation: str = EDGE_RELATION) -> Structure:
    """The directed path ``0 → 1 → … → size−1``."""
    if size < 2:
        raise QueryError("a path database needs at least two vertices")
    edges = {(i, i + 1) for i in range(size - 1)}
    return Structure(domain=frozenset(range(size)), relations={relation: edges})


def cycle_graph_database(size: int, relation: str = EDGE_RELATION) -> Structure:
    """The directed cycle on ``size`` vertices."""
    if size < 2:
        raise QueryError("a cycle database needs at least two vertices")
    edges = {(i, (i + 1) % size) for i in range(size)}
    return Structure(domain=frozenset(range(size)), relations={relation: edges})


def bipartite_graph_database(
    left: int, right: int, relation: str = EDGE_RELATION
) -> Structure:
    """The complete bipartite graph ``K_{left,right}`` with edges left → right."""
    if left < 1 or right < 1:
        raise QueryError("both sides of a bipartite database must be non-empty")
    left_nodes = [f"l{i}" for i in range(left)]
    right_nodes = [f"r{j}" for j in range(right)]
    edges = {(a, b) for a in left_nodes for b in right_nodes}
    return Structure(
        domain=frozenset(left_nodes + right_nodes), relations={relation: edges}
    )


def random_graph_database(
    size: int,
    edge_probability: float,
    seed: int = 0,
    relation: str = EDGE_RELATION,
) -> Structure:
    """An Erdős–Rényi ``G(size, p)`` directed graph database (no self-loops)."""
    if size < 1:
        raise QueryError("a graph database needs at least one vertex")
    if not 0.0 <= edge_probability <= 1.0:
        raise QueryError("edge probability must lie in [0, 1]")
    generator = random.Random(seed)
    edges = {
        (i, j)
        for i in range(size)
        for j in range(size)
        if i != j and generator.random() < edge_probability
    }
    return Structure(domain=frozenset(range(size)), relations={relation: edges})


def graph_database_from_edges(
    edges: Iterable[Tuple[object, object]],
    relation: str = EDGE_RELATION,
    domain: Optional[Iterable] = None,
) -> Structure:
    """Wrap an explicit edge list as a single-relation database."""
    edge_set = {tuple(edge) for edge in edges}
    if domain is None:
        domain = {value for edge in edge_set for value in edge}
    return Structure(domain=frozenset(domain), relations={relation: edge_set})
