"""Parameterized query families, random databases and random inequalities.

These generators drive the benchmarks of DESIGN.md (E7–E10) and the
property-based tests.  All of them are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.structures import Structure
from repro.infotheory.expressions import LinearExpression, MaxInformationInequality
from repro.utils.subsets import nonempty_subsets


# ---------------------------------------------------------------------- #
# Structured query families
# ---------------------------------------------------------------------- #
def path_query(length: int, relation: str = "R", name: str = None) -> ConjunctiveQuery:
    """The path query ``R(x0,x1) ∧ R(x1,x2) ∧ ... ∧ R(x_{length-1}, x_length)``.

    Path queries are acyclic and chordal with a simple junction tree; they
    are the canonical "containing query" of the decidable fragment.
    """
    if length < 1:
        raise ValueError("path length must be at least 1")
    atoms = [Atom(relation, (f"x{i}", f"x{i + 1}")) for i in range(length)]
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name or f"path{length}")


def cycle_query(length: int, relation: str = "R", name: str = None) -> ConjunctiveQuery:
    """The cycle query ``R(x0,x1) ∧ ... ∧ R(x_{length-1}, x0)`` (cyclic for length ≥ 3)."""
    if length < 2:
        raise ValueError("cycle length must be at least 2")
    atoms = [
        Atom(relation, (f"x{i}", f"x{(i + 1) % length}")) for i in range(length)
    ]
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name or f"cycle{length}")


def star_query(leaves: int, relation: str = "R", name: str = None) -> ConjunctiveQuery:
    """The star query ``R(c, x1) ∧ ... ∧ R(c, x_leaves)`` (acyclic, simple)."""
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    atoms = [Atom(relation, ("c", f"x{i}")) for i in range(1, leaves + 1)]
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name or f"star{leaves}")


def clique_query(size: int, relation: str = "R", name: str = None) -> ConjunctiveQuery:
    """The clique query with an ``R`` atom per ordered pair (chordal, one bag)."""
    if size < 2:
        raise ValueError("a clique needs at least two variables")
    atoms = []
    for i in range(size):
        for j in range(size):
            if i != j:
                atoms.append(Atom(relation, (f"x{i}", f"x{j}")))
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name or f"clique{size}")


def random_query(
    num_variables: int,
    num_atoms: int,
    relations: Sequence[Tuple[str, int]] = (("R", 2), ("S", 2)),
    seed: int = 0,
    name: str = "Qrand",
) -> ConjunctiveQuery:
    """A random conjunctive query over the given vocabulary.

    Every variable is forced to appear in at least one atom, so the query has
    exactly ``num_variables`` variables.
    """
    generator = random.Random(seed)
    variables = [f"x{i}" for i in range(num_variables)]
    atoms: List[Atom] = []
    for index in range(num_atoms):
        relation, arity = relations[generator.randrange(len(relations))]
        args = tuple(generator.choice(variables) for _ in range(arity))
        atoms.append(Atom(relation, args))
    # Ensure coverage of all variables.
    covered = {v for atom in atoms for v in atom.args}
    missing = [v for v in variables if v not in covered]
    while missing:
        relation, arity = relations[0]
        chunk = missing[:arity]
        while len(chunk) < arity:
            chunk.append(generator.choice(variables))
        atoms.append(Atom(relation, tuple(chunk)))
        covered.update(chunk)
        missing = [v for v in variables if v not in covered]
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name)


def random_chordal_simple_query(
    num_cliques: int,
    clique_size: int = 2,
    relation: str = "R",
    seed: int = 0,
    name: str = "Qchordal",
) -> ConjunctiveQuery:
    """A random chordal query that admits a *simple* junction tree.

    The query is built as a tree of cliques glued along single shared
    variables, so every junction-tree separator has size one — exactly the
    decidable fragment of Theorem 3.1.
    """
    if num_cliques < 1:
        raise ValueError("at least one clique is required")
    generator = random.Random(seed)
    atoms: List[Atom] = []
    clique_variables: List[List[str]] = []
    counter = 0
    for clique_index in range(num_cliques):
        if clique_index == 0:
            members = [f"y{counter + i}" for i in range(clique_size)]
            counter += clique_size
        else:
            glue_clique = clique_variables[generator.randrange(clique_index)]
            glue = generator.choice(glue_clique)
            members = [glue] + [f"y{counter + i}" for i in range(clique_size - 1)]
            counter += clique_size - 1
        clique_variables.append(members)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                atoms.append(Atom(relation, (left, right)))
        if len(members) == 1:
            atoms.append(Atom(relation, (members[0], members[0])))
    return ConjunctiveQuery(atoms=tuple(atoms), head=(), name=name)


# ---------------------------------------------------------------------- #
# Batch containment workloads
# ---------------------------------------------------------------------- #
def _rename_pair(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, tag: int
) -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """An isomorphic copy of a pair: every variable gets a fresh name.

    The rename is order-preserving (each variable keeps its first-occurrence
    position), so the copy exercises the structural-hash plan cache without
    perturbing any positional tie-breaking downstream.
    """
    renamed1 = q1.rename({v: f"{v}__iso{tag}" for v in q1.variables})
    renamed2 = q2.rename({v: f"{v}__iso{tag}" for v in q2.variables})
    return renamed1, renamed2


def _fresh_pair(
    generator: random.Random, index: int
) -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """One pair drawn from the mixed family catalogue."""
    family = generator.randrange(8)
    if family == 0:
        # Cycle ⊑ path: the paper's flagship CONTAINED instances (Thm 3.1 route).
        return (
            cycle_query(generator.randint(3, 5)),
            path_query(generator.randint(2, 3)),
        )
    if family == 1:
        # Path ⊑ path: contained when the right side is no longer.
        left = generator.randint(2, 4)
        right = generator.randint(2, 4)
        return path_query(left), path_query(right)
    if family == 2:
        # Clique ⊑ star / path: dense left sides through the complete procedure.
        left = clique_query(3)
        right = (
            star_query(generator.randint(1, 3))
            if generator.random() < 0.5
            else path_query(2)
        )
        return left, right
    if family == 3:
        # Random left side against a chordal-simple right side (Thm 3.1 route).
        q1 = random_query(
            num_variables=generator.randint(2, 4),
            num_atoms=generator.randint(2, 4),
            relations=(("R", 2),),
            seed=generator.randrange(1 << 30),
        )
        q2 = random_chordal_simple_query(
            num_cliques=generator.randint(1, 2),
            clique_size=2,
            seed=generator.randrange(1 << 30),
        )
        return q1, q2
    if family == 4:
        # Non-chordal right side (a 4-cycle): the general, sufficient-check route.
        q1 = random_query(
            num_variables=generator.randint(3, 4),
            num_atoms=generator.randint(3, 4),
            relations=(("R", 2),),
            seed=generator.randrange(1 << 30),
        )
        return q1, cycle_query(4)
    if family == 5:
        # Vocabulary mismatch: hom(Q2, Q1) = ∅, refuted without any LP.
        q1 = path_query(generator.randint(2, 3), relation="R")
        q2 = path_query(2, relation="S")
        return q1, q2
    if family == 6:
        # Head variables: exercises the Lemma A.1 Boolean reduction.
        length = generator.randint(2, 3)
        q1 = ConjunctiveQuery(
            atoms=path_query(length).atoms, head=("x0",), name=f"hpath{length}"
        )
        q2 = ConjunctiveQuery(atoms=path_query(2).atoms, head=("x0",), name="hpath2")
        return q1, q2
    # Star ⊑ star.
    return (
        star_query(generator.randint(1, 3)),
        star_query(generator.randint(1, 3)),
    )


def stream_containment_pairs(
    seed: int = 0,
    duplicate_fraction: float = 0.2,
    isomorphic_fraction: float = 0.2,
    history_window: int = 64,
) -> Iterator[Tuple[ConjunctiveQuery, ConjunctiveQuery]]:
    """An endless stream of mixed containment pairs (the soak-test source).

    Where :func:`mixed_containment_pairs` materializes a fixed batch, this
    generator never terminates: callers take as many pairs as their soak run
    wants (``itertools.islice``) and the daemon/batch layers consume them
    incrementally.  The traffic shape matches the batch version — fresh
    pairs from the family catalogue, salted with exact repeats and renamed
    isomorphic copies of *recent* pairs — except that the dup/iso salting
    draws from a sliding ``history_window`` instead of the full history, the
    way serving traffic repeats recently-hot queries rather than arbitrarily
    old ones.  Deterministic given ``seed``.
    """
    if history_window < 1:
        raise ValueError("history_window must be at least 1")
    generator = random.Random(seed)
    recent: List[Tuple[ConjunctiveQuery, ConjunctiveQuery]] = []
    emitted = 0
    while True:
        roll = generator.random()
        if recent and roll < duplicate_fraction:
            pair = recent[generator.randrange(len(recent))]
        elif recent and roll < duplicate_fraction + isomorphic_fraction:
            base = recent[generator.randrange(len(recent))]
            pair = _rename_pair(*base, tag=emitted)
        else:
            pair = _fresh_pair(generator, emitted)
            recent.append(pair)
            if len(recent) > history_window:
                del recent[0]
        emitted += 1
        yield pair


def mixed_containment_pairs(
    count: int,
    seed: int = 0,
    duplicate_fraction: float = 0.2,
    isomorphic_fraction: float = 0.2,
) -> List[Tuple[ConjunctiveQuery, ConjunctiveQuery]]:
    """A mixed batch-containment workload of ``count`` query pairs.

    The workload mimics high-volume serving traffic: a stream of pairs drawn
    from the paper's structured families (decidable Theorem 3.1 instances,
    general-route instances with non-chordal right sides, trivial
    no-homomorphism refutations, pairs with head variables), salted with
    exact repeats (``duplicate_fraction``) and freshly renamed isomorphic
    copies (``isomorphic_fraction``) of earlier pairs — the traffic shape the
    :mod:`repro.service` plan cache is built for.  Deterministic given
    ``seed``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    generator = random.Random(seed)
    pairs: List[Tuple[ConjunctiveQuery, ConjunctiveQuery]] = []
    originals: List[Tuple[ConjunctiveQuery, ConjunctiveQuery]] = []
    while len(pairs) < count:
        roll = generator.random()
        if originals and roll < duplicate_fraction:
            pairs.append(originals[generator.randrange(len(originals))])
        elif originals and roll < duplicate_fraction + isomorphic_fraction:
            base = originals[generator.randrange(len(originals))]
            pairs.append(_rename_pair(*base, tag=len(pairs)))
        else:
            pair = _fresh_pair(generator, len(pairs))
            originals.append(pair)
            pairs.append(pair)
    return pairs


# ---------------------------------------------------------------------- #
# Random databases
# ---------------------------------------------------------------------- #
def random_database(
    vocabulary: Dict[str, int],
    domain_size: int,
    tuples_per_relation: int,
    seed: int = 0,
) -> Structure:
    """A random database over ``[0, domain_size)`` with the given relation arities."""
    generator = random.Random(seed)
    facts = []
    for relation, arity in sorted(vocabulary.items()):
        for _ in range(tuples_per_relation):
            facts.append(
                (relation, tuple(generator.randrange(domain_size) for _ in range(arity)))
            )
    return Structure.from_facts(facts, domain=range(domain_size))


# ---------------------------------------------------------------------- #
# Random inequalities
# ---------------------------------------------------------------------- #
def random_max_ii(
    num_variables: int,
    num_branches: int,
    terms_per_branch: int = 3,
    coefficient_bound: int = 2,
    seed: int = 0,
) -> MaxInformationInequality:
    """A random Max-II with small integer coefficients.

    Used by the reduction and certificate benchmarks; no validity is implied.
    """
    generator = random.Random(seed)
    ground = tuple(f"X{i}" for i in range(1, num_variables + 1))
    subsets = [frozenset(s) for s in nonempty_subsets(ground)]
    branches = []
    for _ in range(num_branches):
        coefficients: Dict[frozenset, float] = {}
        for _ in range(terms_per_branch):
            subset = generator.choice(subsets)
            coefficient = generator.randint(-coefficient_bound, coefficient_bound)
            if coefficient:
                coefficients[subset] = coefficients.get(subset, 0.0) + coefficient
        if not coefficients:
            coefficients[subsets[0]] = 1.0
        branches.append(LinearExpression(ground=ground, coefficients=coefficients))
    return MaxInformationInequality(branches=tuple(branches))
