"""Every worked example of the paper, as ready-made objects.

These constructors are used by the tests (which check the paper's claims
verbatim) and by the benchmark harness (which regenerates the corresponding
rows of EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cq.parser import parse_query
from repro.cq.query import ConjunctiveQuery
from repro.cq.structures import Relation
from repro.infotheory.expressions import LinearExpression, MaxInformationInequality
from repro.infotheory.functions import parity_function
from repro.infotheory.setfunction import SetFunction


@dataclass(frozen=True)
class QueryPairExample:
    """A named query pair with the containment verdict the paper states."""

    name: str
    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    contained: bool
    notes: str = ""


def vee_example() -> QueryPairExample:
    """Example 4.3 (attributed to Eric Vee): the triangle is contained in the 2-path.

    ``Q1 = R(X1,X2) ∧ R(X2,X3) ∧ R(X3,X1)``,
    ``Q2 = R(Y1,Y2) ∧ R(Y1,Y3)``; the paper proves ``Q1 ⊑ Q2`` via the
    max-inequality of Example 3.8.
    """
    q1 = parse_query("R(X1,X2), R(X2,X3), R(X3,X1)", name="Q1_vee")
    q2 = parse_query("R(Y1,Y2), R(Y1,Y3)", name="Q2_vee")
    return QueryPairExample(
        name="example-4.3-vee",
        q1=q1,
        q2=q2,
        contained=True,
        notes="triangle ⊑ length-2 path; proved through Example 3.8",
    )


def example_3_5() -> QueryPairExample:
    """Example 3.5: a pair with a *normal* witness but no *product* witness.

    ``Q1`` consists of two disjoint ``A ∧ B ∧ C`` patterns and ``Q2`` is the
    acyclic query ``A(y1,y2) ∧ B(y1,y3) ∧ C(y4,y2)`` with the simple junction
    tree ``{y1,y3} − {y1,y2} − {y2,y4}``.  The paper shows ``Q1 ⋢ Q2`` with
    the normal witness ``{(u,u,v,v)}``.
    """
    q1 = parse_query(
        "A(x1,x2), B(x1,x2), C(x1,x2), A(xp1,xp2), B(xp1,xp2), C(xp1,xp2)",
        name="Q1_ex35",
    )
    q2 = parse_query("A(y1,y2), B(y1,y3), C(y4,y2)", name="Q2_ex35")
    return QueryPairExample(
        name="example-3.5",
        q1=q1,
        q2=q2,
        contained=False,
        notes="has a normal witness {(u,u,v,v)} but no product witness",
    )


def example_3_5_normal_witness(n: int = 2) -> Relation:
    """The normal witness relation ``P = {(u,u,v,v) : u,v ∈ [n]}`` of Example 3.5."""
    return Relation(
        attributes=("x1", "x2", "xp1", "xp2"),
        rows={(u, u, v, v) for u in range(n) for v in range(n)},
    )


def example_3_8_inequality(
    ground: Tuple[str, str, str] = ("X1", "X2", "X3")
) -> MaxInformationInequality:
    """Example 3.8: ``h(X1X2X3) ≤ max(E1, E2, E3)`` with three simple branches.

    ``E1 = h(X1X2) + h(X2|X1)``, ``E2 = h(X2X3) + h(X3|X2)``,
    ``E3 = h(X1X3) + h(X1|X3)``.  The paper proves it via submodularity; it is
    exactly the Eq. (8) inequality of the Vee example.
    """
    a, b, c = ground
    branches = []
    for first, second, third in ((a, b, c), (b, c, a), (c, a, b)):
        expression = LinearExpression.entropy_term(ground, {first, second})
        expression = expression + LinearExpression.conditional_term(
            ground, {second}, {first}
        )
        branches.append(expression)
    return MaxInformationInequality.containment_form(1.0, ground, branches)


def example_5_2_inequality() -> LinearExpression:
    """The information inequality (19) of Example 5.2.

    ``0 ≤ h(X1) + 2·h(X2) + h(X3) − h(X1X2) − h(X2X3)``
    (a valid Shannon inequality, used to illustrate the reduction of
    Section 5).
    """
    ground = ("X1", "X2", "X3")
    coefficients = {
        frozenset({"X1"}): 1.0,
        frozenset({"X2"}): 2.0,
        frozenset({"X3"}): 1.0,
        frozenset({"X1", "X2"}): -1.0,
        frozenset({"X2", "X3"}): -1.0,
    }
    return LinearExpression(ground=ground, coefficients=coefficients)


def chaudhuri_vardi_example() -> Tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Example A.2 (from Chaudhuri–Vardi): two queries with head variables.

    ``Q1(x,z) = P(x) ∧ S(u,x) ∧ S(v,z) ∧ R(z)`` and
    ``Q2(x,z) = P(x) ∧ S(u,y) ∧ S(v,y) ∧ R(z)``; the paper uses the pair to
    illustrate the Boolean-query reduction of Lemma A.1.
    """
    q1 = parse_query("Q1(x, z) :- P(x), S(u, x), S(v, z), R(z)")
    q2 = parse_query("Q2(x, z) :- P(x), S(u, y), S(v, y), R(z)")
    return q1, q2


def parity_example() -> SetFunction:
    """The parity function of Example B.4 / Example E.2 (entropic, not normal)."""
    return parity_function(("X1", "X2", "X3"))


def example_e2_queries() -> QueryPairExample:
    """Example E.2: identical triangle queries over three relation names.

    ``Q1 = Q2 = R(1,2) ∧ S(2,3) ∧ T(3,1)`` — containment trivially holds; the
    example illustrates why the locality property needs normal (rather than
    arbitrary entropic) counterexamples.
    """
    q1 = parse_query("R(X1,X2), S(X2,X3), T(X3,X1)", name="Q1_e2")
    q2 = parse_query("R(Y1,Y2), S(Y2,Y3), T(Y3,Y1)", name="Q2_e2")
    return QueryPairExample(
        name="example-E.2",
        q1=q1,
        q2=q2,
        contained=True,
        notes="identical queries; used to show the locality property can fail",
    )
