"""The user-facing batch containment service.

:class:`ContainmentService` is the serving layer over the batch engine: it
canonicalizes and deduplicates incoming pairs behind the structural-hash
plan cache, routes the unique survivors through the grouped block-LP engine,
and keeps service-level statistics across calls.  The module-level
:func:`decide_containment_many` wraps a one-shot service for the common
"decide this list of pairs" use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.containment import ContainmentResult
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import QueryError
from repro.obs import tracer as obs_tracer
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import PlanCache
from repro.service.canonical import pair_key
from repro.service.engine import BatchEngine, PipelineSpec
from repro.service.stats import ServiceStats

QueryPair = Tuple[ConjunctiveQuery, ConjunctiveQuery]

#: Methods whose results are not worth caching (no verdict was established
#: for reasons specific to this run, not to the pair).
_UNCACHEABLE_METHODS = frozenset({"budget-exhausted", "deadline-exceeded", "error"})

#: Sentinel distinguishing "no per-call deadline override" from None.
_USE_OPTIONS_DEADLINE = object()


def _pair_key_task(pair: QueryPair):
    """Module-level (hence picklable) canonicalization step for pool fan-out."""
    return pair_key(pair[0], pair[1])


@dataclass(frozen=True)
class BatchOptions:
    """Execution knobs of a :class:`ContainmentService`.

    ``method``, ``max_witness_rows`` and ``refutation_effort`` are forwarded
    to every pair's pipeline (same meaning as in
    :func:`repro.core.containment.decide_containment`).  ``chunk_size``,
    ``max_workers``, ``pair_budget``, ``on_error``, ``lp_method`` and ``lp_backend``
    configure the engine (see :class:`repro.service.engine.BatchEngine`;
    ``lp_method`` picks the ``Γn`` LP path — dense elemental matrix vs.
    lazy row generation — and ``lp_backend`` the solver backend, scipy's
    one-shot HiGHS vs. the native incremental ``highspy`` driver with
    ``"auto"`` preferring the latter when installed).
    ``cache_size`` bounds the plan cache (``None`` =
    unbounded) and ``canonicalize`` switches the isomorphism-aware dedup on
    or off (off, only the LP grouping remains).

    ``worker_mode`` (``"thread" | "process" | "auto"``) selects how the
    GIL-bound query-side pipeline stages are parallelized across
    ``max_workers`` — threads in-process, or worker processes advancing
    replayed pipelines while LP solving stays in-process (see
    :mod:`repro.service.engine`).  ``deadline`` is an optional wall-clock
    bound in seconds for each :meth:`ContainmentService.run` call: pairs
    still undecided when it expires are reported as UNKNOWN
    ``"deadline-exceeded"`` results in the batch report, never raised.
    """

    method: str = "auto"
    max_witness_rows: int = 1024
    refutation_effort: int = 1
    chunk_size: int = 32
    max_workers: int = 1
    pair_budget: Optional[float] = None
    on_error: str = "raise"
    cache_size: Optional[int] = 4096
    canonicalize: bool = True
    lp_method: str = "auto"
    lp_backend: str = "auto"
    worker_mode: str = "auto"
    deadline: Optional[float] = None


@dataclass(frozen=True)
class PairOutcome:
    """Provenance of one submitted pair's result.

    ``source`` is ``"solved"`` (the pair ran its own pipeline),
    ``"batch-dedup"`` (folded into an equivalent pair of the same batch) or
    ``"plan-cache"`` (answered from a previous call of the same service).
    """

    index: int
    result: ContainmentResult
    source: str
    key: Optional[Hashable] = None


@dataclass(frozen=True)
class BatchReport:
    """Everything :meth:`ContainmentService.run` knows about one batch."""

    results: Tuple[ContainmentResult, ...]
    outcomes: Tuple[PairOutcome, ...]
    stats: Dict[str, object] = field(default_factory=dict)


class ContainmentService:
    """A long-lived batch containment checker with a plan cache.

    >>> from repro import parse_query
    >>> from repro.service import ContainmentService
    >>> service = ContainmentService()
    >>> triangle = parse_query("R(x,y), R(y,z), R(z,x)")
    >>> vee = parse_query("R(a,b), R(a,c)")
    >>> report = service.run([(triangle, vee), (triangle, vee)])
    >>> [r.status.value for r in report.results]
    ['contained', 'contained']
    >>> report.outcomes[1].source
    'batch-dedup'
    """

    def __init__(
        self,
        options: Optional[BatchOptions] = None,
        registry: Optional[MetricsRegistry] = None,
        **overrides,
    ):
        if options is None:
            options = BatchOptions(**overrides)
        elif overrides:
            options = replace(options, **overrides)
        self.options = options
        # ``registry`` lets an owner (the daemon) expose this service's
        # counters on its own metrics registry; by default the stats carry a
        # private one.
        self.stats = ServiceStats(registry)
        self.cache = PlanCache(maxsize=options.cache_size)
        # In process mode the worker pool is as much long-lived warm state as
        # the plan cache: it lives on the service and is lent to each run's
        # engine, so a persistent service (e.g. the daemon) pays the worker
        # fork cost once, not per request.
        self._process_pool = None

    def _shared_process_pool(self):
        if self.options.worker_mode != "process" or self.options.max_workers <= 1:
            return None
        if self._process_pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._process_pool = ProcessPoolExecutor(
                max_workers=self.options.max_workers
            )
        return self._process_pool

    def close(self) -> None:
        """Release the shared worker-process pool (idempotent)."""
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def __enter__(self) -> "ContainmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _spec(self, q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> PipelineSpec:
        return PipelineSpec(
            q1=q1,
            q2=q2,
            method=self.options.method,
            max_witness_rows=self.options.max_witness_rows,
            refutation_effort=self.options.refutation_effort,
        )

    def run(
        self,
        pairs: Sequence[QueryPair],
        *,
        deadline: object = _USE_OPTIONS_DEADLINE,
    ) -> BatchReport:
        """Decide a batch of pairs; full provenance and a stats snapshot.

        ``deadline`` overrides :attr:`BatchOptions.deadline` for this call
        only (the daemon passes each request's remaining wall clock here).
        """
        started = time.perf_counter()
        options = self.options
        if deadline is _USE_OPTIONS_DEADLINE:
            deadline = options.deadline
        engine = BatchEngine(
            chunk_size=options.chunk_size,
            max_workers=options.max_workers,
            pair_budget=options.pair_budget,
            on_error=options.on_error,
            stats=self.stats,
            lp_method=options.lp_method,
            lp_backend=options.lp_backend,
            worker_mode=options.worker_mode,
            deadline=deadline,
            process_pool=self._shared_process_pool(),
        )
        self.stats.pairs_submitted += len(pairs)
        # One root span per service call: canonicalization, the plan-cache
        # pass and the engine's batch span all nest under it, so a traced run
        # is a single tree.
        with obs_tracer.span("request", pairs=len(pairs)):
            try:
                return self._run_with_engine(engine, pairs, started)
            finally:
                engine.close()  # a no-op for the borrowed shared pool

    def _run_with_engine(
        self, engine: BatchEngine, pairs: Sequence[QueryPair], started: float
    ) -> BatchReport:
        for q1, q2 in pairs:
            if not isinstance(q1, ConjunctiveQuery) or not isinstance(q2, ConjunctiveQuery):
                raise QueryError("pairs must be (ConjunctiveQuery, ConjunctiveQuery) tuples")

        # Canonical-labeling keys: pure GIL-bound query-side work, fanned out
        # over the engine's worker processes in process mode.
        with obs_tracer.span("canonicalize", pairs=len(pairs)):
            if self.options.canonicalize and pairs:
                keys = engine.map_query_side(_pair_key_task, pairs)
            else:
                keys = [None] * len(pairs)

        jobs: List[Tuple[QueryPair, Optional[Hashable]]] = []
        # Per input pair: ("cache", result) | ("job", job_index, source)
        placements: List[Tuple[str, object, str]] = []
        first_seen: Dict[Hashable, int] = {}
        with obs_tracer.span("plan-cache", pairs=len(pairs)) as cache_span:
            hits = duplicates = 0
            for (q1, q2), key in zip(pairs, keys):
                if key is not None:
                    cached = self.cache.get(key)
                    if cached is not None:
                        self.stats.cache_hits += 1
                        hits += 1
                        placements.append(("cache", cached, "plan-cache"))
                        continue
                    if key in first_seen:
                        self.stats.batch_duplicates += 1
                        duplicates += 1
                        placements.append(("job", first_seen[key], "batch-dedup"))
                        continue
                    first_seen[key] = len(jobs)
                placements.append(("job", len(jobs), "solved"))
                jobs.append(((q1, q2), key))
            cache_span.set(hits=hits, duplicates=duplicates)

        solved = engine.run_specs([self._spec(q1, q2) for (q1, q2), _ in jobs])
        for ((_, _), key), result in zip(jobs, solved):
            if key is not None and result.method not in _UNCACHEABLE_METHODS:
                self.cache.put(key, result)

        outcomes: List[PairOutcome] = []
        for index, (kind, payload, source) in enumerate(placements):
            if kind == "cache":
                result = payload
                key = None
            else:
                result = solved[payload]
                key = jobs[payload][1]
            outcomes.append(
                PairOutcome(index=index, result=result, source=source, key=key)
            )
        self.stats.wall_seconds += time.perf_counter() - started
        return BatchReport(
            results=tuple(outcome.result for outcome in outcomes),
            outcomes=tuple(outcomes),
            stats=self.stats.as_dict(),
        )

    def decide_many(self, pairs: Sequence[QueryPair]) -> List[ContainmentResult]:
        """Results only, in submission order (the batch counterpart of
        :func:`repro.core.containment.decide_containment`)."""
        return list(self.run(pairs).results)

    def decide(self, q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> ContainmentResult:
        """Single-pair convenience going through the same cache and engine."""
        return self.decide_many([(q1, q2)])[0]

    def clear_cache(self) -> None:
        self.cache.clear()


def decide_containment_many(
    pairs: Sequence[QueryPair],
    options: Optional[BatchOptions] = None,
    **overrides,
) -> List[ContainmentResult]:
    """Decide many ``Q1 ⊑ Q2`` pairs with dedup, plan caching and grouped LPs.

    Returns one :class:`ContainmentResult` per pair, in order, with statuses
    identical to a per-pair :func:`~repro.core.containment.decide_containment`
    loop.  Keyword overrides are :class:`BatchOptions` fields, e.g.
    ``decide_containment_many(pairs, chunk_size=64, max_workers=4)``.
    """
    return ContainmentService(options, **overrides).decide_many(pairs)
