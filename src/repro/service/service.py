"""The user-facing batch containment service.

:class:`ContainmentService` is the serving layer over the batch engine: it
canonicalizes and deduplicates incoming pairs behind the structural-hash
plan cache, routes the unique survivors through the grouped block-LP engine,
and keeps service-level statistics across calls.  The module-level
:func:`decide_containment_many` wraps a one-shot service for the common
"decide this list of pairs" use.

With :attr:`BatchOptions.store_path` set, the service also runs a durable
second tier behind the in-memory plan cache: a pair that misses the cache is
probed against the :class:`~repro.store.VerdictStore` (counted separately as
``store_hits``), a store hit is promoted back into the cache, and every
cacheable solved verdict is recorded to the store with provenance — so a
restarted service replays previously decided pairs without a single LP
solve.  Evidence from either tier is renamed onto the requesting pair's own
variable names (see :mod:`repro.service.evidence`).

The cache→store→solve tiering is diagrammed in ``docs/architecture.md``;
store operations are documented in ``docs/operations.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.containment import ContainmentResult
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import QueryError
from repro.obs import tracer as obs_tracer
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import PlanCache
from repro.service.canonical import PairLabelings, pair_key_with_labelings
from repro.service.engine import BatchEngine, PipelineSpec
from repro.service.evidence import rename_result, requester_mappings
from repro.service.stats import ServiceStats

QueryPair = Tuple[ConjunctiveQuery, ConjunctiveQuery]

#: Methods whose results are not worth caching (no verdict was established
#: for reasons specific to this run, not to the pair).
_UNCACHEABLE_METHODS = frozenset({"budget-exhausted", "deadline-exceeded", "error"})

#: Sentinel distinguishing "no per-call deadline override" from None.
_USE_OPTIONS_DEADLINE = object()


def _pair_key_task(pair: QueryPair):
    """Module-level (hence picklable) canonicalization step for pool fan-out."""
    return pair_key_with_labelings(pair[0], pair[1])


@dataclass(frozen=True)
class BatchOptions:
    """Execution knobs of a :class:`ContainmentService`.

    ``method``, ``max_witness_rows`` and ``refutation_effort`` are forwarded
    to every pair's pipeline (same meaning as in
    :func:`repro.core.containment.decide_containment`).  ``chunk_size``,
    ``max_workers``, ``pair_budget``, ``on_error``, ``lp_method`` and ``lp_backend``
    configure the engine (see :class:`repro.service.engine.BatchEngine`;
    ``lp_method`` picks the ``Γn`` LP path — dense elemental matrix vs.
    lazy row generation — and ``lp_backend`` the solver backend, scipy's
    one-shot HiGHS vs. the native incremental ``highspy`` driver with
    ``"auto"`` preferring the latter when installed).
    ``cache_size`` bounds the plan cache (``None`` =
    unbounded) and ``canonicalize`` switches the isomorphism-aware dedup on
    or off (off, only the LP grouping remains).

    ``worker_mode`` (``"thread" | "process" | "auto"``) selects how the
    GIL-bound query-side pipeline stages are parallelized across
    ``max_workers`` — threads in-process, or worker processes advancing
    replayed pipelines while LP solving stays in-process (see
    :mod:`repro.service.engine`).  ``deadline`` is an optional wall-clock
    bound in seconds for each :meth:`ContainmentService.run` call: pairs
    still undecided when it expires are reported as UNKNOWN
    ``"deadline-exceeded"`` results in the batch report, never raised.

    ``store_path`` points the service at a durable
    :class:`~repro.store.VerdictStore` behind the plan cache (``None`` = no
    persistence).  Requires ``canonicalize=True`` — the store is keyed by
    canonical pair keys.
    """

    method: str = "auto"
    max_witness_rows: int = 1024
    refutation_effort: int = 1
    chunk_size: int = 32
    max_workers: int = 1
    pair_budget: Optional[float] = None
    on_error: str = "raise"
    cache_size: Optional[int] = 4096
    canonicalize: bool = True
    lp_method: str = "auto"
    lp_backend: str = "auto"
    worker_mode: str = "auto"
    deadline: Optional[float] = None
    store_path: Optional[str] = None


@dataclass(frozen=True)
class PairOutcome:
    """Provenance of one submitted pair's result.

    ``source`` is ``"solved"`` (the pair ran its own pipeline),
    ``"batch-dedup"`` (folded into an equivalent pair of the same batch),
    ``"plan-cache"`` (answered from a previous call of the same service) or
    ``"store"`` (answered from the durable verdict store on disk).
    """

    index: int
    result: ContainmentResult
    source: str
    key: Optional[Hashable] = None


@dataclass(frozen=True)
class BatchReport:
    """Everything :meth:`ContainmentService.run` knows about one batch."""

    results: Tuple[ContainmentResult, ...]
    outcomes: Tuple[PairOutcome, ...]
    stats: Dict[str, object] = field(default_factory=dict)


class ContainmentService:
    """A long-lived batch containment checker with a plan cache.

    >>> from repro import parse_query
    >>> from repro.service import ContainmentService
    >>> service = ContainmentService()
    >>> triangle = parse_query("R(x,y), R(y,z), R(z,x)")
    >>> vee = parse_query("R(a,b), R(a,c)")
    >>> report = service.run([(triangle, vee), (triangle, vee)])
    >>> [r.status.value for r in report.results]
    ['contained', 'contained']
    >>> report.outcomes[1].source
    'batch-dedup'
    """

    def __init__(
        self,
        options: Optional[BatchOptions] = None,
        registry: Optional[MetricsRegistry] = None,
        **overrides,
    ):
        if options is None:
            options = BatchOptions(**overrides)
        elif overrides:
            options = replace(options, **overrides)
        self.options = options
        # ``registry`` lets an owner (the daemon) expose this service's
        # counters on its own metrics registry; by default the stats carry a
        # private one.
        self.stats = ServiceStats(registry)
        self.cache = PlanCache(maxsize=options.cache_size)
        self.store = None
        if options.store_path is not None:
            if not options.canonicalize:
                raise ValueError(
                    "the durable verdict store requires canonicalize=True "
                    "(it is keyed by canonical pair keys)"
                )
            from repro.store import VerdictStore

            self.store = VerdictStore(options.store_path)
            store = self.store
            self.stats.registry.gauge(
                "repro_store_entries",
                "Distinct verdicts held by the durable store.",
                callback=lambda: float(len(store)),
            )
        # In process mode the worker pool is as much long-lived warm state as
        # the plan cache: it lives on the service and is lent to each run's
        # engine, so a persistent service (e.g. the daemon) pays the worker
        # fork cost once, not per request.
        self._process_pool = None

    def _shared_process_pool(self):
        if self.options.worker_mode != "process" or self.options.max_workers <= 1:
            return None
        if self._process_pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._process_pool = ProcessPoolExecutor(
                max_workers=self.options.max_workers
            )
        return self._process_pool

    def close(self) -> None:
        """Release the worker-process pool and the verdict store (idempotent)."""
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        if self.store is not None:
            self.store.close()
            self.store = None

    def __enter__(self) -> "ContainmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _spec(self, q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> PipelineSpec:
        return PipelineSpec(
            q1=q1,
            q2=q2,
            method=self.options.method,
            max_witness_rows=self.options.max_witness_rows,
            refutation_effort=self.options.refutation_effort,
        )

    def run(
        self,
        pairs: Sequence[QueryPair],
        *,
        deadline: object = _USE_OPTIONS_DEADLINE,
    ) -> BatchReport:
        """Decide a batch of pairs; full provenance and a stats snapshot.

        ``deadline`` overrides :attr:`BatchOptions.deadline` for this call
        only (the daemon passes each request's remaining wall clock here).
        """
        started = time.perf_counter()
        options = self.options
        if deadline is _USE_OPTIONS_DEADLINE:
            deadline = options.deadline
        engine = BatchEngine(
            chunk_size=options.chunk_size,
            max_workers=options.max_workers,
            pair_budget=options.pair_budget,
            on_error=options.on_error,
            stats=self.stats,
            lp_method=options.lp_method,
            lp_backend=options.lp_backend,
            worker_mode=options.worker_mode,
            deadline=deadline,
            process_pool=self._shared_process_pool(),
        )
        self.stats.pairs_submitted += len(pairs)
        # One root span per service call: canonicalization, the plan-cache
        # pass and the engine's batch span all nest under it, so a traced run
        # is a single tree.
        with obs_tracer.span("request", pairs=len(pairs)):
            try:
                return self._run_with_engine(engine, pairs, started)
            finally:
                engine.close()  # a no-op for the borrowed shared pool

    def _run_with_engine(
        self, engine: BatchEngine, pairs: Sequence[QueryPair], started: float
    ) -> BatchReport:
        for q1, q2 in pairs:
            if not isinstance(q1, ConjunctiveQuery) or not isinstance(q2, ConjunctiveQuery):
                raise QueryError("pairs must be (ConjunctiveQuery, ConjunctiveQuery) tuples")

        # Canonical-labeling keys (with per-side labelings): pure GIL-bound
        # query-side work, fanned out over the engine's worker processes in
        # process mode.
        with obs_tracer.span("canonicalize", pairs=len(pairs)):
            if self.options.canonicalize and pairs:
                keyed = engine.map_query_side(_pair_key_task, pairs)
            else:
                keyed = [(None, None)] * len(pairs)

        jobs: List[Tuple[QueryPair, Optional[Hashable], Optional[PairLabelings]]] = []
        # Per input pair: ("hit", result, source) | ("job", job_index, source,
        # labelings) — hits resolve immediately, jobs after the engine run.
        placements: List[Tuple] = []
        first_seen: Dict[Hashable, int] = {}
        with obs_tracer.span("plan-cache", pairs=len(pairs)) as cache_span:
            hits = store_hits = duplicates = 0
            for (q1, q2), (key, labelings) in zip(pairs, keyed):
                if key is not None:
                    cached = self.cache.get(key, labelings)
                    if cached is not None:
                        self.stats.cache_hits += 1
                        hits += 1
                        placements.append(("hit", cached, "plan-cache"))
                        continue
                    if self.store is not None:
                        stored = self.store.get(key)
                        if stored is not None:
                            self.stats.store_hits += 1
                            store_hits += 1
                            # Promote the canonical entry into the memory tier,
                            # then rename onto this requester's variables.
                            self.cache.put(key, stored)
                            mapping1, mapping2 = requester_mappings(labelings)
                            placements.append(
                                ("hit", rename_result(stored, mapping1, mapping2), "store")
                            )
                            continue
                    if key in first_seen:
                        self.stats.batch_duplicates += 1
                        duplicates += 1
                        placements.append(
                            ("job", first_seen[key], "batch-dedup", labelings)
                        )
                        continue
                    first_seen[key] = len(jobs)
                placements.append(("job", len(jobs), "solved", labelings))
                jobs.append(((q1, q2), key, labelings))
            cache_span.set(hits=hits, store_hits=store_hits, duplicates=duplicates)

        solved = engine.run_specs([self._spec(q1, q2) for (q1, q2), _, _ in jobs])
        canonical_by_job: Dict[int, ContainmentResult] = {}
        for job_index, (((_, _), key, labelings), result) in enumerate(
            zip(jobs, solved)
        ):
            if key is None or result.method in _UNCACHEABLE_METHODS:
                continue
            canonical = self.cache.put(key, result, labelings)
            canonical_by_job[job_index] = canonical
            if self.store is not None:
                pair_seconds = None
                if job_index < len(engine.last_pair_seconds):
                    pair_seconds = engine.last_pair_seconds[job_index]
                self.store.record(
                    key,
                    canonical,
                    provenance={
                        "origin": "containment-service",
                        "backend": self.options.lp_backend,
                        "lp_method": self.options.lp_method,
                        "created_at": time.time(),
                        "pair_seconds": pair_seconds,
                    },
                )
        if self.store is not None:
            self.store.flush()

        outcomes: List[PairOutcome] = []
        for index, placement in enumerate(placements):
            if placement[0] == "hit":
                _, result, source = placement
                key = None
            else:
                _, job_index, source, labelings = placement
                result = solved[job_index]
                key = jobs[job_index][1]
                if source == "batch-dedup":
                    # The duplicate's evidence must be in *its* variables, not
                    # the variables of the batch-mate that ran the pipeline.
                    canonical = canonical_by_job.get(job_index)
                    if canonical is not None and labelings is not None:
                        mapping1, mapping2 = requester_mappings(labelings)
                        result = rename_result(canonical, mapping1, mapping2)
            outcomes.append(
                PairOutcome(index=index, result=result, source=source, key=key)
            )
        self.stats.wall_seconds += time.perf_counter() - started
        return BatchReport(
            results=tuple(outcome.result for outcome in outcomes),
            outcomes=tuple(outcomes),
            stats=self.stats.as_dict(),
        )

    def decide_many(self, pairs: Sequence[QueryPair]) -> List[ContainmentResult]:
        """Results only, in submission order (the batch counterpart of
        :func:`repro.core.containment.decide_containment`)."""
        return list(self.run(pairs).results)

    def decide(self, q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> ContainmentResult:
        """Single-pair convenience going through the same cache and engine."""
        return self.decide_many([(q1, q2)])[0]

    def clear_cache(self) -> None:
        self.cache.clear()


def decide_containment_many(
    pairs: Sequence[QueryPair],
    options: Optional[BatchOptions] = None,
    **overrides,
) -> List[ContainmentResult]:
    """Decide many ``Q1 ⊑ Q2`` pairs with dedup, plan caching and grouped LPs.

    Returns one :class:`ContainmentResult` per pair, in order, with statuses
    identical to a per-pair :func:`~repro.core.containment.decide_containment`
    loop.  Keyword overrides are :class:`BatchOptions` fields, e.g.
    ``decide_containment_many(pairs, chunk_size=64, max_workers=4)``.
    """
    return ContainmentService(options, **overrides).decide_many(pairs)
