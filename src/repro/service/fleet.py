"""A ring-sharded, deduping fleet of containment daemons behind one gateway.

One warm daemon is a ceiling: a single process, one plan cache, one socket.
The fleet removes it without touching the wire protocol.  N ordinary daemon
replicas (each a normal ``repro daemon run`` process on its own durable
store) sit behind a front-end **gateway** built on :mod:`asyncio` streams
that speaks the same JSONL protocol on both sides — any existing client
(``DaemonClient``, ``repro batch --daemon``, ``socat``) can point at the
gateway and see a single, faster daemon.

The gateway **dedups before it shards**: every pair in the incoming batch
is parsed and canonicalized through :func:`repro.service.canonical.pair_key`
(LRU-cached on the raw pair text), exact-duplicate *and* isomorphic pairs
fold onto one representative per canonical key, and only representatives
are dispatched.  The representative's verdict then fans back out to every
folded requester (``source="gateway-dedup"``).  This is sound for the same
reason the single-service dedup is: the paper's reduction makes bag
containment a property of the canonical pair alone (containment ⇔ a
max-information inequality over the canonicalized queries), and the wire
verdict — status, method, provenance, witness row count — is invariant
under variable renaming.  Evidence that *does* mention variables
(certificates, witness databases) lives replica-side in canonical
variables and is renamed into each requester's variables by the service
layer via :mod:`repro.service.evidence`; the gateway never has to undo a
renaming because the protocol never carries renamed payloads.

Routing is by **consistent-hash ring** (:mod:`repro.service.ring`): the
canonical key's structural hash is looked up on a ring with a configurable
number of virtual nodes per replica, deterministic from the manifest.
Structurally isomorphic pairs always land on the same replica, so every
replica's plan cache and verdict store concentrate on a stable shard of
the key space; and because drain/re-admit is a ring membership filter, a
replica leaving or rejoining moves only ~1/n of the keys instead of
remapping the whole space the way ``hash % n`` did — a re-warmed replica
comes back to a mostly-warm shard.  The gateway hashes the *canonical key*
rather than the raw pair text so the UCQ frontier can extend the pair
shape without touching the router.

A batch request is split into per-replica sub-batches, fanned out
concurrently — but with at most ``dispatch_parallelism`` sub-batches in
flight (default: the gateway host's CPU count).  Replicas started by
:func:`start_fleet` share the gateway host's cores, and dispatching more
concurrent CPU-bound solves than cores only interleaves them and thrashes
their working sets; operators running replicas on other hosts set the cap
to the fleet size.  Verdicts are stitched back together in the original
request order.  Failure handling:

* a replica whose connection drops mid-batch is **drained** (marked
  unhealthy, counted in ``repro_gateway_drain_events_total``) and its pairs
  are re-routed to the surviving replicas within the same request — a killed
  replica still yields a complete, correct batch report;
* a drained replica is **re-warmed**: the gateway's re-warmer merges the
  peers' stores into the replica's store (``repro cache export | import``
  semantics — first-wins records make the merge idempotent and order-free),
  respawns the daemon process, and re-admits it once it answers pings;
* a periodic health probe pings every replica (optionally auditing its
  store with :func:`repro.store.verify_store` every ``verify_every`` sweeps)
  and drains any replica that stops answering.

Deadlines propagate: the remaining budget (original deadline minus time
already spent in the gateway) is forwarded to each sub-batch, and pairs
whose budget is exhausted before a replica answers come back as UNKNOWN
``deadline-exceeded`` verdicts synthesized by the gateway — reassembly
never hangs on a late replica.

Process management mirrors the single daemon: :func:`start_fleet` spawns N
replicas (per-replica sockets and stores under one directory) plus a
detached gateway process, recording everything in a ``fleet.json``
manifest (including ``ring_vnodes``, so every gateway built from the same
manifest owns the identical ring); :func:`stop_fleet` tears the fleet down
gateway-first (so the probe loop cannot resurrect a replica mid-shutdown).

Consistency invariants (see ``docs/architecture.md`` for the layer map and
``docs/operations.md`` for the operator runbook):

* **request-order reassembly** — verdicts are returned indexed exactly as
  the pairs arrived, whatever replica answered them and however many
  re-route rounds it took;
* **first-wins appends** — re-warm merges peer stores with
  ``export | import`` semantics, so merging is idempotent and order-free;
* **dedup-evidence renaming** — gateway folding relies on wire verdicts
  being renaming-invariant; per-requester evidence renaming stays in
  :mod:`repro.service.evidence` on the replica side.

The fleet's place in the stack is diagrammed in ``docs/architecture.md``;
the operator runbook (lifecycle, drain/re-warm, failure modes, gateway
metric catalog) is ``docs/operations.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cq.parser import parse_query
from repro.exceptions import ReproError
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.service.canonical import pair_key
from repro.service.daemon import (
    DaemonClient,
    _clear_stale_socket,
    daemon_available,
    spawn_daemon,
    stop_daemon,
)
from repro.service.ring import DEFAULT_VNODES, HashRing
from repro.service.protocol import (
    PROTOCOL_VERSION,
    Address,
    BatchRequest,
    BatchResponse,
    ControlRequest,
    PairVerdict,
    ProtocolError,
    encode_batch_response,
    encode_request,
    encode_response,
    parse_address,
    parse_batch_response,
    parse_request,
    parse_response,
)
from repro.store import VerdictStore, structural_hash, verify_store


class FleetError(ReproError):
    """A fleet-level operational failure (manifest, spawn, or teardown)."""


#: Byte limit for one protocol line on the gateway's streams.  A 4096-pair
#: batch response with stats runs to a few hundred KB; asyncio's default
#: 64 KiB readline limit would truncate it.
_STREAM_LIMIT = 16 * 1024 * 1024

#: Name of the manifest file a running fleet keeps in its directory.
MANIFEST_NAME = "fleet.json"


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica endpoint: its name, address, and (optional) store path."""

    name: str
    address: str
    store_path: Optional[str] = None


class _ReplicaState:
    """The gateway's mutable view of one replica."""

    def __init__(self, spec: ReplicaSpec):
        self.spec = spec
        self.healthy = True
        self.recovering = False
        self.requests = 0
        self.pairs = 0
        self.drains = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "address": self.spec.address,
            "store": self.spec.store_path,
            "healthy": self.healthy,
            "recovering": self.recovering,
            "requests": self.requests,
            "pairs": self.pairs,
            "drains": self.drains,
        }


#: A re-warmer: bring ``spec`` back to life, warming its store from
#: ``peers``.  Runs in an executor thread (it may block on subprocesses).
Rewarmer = Callable[[ReplicaSpec, Sequence[ReplicaSpec]], None]


class FleetGateway:
    """Route batches across daemon replicas by structural hash.

    The gateway is transport-complete on its own: :meth:`handle_batch` (and
    :meth:`handle_line`) can be driven directly under ``asyncio.run`` in
    tests, and :meth:`serve` binds the asyncio-streams front door.
    """

    def __init__(
        self,
        replicas: Sequence[ReplicaSpec],
        *,
        probe_interval: Optional[float] = 2.0,
        probe_timeout: float = 2.0,
        verify_every: int = 0,
        replica_timeout: Optional[float] = None,
        reply_margin: float = 5.0,
        rewarmer: Optional[Rewarmer] = None,
        registry: Optional[MetricsRegistry] = None,
        hash_cache_size: int = 4096,
        ring_vnodes: int = DEFAULT_VNODES,
        dispatch_parallelism: Optional[int] = None,
    ):
        if not replicas:
            raise FleetError("a fleet gateway needs at least one replica")
        names = [spec.name for spec in replicas]
        if len(set(names)) != len(names):
            raise FleetError(f"replica names must be unique, got {names}")
        if dispatch_parallelism is None:
            # Replicas started by ``start_fleet`` share this host's cores:
            # dispatching more concurrent CPU-bound sub-batches than cores
            # only interleaves the solves and thrashes their working sets.
            # Operators running replicas on *other* hosts should pass the
            # fleet size explicitly.
            dispatch_parallelism = max(1, os.cpu_count() or 1)
        if dispatch_parallelism < 1:
            raise FleetError("dispatch_parallelism must be positive (or None)")
        self._states = [_ReplicaState(spec) for spec in replicas]
        try:
            self._ring = HashRing(names, vnodes=ring_vnodes)
        except ValueError as error:
            raise FleetError(str(error)) from error
        self._replica_index = {spec.name: i for i, spec in enumerate(replicas)}
        self.dispatch_parallelism = dispatch_parallelism
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.verify_every = verify_every
        self.replica_timeout = replica_timeout
        self.reply_margin = reply_margin
        self._rewarmer = rewarmer
        self.address: Optional[Address] = None
        self.started_at = time.monotonic()
        self.requests_served = 0
        self._stop_requested = False
        self._stopping: Optional[asyncio.Event] = None
        self._bound_inode: Optional[int] = None
        self._hash_cache: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self._hash_cache_size = hash_cache_size

        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests_total = self.registry.counter(
            "repro_gateway_requests_total",
            "Batch requests handled by the gateway, by outcome.",
            labelnames=("outcome",),
        )
        self._replica_requests = self.registry.counter(
            "repro_gateway_replica_requests_total",
            "Sub-batches dispatched to each replica.",
            labelnames=("replica",),
        )
        self._pairs_routed = self.registry.counter(
            "repro_gateway_pairs_routed_total",
            "Pairs routed to each replica.",
            labelnames=("replica",),
        )
        self._drain_events = self.registry.counter(
            "repro_gateway_drain_events_total",
            "Times each replica was drained (probe failure or mid-batch loss).",
            labelnames=("replica",),
        )
        self._readmit_events = self.registry.counter(
            "repro_gateway_readmit_total",
            "Times each replica was re-admitted after a drain.",
            labelnames=("replica",),
        )
        self._deadline_pairs = self.registry.counter(
            "repro_gateway_deadline_pairs_total",
            "Pairs answered with gateway-synthesized deadline-exceeded verdicts.",
        )
        self._dedup_folded = self.registry.counter(
            "repro_gateway_dedup_folded_total",
            "Pairs folded onto a canonical-key representative before dispatch.",
        )
        self._ring_reroutes = self.registry.counter(
            "repro_gateway_ring_reroutes_total",
            "Pairs routed past a drained primary owner to a ring fallback.",
            labelnames=("replica",),
        )
        self.registry.gauge(
            "repro_gateway_ring_points",
            "Virtual nodes on the routing ring (replicas x vnodes).",
            callback=lambda: float(len(self._ring)),
        )
        self.registry.gauge(
            "repro_gateway_dispatch_parallelism",
            "Cap on concurrently in-flight sub-batch dispatches.",
            callback=lambda: float(self.dispatch_parallelism),
        )
        self._subbatch_pairs = self.registry.histogram(
            "repro_gateway_subbatch_pairs",
            "Pairs per dispatched sub-batch (the routing histogram).",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        )
        self._request_seconds = self.registry.histogram(
            "repro_gateway_request_seconds",
            "Wall-clock seconds per gateway batch request.",
            buckets=LATENCY_BUCKETS,
        )
        self.registry.gauge(
            "repro_gateway_replicas_healthy",
            "Replicas currently admitted for routing.",
            callback=lambda: float(
                sum(1 for state in self._states if state.healthy)
            ),
        )
        self.registry.gauge(
            "repro_gateway_uptime_seconds",
            "Seconds since the gateway started.",
            callback=lambda: time.monotonic() - self.started_at,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route_hashes(self, pairs) -> List[int]:
        """The structural-hash routing integer for every pair (parses)."""
        out = []
        for spec in pairs:
            cache_key = (spec.q1, spec.q2)
            value = self._hash_cache.get(cache_key)
            if value is None:
                key = pair_key(
                    parse_query(spec.q1, name="Q1"),
                    parse_query(spec.q2, name="Q2"),
                )
                value = int(structural_hash(key), 16)
                self._hash_cache[cache_key] = value
                if len(self._hash_cache) > self._hash_cache_size:
                    self._hash_cache.popitem(last=False)
            else:
                self._hash_cache.move_to_end(cache_key)
            out.append(value)
        return out

    def _replica_for(self, hash_int: int, candidates: Sequence[int]) -> int:
        """The ring owner among the admitted candidates.

        When every replica is admitted this is the key's primary owner;
        while some are drained the ring walks clockwise past their points,
        so only the drained members' keys move (~1/n of the space each)
        and they snap back on re-admit.  Fallback routing is counted in
        ``repro_gateway_ring_reroutes_total``.
        """
        eligible = [self._states[i].spec.name for i in candidates]
        owner = self._ring.owner(hash_int, eligible)
        if len(candidates) != len(self._states) and owner != self._ring.owner(hash_int):
            self._ring_reroutes.inc(replica=owner)
        return self._replica_index[owner]

    # ------------------------------------------------------------------ #
    # The batch path
    # ------------------------------------------------------------------ #
    async def handle_batch(self, request: BatchRequest) -> BatchResponse:
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            hashes = await loop.run_in_executor(
                None, self._route_hashes, request.pairs
            )
        except ReproError as error:
            self._requests_total.inc(outcome="parse-error")
            return BatchResponse(ok=False, error=f"unparseable pair: {error}")

        deadline = request.deadline_seconds
        verdicts: List[Optional[PairVerdict]] = [None] * len(request.pairs)
        stats_parts: List[Dict[str, object]] = []
        degraded = False
        synthesized = 0

        # Fold duplicates before sharding: one representative per canonical
        # key is dispatched; every later occurrence (exact duplicate or a
        # variable-renamed isomorph — same key either way) is answered by
        # fanning the representative's verdict back out.  The wire verdict
        # is renaming-invariant, so the fan-out is a pure re-index; see the
        # module docstring for why this is sound.
        first_seen: Dict[int, int] = {}
        folds: Dict[int, List[int]] = {}
        pending: "OrderedDict[int, int]" = OrderedDict()
        for index, hash_int in enumerate(hashes):
            representative = first_seen.setdefault(hash_int, index)
            if representative == index:
                pending[index] = hash_int
            else:
                folds.setdefault(representative, []).append(index)
        folded = len(request.pairs) - len(pending)
        if folded:
            self._dedup_folded.inc(folded)

        def settle(original: int, verdict: PairVerdict) -> None:
            verdicts[original] = replace(verdict, index=original)
            for duplicate in folds.get(original, ()):
                verdicts[duplicate] = replace(
                    verdict, index=duplicate, source="gateway-dedup"
                )

        def settle_deadline(original: int) -> int:
            verdicts[original] = _deadline_verdict(original)
            count = 1
            for duplicate in folds.get(original, ()):
                verdicts[duplicate] = _deadline_verdict(duplicate)
                count += 1
            return count

        while pending:
            candidates = [
                index
                for index, state in enumerate(self._states)
                if state.healthy
            ]
            if not candidates:
                self._requests_total.inc(outcome="no-replicas")
                return BatchResponse(
                    ok=False,
                    error="no healthy replicas available",
                    stats=_merge_stats(stats_parts),
                )
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - started)
                if remaining <= 0:
                    for index in pending:
                        synthesized += settle_deadline(index)
                    pending.clear()
                    break
            groups: "OrderedDict[int, List[int]]" = OrderedDict()
            for index, hash_int in pending.items():
                replica = self._replica_for(hash_int, candidates)
                groups.setdefault(replica, []).append(index)
            # Bound in-flight dispatches at the host's effective parallelism
            # (the semaphore is per-round so the gateway can be driven from
            # any event loop).  A queued dispatch re-computes its deadline
            # budget when its slot opens — the time spent waiting behind
            # other shards is part of the request's budget, not a bonus.
            slots = asyncio.Semaphore(self.dispatch_parallelism)

            async def bounded(
                replica: int, indices: List[int]
            ) -> Tuple[str, int, List[int], object]:
                async with slots:
                    budget = remaining
                    if deadline is not None:
                        budget = deadline - (time.monotonic() - started)
                        if budget <= 0:
                            return ("deadline", replica, indices, None)
                    return await self._dispatch(replica, indices, request, budget)

            results = await asyncio.gather(
                *(bounded(replica, indices) for replica, indices in groups.items())
            )
            pending_before = len(pending)
            drained_this_round = False
            for tag, replica, indices, payload in results:
                if tag == "ok":
                    sub: BatchResponse = payload
                    if not sub.ok:
                        # An explicit refusal (queue-full shed, internal
                        # error) applies to the whole request: forward it.
                        outcome = "shed" if sub.shed else "replica-error"
                        self._requests_total.inc(outcome=outcome)
                        return BatchResponse(
                            ok=False,
                            error=sub.error,
                            shed=sub.shed,
                            stats=_merge_stats(stats_parts + [sub.stats]),
                        )
                    degraded = degraded or sub.degraded
                    stats_parts.append(sub.stats)
                    for verdict in sub.verdicts:
                        original = indices[verdict.index]
                        settle(original, verdict)
                        pending.pop(original, None)
                    # A conforming daemon answers every pair; tolerate a
                    # short response by re-routing whatever it skipped.
                elif tag == "deadline":
                    for index in indices:
                        synthesized += settle_deadline(index)
                        pending.pop(index, None)
                else:  # "failed": transport loss — drain and re-route.
                    self._drain(replica, str(payload))
                    drained_this_round = True
                    degraded = True
            if len(pending) == pending_before and not drained_this_round:
                # A replica answered "ok" without resolving anything; the
                # shard map cannot change, so looping again would spin.
                self._requests_total.inc(outcome="replica-error")
                return BatchResponse(
                    ok=False,
                    error="replicas answered without resolving any pairs",
                    stats=_merge_stats(stats_parts),
                )

        if synthesized:
            self._deadline_pairs.inc(synthesized)
        self.requests_served += 1
        self._requests_total.inc(outcome="degraded" if degraded else "ok")
        self._request_seconds.observe(time.monotonic() - started)
        stats = _merge_stats(stats_parts)
        # Replicas only saw representatives, and their snapshots are summed
        # numerically, so the merged pair total must be restated at the
        # gateway: the authoritative count for this request is the number of
        # pairs the client sent, with the fold accounted separately.
        stats["pairs_submitted"] = len(request.pairs)
        stats["gateway"] = {
            "pairs_received": len(request.pairs),
            "dedup_folded": folded,
            "representatives_dispatched": len(request.pairs) - folded,
            "deadline_synthesized": synthesized,
        }
        return BatchResponse(
            ok=True,
            verdicts=tuple(verdicts),
            stats=stats,
            degraded=degraded,
        )

    async def _dispatch(
        self,
        replica: int,
        indices: List[int],
        request: BatchRequest,
        remaining: Optional[float],
    ) -> Tuple[str, int, List[int], object]:
        """Send one sub-batch; returns ``(tag, replica, indices, payload)``.

        ``tag`` is ``"ok"`` (payload: the :class:`BatchResponse`),
        ``"deadline"`` (the budget ran out waiting) or ``"failed"``
        (payload: the transport error message — the caller drains and
        re-routes).
        """
        state = self._states[replica]
        sub = BatchRequest(
            pairs=tuple(request.pairs[i] for i in indices),
            deadline_seconds=remaining,
            priority=request.priority,
        )
        timeout = self.replica_timeout
        if remaining is not None:
            budget = remaining + self.reply_margin
            timeout = budget if timeout is None else min(timeout, budget)
        state.requests += 1
        state.pairs += len(indices)
        self._replica_requests.inc(replica=state.spec.name)
        self._pairs_routed.inc(len(indices), replica=state.spec.name)
        self._subbatch_pairs.observe(len(indices))
        try:
            line = await asyncio.wait_for(
                self._replica_roundtrip(state.spec, encode_request(sub)),
                timeout,
            )
            return ("ok", replica, indices, parse_batch_response(line))
        except asyncio.TimeoutError:
            if remaining is not None:
                # The request's own deadline expired: these pairs are
                # answered by the gateway, not re-routed.
                return ("deadline", replica, indices, None)
            return ("failed", replica, indices, f"timed out after {timeout}s")
        except (OSError, ConnectionError, ProtocolError, ValueError) as error:
            return ("failed", replica, indices, f"{type(error).__name__}: {error}")

    async def _replica_roundtrip(self, spec: ReplicaSpec, line: str) -> bytes:
        """One request/response line against a replica (fresh connection)."""
        address = parse_address(spec.address)
        if address.kind == "unix":
            reader, writer = await asyncio.open_unix_connection(
                address.path, limit=_STREAM_LIMIT
            )
        else:
            reader, writer = await asyncio.open_connection(
                address.host, address.port, limit=_STREAM_LIMIT
            )
        try:
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()
            data = await reader.readline()
            if not data:
                raise ConnectionError(
                    f"replica {spec.name} closed the connection mid-request"
                )
            return data
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------ #
    # Health: drain / re-warm / re-admit
    # ------------------------------------------------------------------ #
    def _drain(self, replica: int, reason: str) -> None:
        state = self._states[replica]
        if not state.healthy:
            return
        state.healthy = False
        state.drains += 1
        self._drain_events.inc(replica=state.spec.name)
        self._log(f"drained replica {state.spec.name}: {reason}")
        if self._rewarmer is not None and not state.recovering:
            state.recovering = True
            asyncio.get_running_loop().create_task(self._recover(replica))

    def _readmit(self, state: _ReplicaState) -> None:
        if state.healthy:
            return
        state.healthy = True
        self._readmit_events.inc(replica=state.spec.name)
        self._log(f"re-admitted replica {state.spec.name}")

    async def _recover(self, replica: int) -> None:
        """Re-warm a drained replica and re-admit it once it answers."""
        state = self._states[replica]
        loop = asyncio.get_running_loop()
        try:
            peers = [
                other.spec
                for index, other in enumerate(self._states)
                if index != replica
            ]
            try:
                await loop.run_in_executor(
                    None, self._rewarmer, state.spec, peers
                )
            except Exception as error:  # the probe loop will retry later
                self._log(
                    f"re-warm of replica {state.spec.name} failed: {error!r}"
                )
                return
            if await self._ping_replica(state):
                self._readmit(state)
        finally:
            state.recovering = False

    async def _ping_replica(self, state: _ReplicaState) -> bool:
        try:
            line = await asyncio.wait_for(
                self._replica_roundtrip(
                    state.spec, encode_request(ControlRequest("ping"))
                ),
                self.probe_timeout,
            )
            return bool(parse_response(line).get("ok"))
        except Exception:
            return False

    def _store_passes_audit(self, spec: ReplicaSpec) -> bool:
        try:
            with VerdictStore(spec.store_path) as store:
                return verify_store(store).ok
        except Exception:
            return False

    async def _probe_loop(self) -> None:
        sweeps = 0
        while True:
            await asyncio.sleep(self.probe_interval)
            sweeps += 1
            audit = self.verify_every > 0 and sweeps % self.verify_every == 0
            loop = asyncio.get_running_loop()
            for index, state in enumerate(self._states):
                if state.recovering:
                    continue
                alive = await self._ping_replica(state)
                if alive and audit and state.spec.store_path:
                    alive = await loop.run_in_executor(
                        None, self._store_passes_audit, state.spec
                    )
                    if not alive and state.healthy:
                        self._drain(index, "store failed its verify sweep")
                        continue
                if state.healthy and not alive:
                    self._drain(index, "health probe went unanswered")
                elif not state.healthy and alive:
                    # An operator (or the re-warmer in a prior loop) brought
                    # it back: readmit without waiting for a recover task.
                    self._readmit(state)

    # ------------------------------------------------------------------ #
    # The front door
    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, object]:
        return {
            "role": "gateway",
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "address": str(self.address) if self.address else None,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "requests_served": self.requests_served,
            "fleet_size": len(self._states),
            "healthy_replicas": sum(1 for s in self._states if s.healthy),
            "replicas": [state.snapshot() for state in self._states],
        }

    async def handle_line(self, line: bytes) -> str:
        try:
            request = parse_request(line)
        except ProtocolError as error:
            return encode_response({"ok": False, "error": str(error)})
        if isinstance(request, ControlRequest):
            if request.op == "ping":
                return encode_response(
                    {"ok": True, "op": "ping", "pid": os.getpid(), "role": "gateway"}
                )
            if request.op == "status":
                return encode_response({"ok": True, **self.status()})
            if request.op == "metrics":
                return encode_response(
                    {
                        "ok": True,
                        "content_type": "text/plain; version=0.0.4",
                        "body": self.registry.render(),
                    }
                )
            # "stop": ack now; the connection loop unlinks and shuts down.
            self._stop_requested = True
            return encode_response({"ok": True, "stopping": True})
        try:
            return encode_batch_response(await self.handle_batch(request))
        except Exception as error:  # never leave a client hanging
            return encode_batch_response(
                BatchResponse(ok=False, error=f"gateway internal error: {error!r}")
            )

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self.handle_line(line)
                stopping = self._stop_requested
                if stopping:
                    # Mirror the daemon: unlink before the ack so a starter
                    # polling the path cannot race a half-dead gateway.
                    self._unlink_socket()
                try:
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                except (ConnectionError, BrokenPipeError):
                    break
                if stopping:
                    if self._stopping is not None:
                        self._stopping.set()
                    break
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def serve(self, address: Address, ready_callback=None) -> None:
        """Bind the gateway at ``address`` and serve until ``stop``."""
        self.address = address
        self._stopping = asyncio.Event()
        self._bound_inode = None
        if address.kind == "unix":
            _clear_stale_socket(address)
            server = await asyncio.start_unix_server(
                self._on_client, path=address.path, limit=_STREAM_LIMIT
            )
            with contextlib.suppress(OSError):
                self._bound_inode = os.lstat(address.path).st_ino
        else:
            server = await asyncio.start_server(
                self._on_client,
                host=address.host,
                port=address.port,
                limit=_STREAM_LIMIT,
            )
        probe_task = (
            asyncio.ensure_future(self._probe_loop())
            if self.probe_interval
            else None
        )
        try:
            if ready_callback is not None:
                ready_callback(self)
            async with server:
                await self._stopping.wait()
        finally:
            if probe_task is not None:
                probe_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await probe_task
            server.close()
            await server.wait_closed()
            self._unlink_socket()

    def _unlink_socket(self) -> None:
        """Unlink our bound socket path (inode-guarded, idempotent)."""
        address = self.address
        if address is None or address.kind != "unix":
            return
        try:
            if (
                self._bound_inode is not None
                and os.lstat(address.path).st_ino != self._bound_inode
            ):
                return  # someone else owns the path now
            os.unlink(address.path)
        except OSError:
            pass

    @staticmethod
    def _log(message: str) -> None:
        print(f"[gateway] {message}", file=sys.stderr, flush=True)


def _deadline_verdict(index: int) -> PairVerdict:
    return PairVerdict(
        index=index,
        status="unknown",
        method="deadline-exceeded",
        source="gateway",
    )


def _merge_stats(parts: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Sum the replicas' numeric stats snapshots (nested dicts included)."""
    merged: Dict[str, object] = {}
    for stats in parts:
        if not isinstance(stats, dict):
            continue
        _merge_into(merged, stats)
    return merged


def _merge_into(target: Dict[str, object], source: Dict[str, object]) -> None:
    for key, value in source.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            current = target.get(key, 0)
            if isinstance(current, (int, float)) and not isinstance(current, bool):
                target[key] = current + value
            else:
                target[key] = value
        elif isinstance(value, dict):
            bucket = target.setdefault(key, {})
            if isinstance(bucket, dict):
                _merge_into(bucket, value)
        elif key not in target:
            target[key] = value


# ---------------------------------------------------------------------- #
# Store-merge warm-up
# ---------------------------------------------------------------------- #
def merge_stores(target_path: str, peer_paths: Sequence[str]) -> Tuple[int, int]:
    """Import every peer store into ``target_path`` (export | import).

    First-wins record semantics make this idempotent and order-free: a
    record already present in the target is skipped, so merging the same
    peers twice — or in any order — converges to the same store.  Returns
    ``(imported, skipped)`` totals.
    """
    imported = skipped = 0
    with VerdictStore(target_path) as target:
        for path in peer_paths:
            if not path or not os.path.exists(path):
                continue
            buffer = io.StringIO()
            with VerdictStore(path) as peer:
                peer.export_jsonl(buffer)
            buffer.seek(0)
            new, dup = target.import_jsonl(buffer)
            imported += new
            skipped += dup
    return imported, skipped


def manifest_rewarmer(manifest_path: str) -> Rewarmer:
    """The production re-warmer for a manifest-managed fleet.

    Stops (or kills) the drained replica's process, merges its peers'
    stores into its store, respawns ``repro daemon run`` with the fleet's
    engine arguments, and records the new pid in the manifest.
    """

    def rewarm(spec: ReplicaSpec, peers: Sequence[ReplicaSpec]) -> None:
        manifest = read_manifest(manifest_path)
        entry = next(
            (r for r in manifest["replicas"] if r["name"] == spec.name), None
        )
        with contextlib.suppress(ReproError):
            stop_daemon(spec.address, wait_seconds=3.0)
        if entry and entry.get("pid"):
            with contextlib.suppress(OSError):
                os.kill(int(entry["pid"]), signal.SIGKILL)
        if spec.store_path:
            merge_stores(
                spec.store_path,
                [peer.store_path for peer in peers if peer.store_path],
            )
        extra = list(manifest.get("engine_args", []))
        if spec.store_path:
            extra += ["--store", spec.store_path]
        # A re-warmed replica is a fresh process: warm it at spawn like
        # start_fleet does, so re-admission does not serve cold.
        extra += ["--warmup"]
        log_path = os.path.join(manifest["directory"], f"{spec.name}.log")
        pid = spawn_daemon(spec.address, extra_args=extra, log_path=log_path)
        if entry is not None:
            entry["pid"] = pid
            write_manifest(manifest_path, manifest)

    return rewarm


# ---------------------------------------------------------------------- #
# Fleet process management (used by the CLI)
# ---------------------------------------------------------------------- #
def default_fleet_dir() -> str:
    return os.path.join(tempfile.gettempdir(), f"repro-fleet-{os.getuid()}")


def manifest_path_for(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def read_manifest(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise FleetError(
            f"no fleet manifest at {path}; is a fleet running there?"
        ) from None
    except (OSError, ValueError) as error:
        raise FleetError(f"unreadable fleet manifest at {path}: {error}") from error


def write_manifest(path: str, manifest: Dict[str, object]) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
        handle.write("\n")
    os.replace(tmp, path)


def replica_specs_for(directory: str, count: int) -> List[ReplicaSpec]:
    return [
        ReplicaSpec(
            name=f"replica-{index}",
            address=os.path.join(directory, f"replica-{index}.sock"),
            store_path=os.path.join(directory, f"replica-{index}.sqlite"),
        )
        for index in range(count)
    ]


def specs_from_manifest(manifest: Dict[str, object]) -> List[ReplicaSpec]:
    return [
        ReplicaSpec(
            name=entry["name"],
            address=entry["address"],
            store_path=entry.get("store"),
        )
        for entry in manifest["replicas"]
    ]


def start_fleet(
    directory: Optional[str] = None,
    replicas: int = 2,
    gateway_address: Optional[str] = None,
    engine_args: Sequence[str] = (),
    probe_interval: float = 2.0,
    verify_every: int = 0,
    ring_vnodes: int = DEFAULT_VNODES,
    dispatch_parallelism: Optional[int] = None,
    wait_seconds: float = 30.0,
) -> Dict[str, object]:
    """Spawn N replicas + the gateway; returns the written manifest."""
    if replicas < 1:
        raise FleetError("a fleet needs at least one replica")
    directory = os.path.abspath(directory or default_fleet_dir())
    os.makedirs(directory, exist_ok=True)
    manifest_path = manifest_path_for(directory)
    if os.path.exists(manifest_path):
        raise FleetError(
            f"a fleet manifest already exists at {manifest_path}; "
            "run 'repro fleet stop' first"
        )
    specs = replica_specs_for(directory, replicas)
    gateway_address = gateway_address or os.path.join(directory, "gateway.sock")
    manifest: Dict[str, object] = {
        "directory": directory,
        "gateway": {"address": gateway_address, "pid": None},
        "replicas": [],
        "engine_args": list(engine_args),
        "probe_interval": probe_interval,
        "verify_every": verify_every,
        "ring_vnodes": ring_vnodes,
        # null = auto-size to the gateway host's cores at gateway start.
        "dispatch_parallelism": dispatch_parallelism,
    }
    spawned_pids: List[int] = []
    try:
        for spec in specs:
            # Replicas always warm up at spawn: each is a fresh process, and
            # a cold fleet batch would otherwise pay first-solve lazy init
            # once per shard instead of never.
            pid = spawn_daemon(
                spec.address,
                extra_args=list(engine_args)
                + ["--store", spec.store_path, "--warmup"],
                wait_seconds=wait_seconds,
                log_path=os.path.join(directory, f"{spec.name}.log"),
            )
            spawned_pids.append(pid)
            manifest["replicas"].append(
                {
                    "name": spec.name,
                    "address": spec.address,
                    "store": spec.store_path,
                    "pid": pid,
                }
            )
        write_manifest(manifest_path, manifest)
        gateway_pid = spawn_gateway(
            manifest_path,
            gateway_address,
            wait_seconds=wait_seconds,
            log_path=os.path.join(directory, "gateway.log"),
        )
        manifest["gateway"]["pid"] = gateway_pid
        write_manifest(manifest_path, manifest)
        return manifest
    except BaseException:
        # Half-started fleets are worse than none: tear down best-effort.
        for pid in spawned_pids:
            with contextlib.suppress(OSError):
                os.kill(pid, signal.SIGKILL)
        for spec in specs:
            with contextlib.suppress(OSError):
                os.unlink(spec.address)
        with contextlib.suppress(OSError):
            os.unlink(manifest_path)
        raise


def spawn_gateway(
    manifest_path: str,
    address: str,
    wait_seconds: float = 30.0,
    log_path: Optional[str] = None,
) -> int:
    """Start a detached gateway process and wait until it answers pings."""
    if daemon_available(address, timeout=1.0):
        raise FleetError(f"something is already answering pings at {address}")
    if log_path is None:
        log_path = os.path.join(
            tempfile.gettempdir(), f"repro-gateway-{os.getpid()}.log"
        )
    command = [
        sys.executable,
        "-m",
        "repro",
        "fleet",
        "gateway",
        "--manifest",
        manifest_path,
        "--socket",
        address,
    ]
    env = dict(os.environ)
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    with open(log_path, "ab") as log:
        child = subprocess.Popen(
            command,
            stdout=log,
            stderr=log,
            stdin=subprocess.DEVNULL,
            start_new_session=True,
            env=env,
        )
    waited = 0.0
    while waited < wait_seconds:
        if daemon_available(address, timeout=1.0):
            return child.pid
        if child.poll() is not None:
            raise FleetError(
                f"the gateway exited with code {child.returncode} before "
                f"binding {address} (log: {log_path})"
            )
        time.sleep(0.1)
        waited += 0.1
    child.terminate()
    raise FleetError(
        f"the gateway did not answer pings at {address} within "
        f"{wait_seconds}s (log: {log_path})"
    )


def serve_gateway(
    manifest_path: str,
    address: Optional[str] = None,
    ready_callback=None,
) -> None:
    """Run a gateway (foreground) for the fleet described by a manifest."""
    manifest = read_manifest(manifest_path)
    specs = specs_from_manifest(manifest)
    text = address or manifest["gateway"]["address"]
    parallelism = manifest.get("dispatch_parallelism")
    gateway = FleetGateway(
        specs,
        probe_interval=float(manifest.get("probe_interval", 2.0)) or None,
        verify_every=int(manifest.get("verify_every", 0)),
        ring_vnodes=int(manifest.get("ring_vnodes", DEFAULT_VNODES)),
        dispatch_parallelism=int(parallelism) if parallelism else None,
        rewarmer=manifest_rewarmer(manifest_path),
    )
    asyncio.run(gateway.serve(parse_address(text), ready_callback=ready_callback))


def stop_fleet(
    directory: Optional[str] = None, wait_seconds: float = 10.0
) -> Dict[str, object]:
    """Tear a fleet down: gateway first (so it cannot resurrect replicas).

    Best-effort per process — an already-dead member is not an error —
    and removes the manifest so the directory can host a fresh fleet.
    """
    directory = os.path.abspath(directory or default_fleet_dir())
    manifest_path = manifest_path_for(directory)
    manifest = read_manifest(manifest_path)
    summary: Dict[str, object] = {"gateway": None, "replicas": []}

    gateway = manifest.get("gateway") or {}
    summary["gateway"] = _stop_member(
        gateway.get("address"), gateway.get("pid"), wait_seconds
    )
    for entry in manifest.get("replicas", []):
        result = _stop_member(entry.get("address"), entry.get("pid"), wait_seconds)
        result["name"] = entry.get("name")
        summary["replicas"].append(result)
    with contextlib.suppress(OSError):
        os.unlink(manifest_path)
    return summary


def _stop_member(
    address: Optional[str], pid: Optional[int], wait_seconds: float
) -> Dict[str, object]:
    stopped_via = None
    if address:
        try:
            stop_daemon(address, wait_seconds=wait_seconds)
            stopped_via = "stop"
        except ReproError:
            pass
    if stopped_via is None and pid:
        with contextlib.suppress(OSError):
            os.kill(int(pid), signal.SIGKILL)
            stopped_via = "kill"
    if address:
        path = parse_address(address)
        if path.kind == "unix":
            with contextlib.suppress(OSError):
                os.unlink(path.path)
    return {"address": address, "pid": pid, "stopped_via": stopped_via or "dead"}


def fleet_status(
    address: Optional[str] = None,
    directory: Optional[str] = None,
    timeout: float = 10.0,
) -> Dict[str, object]:
    """The gateway's status block (resolved from the manifest if needed)."""
    if address is None:
        directory = os.path.abspath(directory or default_fleet_dir())
        manifest = read_manifest(manifest_path_for(directory))
        address = manifest["gateway"]["address"]
    return DaemonClient(address, timeout=timeout).status()


def fleet_metrics(
    address: Optional[str] = None,
    directory: Optional[str] = None,
    timeout: float = 10.0,
) -> str:
    """The gateway's Prometheus exposition document."""
    if address is None:
        directory = os.path.abspath(directory or default_fleet_dir())
        manifest = read_manifest(manifest_path_for(directory))
        address = manifest["gateway"]["address"]
    return DaemonClient(address, timeout=timeout).metrics()
