"""Consistent-hash ring for fleet routing.

Role
----
Maps 256-bit structural-hash integers (``repro.store.serialize.structural_hash``
of a canonical :class:`~repro.service.canonical.PairKey`) onto replica names so
that fleet membership changes move as few keys as possible.  The previous
``hash % n`` scheme remapped almost every key whenever a replica joined or
left; a ring with ``vnodes`` virtual points per member reshuffles only about
``1/n`` of the key space on a single add or remove, so a drained replica that
is re-warmed and re-admitted comes back to a mostly-warm shard.

Invariants
----------
* **Deterministic from the manifest.**  Ring points are SHA-256 digests of
  ``"{member}#{index}"`` labels — no process-seeded hashing — so two gateways
  built from identical ``fleet.json`` manifests (or the same gateway before
  and after a restart) route every key identically.  Member *order* does not
  matter; only the set of names and the vnode count do.
* **Drain is a membership filter, not a rebuild.**  :meth:`HashRing.owner`
  takes the currently-eligible member subset and walks clockwise past points
  owned by drained members.  Keys owned by healthy members never move while
  another member drains, and a re-admitted member reclaims exactly its old
  points.
* All points live on a fixed ``2**256`` circle, matching the width of
  ``structural_hash`` so routing needs no rescaling.

See ``docs/architecture.md`` (fleet layer) and ``docs/operations.md``
(drain/re-admit runbook) for how the gateway uses this module.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing", "ring_point", "reshuffle_fraction"]

DEFAULT_VNODES = 64
"""Default virtual nodes per member.

64 points per replica keeps the expected load imbalance of a small fleet
within a few percent while the ring stays tiny (a 4-replica fleet has 256
points, i.e. one sorted list of ints).
"""

_RING_BITS = 256
_RING_SPACE = 1 << _RING_BITS


def ring_point(label: str) -> int:
    """Deterministic position of *label* on the ``2**256`` circle."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest(), "big")


class HashRing:
    """A consistent-hash ring over a fixed set of member names.

    The member set is fixed at construction (it mirrors the fleet manifest);
    transient unavailability is expressed per-lookup via the ``eligible``
    argument of :meth:`owner`, which keeps drain/re-admit cheap and keeps the
    ring itself immutable and trivially comparable.
    """

    def __init__(self, members: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        names = list(members)
        if not names:
            raise ValueError("a hash ring needs at least one member")
        if len(set(names)) != len(names):
            raise ValueError("ring member names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._members: Tuple[str, ...] = tuple(sorted(names))
        self._vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for member in self._members:
            for index in range(vnodes):
                points.append((ring_point(f"{member}#{index}"), member))
        # Sorting on (point, member) makes the walk order total even in the
        # astronomically unlikely event of a SHA-256 point collision.
        points.sort()
        self._points = points
        self._positions = [point for point, _ in points]

    @property
    def members(self) -> Tuple[str, ...]:
        return self._members

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._points)

    def owner(self, hash_int: int, eligible: Optional[Iterable[str]] = None) -> str:
        """Return the member owning *hash_int*, walking clockwise.

        ``eligible`` restricts the walk to a subset of members (the healthy
        ones); points owned by other members are skipped, which is what makes
        a drain move only the drained member's keys.  Raises ``LookupError``
        when no eligible member exists and ``KeyError`` when ``eligible``
        names a member the ring does not know.
        """
        allowed: Optional[Set[str]] = None
        if eligible is not None:
            allowed = set(eligible)
            unknown = allowed.difference(self._members)
            if unknown:
                raise KeyError(f"unknown ring members: {sorted(unknown)}")
            if not allowed:
                raise LookupError("no eligible ring members")
        position = hash_int % _RING_SPACE
        start = bisect.bisect_left(self._positions, position)
        count = len(self._points)
        for step in range(count):
            _, member = self._points[(start + step) % count]
            if allowed is None or member in allowed:
                return member
        raise LookupError("no eligible ring members")  # pragma: no cover


def reshuffle_fraction(
    before: HashRing,
    after: HashRing,
    hashes: Sequence[int],
) -> float:
    """Fraction of *hashes* whose owner differs between two rings.

    Used by the ring tests and ``benchmarks/bench_fleet_ring.py`` to check
    the consistent-hashing contract: adding or removing one member out of
    ``n`` should remap about ``1/n`` of a key sample, not all of it.
    """
    if not hashes:
        return 0.0
    moved = sum(1 for h in hashes if before.owner(h) != after.owner(h))
    return moved / len(hashes)


def assignment_counts(ring: HashRing, hashes: Sequence[int]) -> Dict[str, int]:
    """Per-member key counts for a hash sample (load-balance diagnostics)."""
    counts: Dict[str, int] = {member: 0 for member in ring.members}
    for h in hashes:
        counts[ring.owner(h)] += 1
    return counts
