"""The plan cache: structural pair key → previously computed result.

A bounded LRU mapping from :data:`~repro.service.canonical.PairKey` to
:class:`~repro.core.containment.ContainmentResult`.  Entries are stored in
*canonical* variables (the ``c0, c1, ...`` names of the key's labeling) and
renamed onto each requesting pair's variables on a hit, so the witness and
inequality a hit returns are always expressed over the requester's own
variable names — never a representative's — and the same canonical entry is
what the durable verdict store persists (see :mod:`repro.store`).

Membership semantics: ``key in cache`` is a first-class cache read.  It
counts a hit or a miss and refreshes the entry's LRU recency exactly like
:meth:`PlanCache.get`, so probe-then-get code paths cannot skew the hit
accounting relative to the entries they actually consume, and a just-probed
entry is the *most* recently used one (a probe can never be followed by the
probed entry's eviction before the get).  Use :meth:`PlanCache.peek` for
side-effect-free introspection.

Where the cache sits in the stack (and the durable tier behind it) is
diagrammed in ``docs/architecture.md``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Hashable, Optional

from repro.core.containment import ContainmentResult
from repro.service.canonical import PairLabelings
from repro.service.evidence import (
    canonical_mappings,
    rename_result,
    requester_mappings,
)


class PlanCache:
    """Bounded LRU cache of containment results keyed by structural hash."""

    def __init__(self, maxsize: Optional[int] = 4096):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("cache maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, ContainmentResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """A counting, recency-refreshing membership probe (see module docs)."""
        if key not in self._entries:
            self.misses += 1
            return False
        self._entries.move_to_end(key)
        self.hits += 1
        return True

    def peek(self, key: Hashable) -> Optional[ContainmentResult]:
        """The entry as stored (canonical variables), without counting a
        hit/miss or refreshing recency."""
        return self._entries.get(key)

    def get(
        self, key: Hashable, labelings: Optional[PairLabelings] = None
    ) -> Optional[ContainmentResult]:
        """Look up a result, counting the hit/miss and refreshing recency.

        With ``labelings`` (the requesting pair's canonical labelings, from
        :func:`~repro.service.canonical.pair_key_with_labelings`) a hit is
        renamed from the stored canonical variables onto the requester's
        variables and tagged ``provenance="cache-hit"``; without, the stored
        entry is returned as is.
        """
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if labelings is not None and isinstance(result, ContainmentResult):
            mapping1, mapping2 = requester_mappings(labelings)
            return replace(
                rename_result(result, mapping1, mapping2), provenance="cache-hit"
            )
        return result

    def put(
        self,
        key: Hashable,
        result: ContainmentResult,
        labelings: Optional[PairLabelings] = None,
    ) -> ContainmentResult:
        """Insert a result; returns the entry as stored.

        With ``labelings`` the result's evidence is renamed onto the
        canonical ``c<i>`` variables first, so the entry answers every
        isomorphic pair (the returned canonical result is also what the
        durable store persists).  Without, the result is stored verbatim —
        the caller asserts it is already in canonical form.
        """
        if labelings is not None and isinstance(result, ContainmentResult):
            mapping1, mapping2 = canonical_mappings(labelings)
            result = rename_result(result, mapping1, mapping2)
        self._entries[key] = result
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return result

    def clear(self) -> None:
        self._entries.clear()
