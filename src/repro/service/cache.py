"""The plan cache: structural pair key → previously computed result.

A bounded LRU mapping from :data:`~repro.service.canonical.PairKey` to
:class:`~repro.core.containment.ContainmentResult`.  Results are immutable,
so a hit can be returned directly; the witness and inequality of a cached
result are expressed over the variable names of the *first* pair that was
solved for the key (statuses are renaming-invariant, the evidence is carried
over from the representative).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.core.containment import ContainmentResult


class PlanCache:
    """Bounded LRU cache of containment results keyed by structural hash."""

    def __init__(self, maxsize: Optional[int] = 4096):
        if maxsize is not None and maxsize <= 0:
            raise ValueError("cache maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, ContainmentResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[ContainmentResult]:
        """Look up a result, counting the hit/miss and refreshing recency."""
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: Hashable, result: ContainmentResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
