"""The daemon wire protocol: JSONL request/response messages.

The containment daemon (:mod:`repro.service.daemon`) speaks a line-oriented
protocol: every message — request or response — is one JSON object on one
``\\n``-terminated line, so any client that can write a line and read a line
can drive the daemon (``socat``, a shell script, the bundled
:class:`~repro.service.daemon.DaemonClient`).  This module is the shared
vocabulary of both sides: typed message dataclasses, the ``parse_*`` /
``encode`` functions that move them across the wire, and the address
grammar (Unix socket path vs. ``host:port`` TCP fallback).

Requests
--------
``{"op": "ping"}``
    Liveness probe; answered immediately, never queued.
``{"op": "status"}``
    Daemon metadata (pid, uptime, address, queue depth, worker pool) plus a
    full :class:`~repro.service.stats.ServiceStats` snapshot.  When the
    daemon runs with a durable verdict store (``--store``), the reply also
    carries a ``store`` block (path, entries, recovered/dropped counts from
    the open-time replay, rows appended this process); without one,
    ``store`` is ``null``.
``{"op": "metrics"}``
    The daemon's metrics in the Prometheus text exposition format: the
    response carries ``content_type`` (``text/plain; version=0.0.4``) and
    the document itself in ``body``.  This is the scrape endpoint of the
    soak harness and ``repro daemon status --prom``.
``{"op": "stop"}``
    Acknowledge, then shut the server down cleanly.
``{"op": "batch", "pairs": [{"q1": "R(x,y)", "q2": "R(a,b)"}, ...],
"deadline_seconds": 30.0, "priority": "high"}``
    Decide the pairs through the daemon's persistent
    :class:`~repro.service.service.ContainmentService`.  ``deadline_seconds``
    (optional) bounds the request's total wall clock *including queue wait*;
    pairs still undecided when it expires come back as UNKNOWN
    ``"deadline-exceeded"`` verdicts rather than an error.  ``priority``
    (``"high" | "normal" | "low"``, default normal) orders waiting requests.

Responses always carry ``"ok"``; batch responses add one verdict record per
input pair (in submission order) and the post-request stats snapshot.  A
request shed by the admission policy answers ``ok=false`` with
``error="queue-full"`` and ``shed="rejected"``.

The gateway speaks this exact protocol on both sides, so every wire
invariant here (one line per message, verdicts in submission order) holds
for fleets too — see ``docs/operations.md`` for the operator view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError

#: Bumped on incompatible wire changes; echoed in every response.
PROTOCOL_VERSION = 1

#: Request priorities, highest first (the order the daemon's gate drains them).
PRIORITIES = ("high", "normal", "low")

#: Admission policies when the queue is at ``max_queue_depth``.
SHED_POLICIES = ("reject", "degrade")


class ProtocolError(ReproError):
    """A malformed or unsupported protocol message."""


# ---------------------------------------------------------------------- #
# Requests
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PairSpec:
    """One query pair on the wire (query bodies in the parser syntax)."""

    q1: str
    q2: str


@dataclass(frozen=True)
class BatchRequest:
    """A ``batch`` request: decide ``pairs`` under the shedding knobs."""

    pairs: Tuple[PairSpec, ...]
    deadline_seconds: Optional[float] = None
    priority: str = "normal"


@dataclass(frozen=True)
class ControlRequest:
    """A parameterless control request (``ping``, ``status``, ``metrics`` or
    ``stop``)."""

    op: str


Request = Union[BatchRequest, ControlRequest]

_CONTROL_OPS = ("ping", "status", "metrics", "stop")


def parse_request(line: Union[str, bytes]) -> Request:
    """Parse one request line into its typed message (raises ProtocolError)."""
    message = _load_object(line, "request")
    op = message.get("op")
    if op in _CONTROL_OPS:
        return ControlRequest(op=op)
    if op != "batch":
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {('batch',) + _CONTROL_OPS}"
        )
    raw_pairs = message.get("pairs")
    if not isinstance(raw_pairs, list) or not raw_pairs:
        raise ProtocolError("a batch request needs a non-empty 'pairs' list")
    pairs = []
    for index, entry in enumerate(raw_pairs):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("q1"), str)
            or not isinstance(entry.get("q2"), str)
        ):
            raise ProtocolError(
                f"pairs[{index}] must be an object with string 'q1' and 'q2'"
            )
        pairs.append(PairSpec(q1=entry["q1"], q2=entry["q2"]))
    deadline = message.get("deadline_seconds")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            raise ProtocolError("'deadline_seconds' must be a number")
        if deadline < 0:
            raise ProtocolError("'deadline_seconds' must be non-negative")
        deadline = float(deadline)
    priority = message.get("priority", "normal")
    if priority not in PRIORITIES:
        raise ProtocolError(f"'priority' must be one of {PRIORITIES}")
    return BatchRequest(
        pairs=tuple(pairs), deadline_seconds=deadline, priority=priority
    )


def encode_request(request: Request) -> str:
    """Serialize a request message to its wire line (no trailing newline)."""
    if isinstance(request, ControlRequest):
        return json.dumps({"op": request.op})
    message: Dict[str, object] = {
        "op": "batch",
        "pairs": [{"q1": pair.q1, "q2": pair.q2} for pair in request.pairs],
    }
    if request.deadline_seconds is not None:
        message["deadline_seconds"] = request.deadline_seconds
    if request.priority != "normal":
        message["priority"] = request.priority
    return json.dumps(message)


# ---------------------------------------------------------------------- #
# Responses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PairVerdict:
    """One pair's outcome on the wire (mirrors a service PairOutcome).

    ``source`` is the service's provenance tag: ``"solved"``,
    ``"batch-dedup"``, ``"plan-cache"`` or ``"store"`` (answered from the
    durable verdict store on disk).
    """

    index: int
    status: str
    method: str
    source: str
    witness_rows: Optional[int] = None


@dataclass(frozen=True)
class BatchResponse:
    """Response to a ``batch`` request (also used for shed rejections)."""

    ok: bool
    verdicts: Tuple[PairVerdict, ...] = ()
    stats: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    shed: Optional[str] = None
    degraded: bool = False


def encode_response(payload: Dict[str, object]) -> str:
    """Serialize a response payload, stamping the protocol version."""
    message = {"protocol": PROTOCOL_VERSION}
    message.update(payload)
    return json.dumps(message)


def encode_batch_response(response: BatchResponse) -> str:
    payload: Dict[str, object] = {"ok": response.ok}
    if response.ok:
        payload["verdicts"] = [
            _verdict_record(verdict) for verdict in response.verdicts
        ]
        payload["stats"] = response.stats
        if response.degraded:
            payload["degraded"] = True
    else:
        payload["error"] = response.error or "request failed"
        if response.shed is not None:
            payload["shed"] = response.shed
        if response.stats:
            payload["stats"] = response.stats
    return encode_response(payload)


def parse_response(line: Union[str, bytes]) -> Dict[str, object]:
    """Parse one response line; raises ProtocolError on malformed input."""
    message = _load_object(line, "response")
    if "ok" not in message:
        raise ProtocolError("a response must carry an 'ok' field")
    return message


def parse_batch_response(line: Union[str, bytes]) -> BatchResponse:
    """Parse a ``batch`` response line into its typed message."""
    message = parse_response(line)
    if not message["ok"]:
        return BatchResponse(
            ok=False,
            error=str(message.get("error", "request failed")),
            shed=message.get("shed"),
            stats=message.get("stats", {}) or {},
        )
    raw_verdicts = message.get("verdicts")
    if not isinstance(raw_verdicts, list):
        raise ProtocolError("a successful batch response needs a 'verdicts' list")
    verdicts: List[PairVerdict] = []
    for entry in raw_verdicts:
        if not isinstance(entry, dict):
            raise ProtocolError("each verdict must be a JSON object")
        try:
            verdicts.append(
                PairVerdict(
                    index=int(entry["index"]),
                    status=str(entry["status"]),
                    method=str(entry["method"]),
                    source=str(entry["source"]),
                    witness_rows=entry.get("witness_rows"),
                )
            )
        except KeyError as missing:
            raise ProtocolError(f"verdict record is missing {missing}") from None
    return BatchResponse(
        ok=True,
        verdicts=tuple(verdicts),
        stats=message.get("stats", {}) or {},
        degraded=bool(message.get("degraded", False)),
    )


def _verdict_record(verdict: PairVerdict) -> Dict[str, object]:
    record: Dict[str, object] = {
        "index": verdict.index,
        "status": verdict.status,
        "method": verdict.method,
        "source": verdict.source,
    }
    if verdict.witness_rows is not None:
        record["witness_rows"] = verdict.witness_rows
    return record


def _load_object(line: Union[str, bytes], kind: str) -> Dict[str, object]:
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"{kind} line is not valid UTF-8: {error}") from None
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"{kind} line is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"a {kind} must be a JSON object, got {type(message).__name__}")
    return message


# ---------------------------------------------------------------------- #
# Addresses
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Address:
    """A daemon endpoint: a Unix socket path or a localhost TCP port."""

    kind: str  # "unix" | "tcp"
    path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None

    def __str__(self) -> str:
        if self.kind == "unix":
            return self.path
        return f"{self.host}:{self.port}"


def parse_address(text: str) -> Address:
    """Parse an endpoint string.

    ``host:port`` (the last colon-separated field all digits) selects the TCP
    fallback; anything else is a Unix socket path.  An explicit ``tcp:`` or
    ``unix:`` prefix overrides the heuristic.

    Two shapes are close enough to a TCP endpoint to be typos rather than
    socket paths, and are rejected outright instead of surfacing later as a
    confusing ``socket`` error: a bare integer (``"8080"`` — is it a port or
    a relative path?) and a colon-bearing name with the port missing
    (``"localhost:"``, ``":8080"``).  A path with a directory separator
    (``"/tmp/odd:name"``) is never mistaken for TCP.
    """
    if not text:
        raise ProtocolError("the daemon address must be non-empty")
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ProtocolError("empty Unix socket path")
        return Address(kind="unix", path=path)
    if text.startswith("tcp:"):
        text = text[len("tcp:"):]
        return _parse_tcp(text)
    if text.isdigit():
        raise ProtocolError(
            f"ambiguous address {text!r}: a bare integer is neither a socket "
            f"path nor a TCP endpoint — use host:port (e.g. 'localhost:{text}') "
            "or an explicit unix:PATH"
        )
    host, colon, port = text.rpartition(":")
    if colon and port.isdigit():
        return _parse_tcp(text)
    if colon and not port and "/" not in text:
        raise ProtocolError(
            f"TCP address {text!r} is missing its port — use host:port, "
            "or unix:PATH for a socket path that happens to end in a colon"
        )
    return Address(kind="unix", path=text)


def _parse_tcp(text: str) -> Address:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ProtocolError(f"TCP address must look like host:port, got {text!r}")
    number = int(port)
    if not 0 < number < 65536:
        raise ProtocolError(f"TCP port out of range: {number}")
    return Address(kind="tcp", host=host, port=number)
