"""The persistent containment daemon: one warm service, many CLI clients.

A single CLI invocation builds its :class:`~repro.service.service.ContainmentService`
from scratch: empty plan cache, cold ``lru_cache``\\ d provers, cold lattice
contexts.  The daemon keeps one service alive in a long-lived process and
serves batch requests over the JSONL protocol of
:mod:`repro.service.protocol`, so *everything* that warms up stays warm
across client invocations — the structural-hash plan cache answers repeats
without any pipeline work, and repeated arities reuse the cached provers and
lattice contexts.

Transport is a Unix domain socket by default (filesystem permissions are the
access control), with a localhost TCP fallback for platforms or containers
without ``AF_UNIX``.  Each client connection is handled on its own thread;
batch execution itself is serialized through a priority-aware gate (the
service's caches and counters are not designed for concurrent mutation), so
the gate's wait line *is* the daemon's queue:

* ``max_queue_depth`` bounds that line.  An over-limit request is either
  turned away immediately (``shed_policy="reject"``: the client gets a
  ``queue-full`` response and decides itself whether to fall back in
  process) or run with a clamped per-pair budget
  (``shed_policy="degrade"``: every pair still gets an answer, but slow
  pairs come back UNKNOWN ``"budget-exhausted"`` instead of holding the
  line up).
* A request's ``deadline_seconds`` covers its *total* daemon wall clock,
  queue wait included: whatever remains when the gate admits it becomes the
  batch deadline, and pairs the engine cannot decide in time are reported
  as UNKNOWN ``"deadline-exceeded"`` verdicts, never an error.
* ``priority`` (``high``/``normal``/``low``) orders the wait line.

The module also provides the client side (:class:`DaemonClient`) and the
process-management helpers the CLI uses (:func:`spawn_daemon`,
:func:`stop_daemon`).

Operator documentation — lifecycle, warmup, shedding, deadlines, exit
codes, the metric catalog — lives in ``docs/operations.md``.
"""

from __future__ import annotations

import errno
import heapq
import os
import socket
import socketserver
import stat
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cq.parser import parse_query
from repro.exceptions import ReproError
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    global_registry,
    render_registries,
)
from repro.service.protocol import (
    PRIORITIES,
    SHED_POLICIES,
    Address,
    BatchRequest,
    BatchResponse,
    ControlRequest,
    PairSpec,
    PairVerdict,
    ProtocolError,
    encode_batch_response,
    encode_request,
    encode_response,
    parse_address,
    parse_batch_response,
    parse_request,
    parse_response,
)
from repro.service.service import BatchOptions, ContainmentService


class DaemonUnavailable(ReproError):
    """No daemon is reachable at the requested address.

    Raised only when the request never made it onto the wire (connect
    refused, missing socket, send failure): callers such as the CLI fall
    back to in-process execution on this, which is safe precisely because
    the daemon cannot have started the work.
    """


class DaemonConnectionBroken(ReproError):
    """The connection died *after* the request was sent.

    Deliberately not a :class:`DaemonUnavailable`: the daemon may have
    executed (or still be executing) the request, so falling back to an
    in-process run would double-execute the batch.  The message carries the
    partial-read context so a truncated response is diagnosable.
    """


#: Sentinel distinguishing "use the client's default timeout" from None.
_USE_DEFAULT = object()


def default_socket_path() -> str:
    """The per-user default Unix socket path."""
    uid = os.getuid() if hasattr(os, "getuid") else "any"
    return os.path.join(tempfile.gettempdir(), f"repro-daemon-{uid}.sock")


@dataclass(frozen=True)
class ShedOptions:
    """Admission-control knobs of a daemon.

    ``max_queue_depth`` bounds the number of batch requests in the daemon at
    once (running + waiting); ``None`` means unbounded.  ``policy`` picks
    what happens to a request that arrives over the bound, and
    ``degrade_pair_budget`` is the per-pair budget (seconds) the
    ``"degrade"`` policy clamps to.  ``default_deadline`` applies to batch
    requests that do not carry their own ``deadline_seconds``.
    """

    max_queue_depth: Optional[int] = None
    policy: str = "reject"
    degrade_pair_budget: float = 1.0
    default_deadline: Optional[float] = None

    def __post_init__(self):
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")
        if self.policy not in SHED_POLICIES:
            raise ValueError(f"policy must be one of {SHED_POLICIES}")
        if self.degrade_pair_budget <= 0:
            raise ValueError("degrade_pair_budget must be positive")


class ServiceGate:
    """Serializes batch execution, draining waiters by (priority, arrival).

    The gate is the daemon's queue: one request runs at a time, the rest
    wait here.  Admission control happens *inside* :meth:`acquire`, under
    the same lock that owns the wait line — checking the depth first and
    joining afterwards would let a burst of concurrent arrivals all pass
    the check and blow through ``max_queue_depth``, which is exactly the
    load the bound exists for.
    """

    def __init__(self):
        self._condition = threading.Condition()
        self._running = False
        self._waiting: List[Tuple[int, int]] = []  # heap of (priority_rank, seq)
        self._sequence = 0

    def depth(self) -> int:
        with self._condition:
            return len(self._waiting) + (1 if self._running else 0)

    def waiting(self) -> int:
        with self._condition:
            return len(self._waiting)

    def acquire(
        self,
        priority: str = "normal",
        max_depth: Optional[int] = None,
        overflow: str = "join",
    ) -> str:
        """Join the line (depth permitting) and wait for the gate.

        Atomically checks the line against ``max_depth`` and joins it in one
        critical section.  Returns ``"acquired"`` when admitted under the
        bound; ``"acquired-over"`` when the line was full but
        ``overflow="join"`` admitted the request anyway (the degrade
        policy); ``"rejected"`` — without joining or waiting — when the
        line was full and ``overflow="reject"``.
        """
        rank = PRIORITIES.index(priority)
        with self._condition:
            over = (
                max_depth is not None
                and len(self._waiting) + (1 if self._running else 0) >= max_depth
            )
            if over and overflow == "reject":
                return "rejected"
            self._sequence += 1
            ticket = (rank, self._sequence)
            heapq.heappush(self._waiting, ticket)
            while self._running or self._waiting[0] != ticket:
                self._condition.wait()
            heapq.heappop(self._waiting)
            self._running = True
            return "acquired-over" if over else "acquired"

    def release(self) -> None:
        with self._condition:
            self._running = False
            self._condition.notify_all()


class ContainmentDaemon:
    """The daemon's request brain: one persistent service plus admission.

    Deliberately transport-free — :meth:`handle_line` maps one request line
    to one response line, so tests can drive the full shedding/deadline
    logic without opening a socket; :func:`serve` plugs it into
    ``socketserver``.
    """

    def __init__(
        self,
        options: Optional[BatchOptions] = None,
        shed: Optional[ShedOptions] = None,
    ):
        # The daemon owns the metrics registry and lends it to the service,
        # so service counters and daemon-level gauges come out of one scrape.
        self.registry = MetricsRegistry()
        self.service = ContainmentService(options, registry=self.registry)
        self.shed = shed if shed is not None else ShedOptions()
        self.gate = ServiceGate()
        self.started_at = time.time()
        self.requests_served = 0
        self.stopping = threading.Event()
        self.address: Optional[Address] = None  # set by serve()
        self.registry.gauge(
            "repro_daemon_uptime_seconds",
            "Seconds since this daemon process started.",
            callback=lambda: time.time() - self.started_at,
        )
        self.registry.gauge(
            "repro_daemon_queue_depth",
            "Batch requests in the daemon right now (running + waiting).",
            callback=self.gate.depth,
        )
        workers = self.registry.gauge(
            "repro_daemon_workers",
            "Size of the service's pipeline worker pool.",
        )
        workers.set(self.service.options.max_workers)
        self._queue_wait = self.registry.histogram(
            "repro_daemon_queue_wait_seconds",
            "Seconds an admitted batch request waited for the service gate.",
            buckets=LATENCY_BUCKETS,
        )
        self._request_seconds = self.registry.histogram(
            "repro_daemon_request_seconds",
            "Total daemon wall clock of a batch request, queue wait included.",
            buckets=LATENCY_BUCKETS,
        )
        self._requests_total = self.registry.counter(
            "repro_daemon_requests_total",
            "Batch requests by outcome (ok, degraded, rejected, error, parse-error).",
            labelnames=("outcome",),
        )

    #: A contained pair and its refuted reverse: together they walk the
    #: positive path, the witness/refutation path, one LP solve, and (when
    #: a store is attached) the first store transaction.
    WARMUP_PAIRS = (
        ("R(x,y), R(y,z), R(z,x)", "R(a,b), R(a,c)"),
        ("R(a,b), R(a,c)", "R(x,y), R(y,z), R(z,x)"),
    )

    def warmup(self) -> None:
        """Pre-solve a tiny built-in batch before the first real request.

        A fresh daemon process pays lazy one-time costs on its first solve
        — allocator and solver first-call setup, parser tables, lattice
        caches, the store's first transaction.  Fleets spawn one process
        per replica, so without warmup a cold batch pays that bill once
        *per shard*; with it, spawn time absorbs the bill (``spawn_daemon``
        only reports ready once pings answer, which is after warmup).
        Never raises: an unsolvable warmup pair must not block serving.
        """
        from repro.cq.parser import parse_query

        try:
            self.service.run(
                [
                    (parse_query(a, name="Q1"), parse_query(b, name="Q2"))
                    for a, b in self.WARMUP_PAIRS
                ]
            )
        except Exception:  # pragma: no cover - warmup is best-effort
            pass

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def handle_line(self, line: bytes) -> str:
        """Answer one request line with one response line (never raises)."""
        try:
            request = parse_request(line)
        except ProtocolError as error:
            return encode_response({"ok": False, "error": str(error)})
        if isinstance(request, ControlRequest):
            if request.op == "ping":
                return encode_response({"ok": True, "op": "ping", "pid": os.getpid()})
            if request.op == "status":
                return encode_response({"ok": True, **self.status()})
            if request.op == "metrics":
                return encode_response(
                    {
                        "ok": True,
                        "content_type": "text/plain; version=0.0.4",
                        "body": self.render_metrics(),
                    }
                )
            self.stopping.set()
            return encode_response({"ok": True, "stopping": True})
        return encode_batch_response(self.handle_batch(request))

    def render_metrics(self) -> str:
        """The daemon's full Prometheus exposition document.

        Merges the daemon-owned registry (service counters, gate gauges,
        latency histograms) with the process-global one (LP solver-path and
        row-generation counters, which live below the service layer).
        """
        return render_registries(self.registry, global_registry())

    def status(self) -> Dict[str, object]:
        return {
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self.started_at,
            "address": str(self.address) if self.address is not None else None,
            "queue_depth": self.gate.depth(),
            "queue_waiting": self.gate.waiting(),
            "requests_served": self.requests_served,
            "workers": self.service.options.max_workers,
            "worker_mode": self.service.options.worker_mode,
            "shed": {
                "max_queue_depth": self.shed.max_queue_depth,
                "policy": self.shed.policy,
                "degrade_pair_budget": self.shed.degrade_pair_budget,
                "default_deadline": self.shed.default_deadline,
            },
            "plan_cache_entries": len(self.service.cache),
            "store": self._store_status(),
            "stats": self.service.stats.as_dict(),
        }

    def _store_status(self) -> Optional[Dict[str, object]]:
        store = self.service.store
        if store is None:
            return None
        return {
            "path": store.path,
            "entries": len(store),
            "recovered": store.recovered,
            "dropped": store.dropped,
            "appended": store.appended,
        }

    def handle_batch(self, request: BatchRequest) -> BatchResponse:
        """Run one batch request through admission, the gate and the service."""
        received = time.perf_counter()
        try:
            pairs = [
                (parse_query(spec.q1, name=f"Q1#{i}"), parse_query(spec.q2, name=f"Q2#{i}"))
                for i, spec in enumerate(request.pairs)
            ]
        except ReproError as error:
            self._requests_total.inc(outcome="parse-error")
            return BatchResponse(ok=False, error=f"unparseable pair: {error}")

        deadline = request.deadline_seconds
        if deadline is None:
            deadline = self.shed.default_deadline
        submitted = time.perf_counter()
        admission = self.gate.acquire(
            request.priority,
            max_depth=self.shed.max_queue_depth,
            overflow="reject" if self.shed.policy == "reject" else "join",
        )
        if admission == "rejected":
            self.service.stats.count_request_rejected()
            self._requests_total.inc(outcome="rejected")
            return BatchResponse(
                ok=False,
                error="queue-full",
                shed="rejected",
                stats=self.service.stats.as_dict(),
            )
        self._queue_wait.observe(time.perf_counter() - submitted)
        degraded = admission == "acquired-over"
        try:
            service = self.service
            if degraded:
                self.service.stats.count_request_degraded()
                budget = service.options.pair_budget
                budget = (
                    self.shed.degrade_pair_budget
                    if budget is None
                    else min(budget, self.shed.degrade_pair_budget)
                )
                service = self._degraded_service(budget)
            if deadline is not None:
                # The deadline covers queue wait too: only the remainder is
                # left for the engine.
                remaining = max(0.0, deadline - (time.perf_counter() - submitted))
                report = service.run(pairs, deadline=remaining)
            else:
                report = service.run(pairs)
            self.requests_served += 1
        except Exception as error:  # noqa: BLE001 - the daemon must answer
            # on_error="capture" absorbs per-pair ReproErrors, but a daemon
            # cannot afford *any* escaping exception: it would kill the
            # handler thread mid-request, the client would read EOF, and a
            # poisoned pair could defeat the daemon on every retry.  Answer
            # ok=false instead and stay alive.
            self._requests_total.inc(outcome="error")
            return BatchResponse(
                ok=False,
                error=f"internal error deciding the batch: {error!r}",
                stats=self.service.stats.as_dict(),
            )
        finally:
            self.gate.release()
            self._request_seconds.observe(time.perf_counter() - received)
        self._requests_total.inc(outcome="degraded" if degraded else "ok")
        verdicts = []
        for outcome in report.outcomes:
            witness_rows = None
            if outcome.result.witness is not None:
                witness_rows = sum(1 for _ in outcome.result.witness.database.facts())
            verdicts.append(
                PairVerdict(
                    index=outcome.index,
                    status=outcome.result.status.value,
                    method=outcome.result.method,
                    source=outcome.source,
                    witness_rows=witness_rows,
                )
            )
        return BatchResponse(
            ok=True, verdicts=tuple(verdicts), stats=report.stats, degraded=degraded
        )

    def _degraded_service(self, pair_budget: float) -> ContainmentService:
        """A view of the persistent service with the degrade budget applied.

        Shares the cache and stats objects, so degraded requests still warm
        (and profit from) the same plan cache.
        """
        degraded = ContainmentService.__new__(ContainmentService)
        degraded.options = replace(self.service.options, pair_budget=pair_budget)
        degraded.stats = self.service.stats
        degraded.cache = self.service.cache
        # Same durable store tier (or None): degraded verdicts persist too.
        degraded.store = self.service.store
        # Borrow the warm worker pool too (process mode): the view must never
        # spawn a pool of its own, and it never closes the shared one.
        degraded._process_pool = self.service._shared_process_pool()
        return degraded


# ---------------------------------------------------------------------- #
# The socket server
# ---------------------------------------------------------------------- #
class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        daemon: ContainmentDaemon = self.server.containment_daemon
        for line in self.rfile:
            if not line.strip():
                continue
            response = daemon.handle_line(line)
            stopping = daemon.stopping.is_set()
            if stopping:
                # Unlink the socket path *before* the ack goes out, so a
                # client that saw the stop reply never finds a lingering
                # socket file (the established connection is unaffected).
                _unlink_bound_socket(self.server)
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return
            if stopping:
                # Acknowledge first, then bring the server down from a side
                # thread (shutdown() deadlocks when called from a handler).
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return


def _unlink_bound_socket(server) -> None:
    """Remove the Unix socket file ``server`` bound, and only that one.

    Inode-guarded: a newer daemon may have already replaced a stale file
    with its own socket, and its socket must survive our cleanup.  A path
    someone else already removed is fine too.
    """
    daemon = getattr(server, "containment_daemon", None)
    address = getattr(daemon, "address", None)
    inode = getattr(server, "bound_inode", None)
    if address is None or address.kind != "unix" or inode is None:
        return
    try:
        if os.lstat(address.path).st_ino == inode:
            os.unlink(address.path)
    except OSError:
        pass


class _ThreadingMixIn(socketserver.ThreadingMixIn):
    daemon_threads = True


if hasattr(socketserver, "UnixStreamServer"):

    class _UnixServer(_ThreadingMixIn, socketserver.UnixStreamServer):
        allow_reuse_address = True

else:  # pragma: no cover - non-POSIX platforms
    _UnixServer = None


class _TCPServer(_ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True


def _clear_stale_socket(address: Address) -> None:
    """Remove a dead leftover socket file at ``address.path``, if any.

    A SIGKILLed daemon leaves its socket file behind; binding over it fails
    with EADDRINUSE even though nothing is listening.  Refuse to touch a
    path that is not a socket (a config typo must not delete a real file),
    refuse to steal a *live* socket, and tolerate another starter winning
    the unlink race.
    """
    try:
        mode = os.lstat(address.path).st_mode
    except FileNotFoundError:
        return
    if not stat.S_ISSOCK(mode):
        raise DaemonUnavailable(
            f"refusing to replace {address.path}: it exists but is not a socket"
        )
    if _probe(address, timeout=1.0):
        raise DaemonUnavailable(f"a daemon is already serving {address.path}")
    try:
        os.unlink(address.path)
    except FileNotFoundError:
        pass  # a concurrent starter removed it first


def make_server(daemon: ContainmentDaemon, address: Address):
    """Bind a threading socketserver for ``daemon`` at ``address``."""
    if address.kind == "unix":
        if _UnixServer is None or not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise DaemonUnavailable(
                "this platform has no AF_UNIX; use a host:port TCP address"
            )
        _clear_stale_socket(address)
        try:
            server = _UnixServer(address.path, _Handler)
        except OSError as error:
            if error.errno != errno.EADDRINUSE:
                raise
            # Lost a race: someone created the path between our unlink and
            # bind.  Re-run the liveness check once — if that occupant is
            # dead too, clear it and bind; if it is live, this raises.
            _clear_stale_socket(address)
            server = _UnixServer(address.path, _Handler)
    else:
        server = _TCPServer((address.host, address.port), _Handler)
    server.containment_daemon = daemon
    daemon.address = address
    return server


def serve(
    address: Address,
    options: Optional[BatchOptions] = None,
    shed: Optional[ShedOptions] = None,
    ready_callback=None,
    warmup: bool = False,
) -> None:
    """Run a daemon at ``address`` until a ``stop`` request arrives.

    Blocks the calling thread; ``ready_callback`` (if given) fires with the
    daemon once the socket is bound — tests use it to serve from a thread.
    With ``warmup`` the daemon pre-solves a tiny built-in batch *before*
    binding, so the socket only answers once the heavy code paths are warm.
    """
    daemon = ContainmentDaemon(options=options, shed=shed)
    if warmup:
        daemon.warmup()
    server = make_server(daemon, address)
    server.bound_inode = None
    if address.kind == "unix":
        try:
            server.bound_inode = os.lstat(address.path).st_ino
        except OSError:  # pragma: no cover - bind just created it
            pass
    try:
        if ready_callback is not None:
            ready_callback(daemon)
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        # Normally already gone (the stop handler unlinks before its ack);
        # this covers exits that never saw a stop request.
        _unlink_bound_socket(server)
        daemon.service.close()


# ---------------------------------------------------------------------- #
# The client
# ---------------------------------------------------------------------- #
class DaemonClient:
    """A line-oriented client for the daemon protocol.

    One connection per request/response round trip: the daemon protocol is
    stateless between lines, and short-lived connections keep the client
    trivially robust against daemon restarts.
    """

    #: Slack added to a deadline-carrying batch's client-side timeout: the
    #: daemon needs a moment beyond the deadline to assemble and ship the
    #: (deadline-exceeded) response.
    DEADLINE_MARGIN = 30.0

    def __init__(self, address: Optional[str] = None, timeout: Optional[float] = 300.0):
        text = address if address else default_socket_path()
        self.address = parse_address(text) if isinstance(text, str) else text
        self.timeout = timeout

    def _roundtrip(self, line: str, timeout: object = _USE_DEFAULT) -> str:
        timeout = self.timeout if timeout is _USE_DEFAULT else timeout
        try:
            sock = _connect(self.address, timeout)
        except (OSError, ValueError) as error:
            raise DaemonUnavailable(
                f"no containment daemon reachable at {self.address}: {error}"
            ) from None
        try:
            try:
                sock.sendall(line.encode("utf-8") + b"\n")
            except socket.timeout:
                raise DaemonUnavailable(
                    f"the daemon at {self.address} did not accept the request "
                    f"within {timeout}s"
                ) from None
            except OSError as error:
                # The request never made it onto the wire: the daemon cannot
                # have started the work, so falling back is safe.
                raise DaemonUnavailable(
                    f"could not send the request to the daemon at "
                    f"{self.address}: {error}"
                ) from None
            return self._read_response_line(sock, timeout)
        finally:
            sock.close()

    def _read_response_line(self, sock: socket.socket, timeout: object) -> str:
        """Read one response line; failures here are *not* retriable.

        The request is already on the wire, so every error past this point is
        a :class:`DaemonConnectionBroken` — never a :class:`DaemonUnavailable`
        — and carries how much of the response was read when the connection
        died.
        """
        chunks: List[bytes] = []
        received = 0
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                raise DaemonConnectionBroken(
                    f"the daemon at {self.address} accepted the request but "
                    f"sent no complete response within {timeout}s "
                    f"({received} bytes read); the request may still be "
                    "executing server-side"
                ) from None
            except OSError as error:
                raise DaemonConnectionBroken(
                    f"lost the connection to the daemon at {self.address} "
                    f"after {received} bytes of the response: {error}"
                ) from None
            if not chunk:
                if received == 0:
                    raise DaemonConnectionBroken(
                        f"the daemon at {self.address} closed the connection "
                        "before sending any response; the request may still "
                        "have executed server-side"
                    )
                prefix = b"".join(chunks)[:80]
                raise DaemonConnectionBroken(
                    f"the daemon at {self.address} closed the connection "
                    f"mid-response after {received} bytes "
                    f"(partial read starts {prefix!r})"
                )
            chunks.append(chunk)
            received += len(chunk)
            if chunk.endswith(b"\n") or b"\n" in chunk:
                break
        return b"".join(chunks).decode("utf-8")

    def ping(self) -> Dict[str, object]:
        return self._control("ping")

    def status(self) -> Dict[str, object]:
        return self._control("status")

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition document."""
        return str(self._control("metrics")["body"])

    def stop(self) -> Dict[str, object]:
        return self._control("stop")

    def _control(self, op: str) -> Dict[str, object]:
        response = parse_response(self._roundtrip(encode_request(ControlRequest(op))))
        if not response.get("ok"):
            raise DaemonUnavailable(
                f"daemon {op} failed: {response.get('error', 'unknown error')}"
            )
        return response

    def batch(
        self,
        pairs: Sequence[Tuple[str, str]],
        deadline_seconds: Optional[float] = None,
        priority: str = "normal",
    ) -> BatchResponse:
        """Decide textual query pairs through the daemon.

        The read timeout follows the request's deadline (plus a margin)
        rather than the client's control-op timeout: a batch without a
        deadline may legitimately take arbitrarily long, and timing out
        client-side would abandon a request the daemon is still computing
        (and, via the CLI fallback, recompute it locally on top).
        """
        request = BatchRequest(
            pairs=tuple(PairSpec(q1=q1, q2=q2) for q1, q2 in pairs),
            deadline_seconds=deadline_seconds,
            priority=priority,
        )
        timeout = (
            None
            if deadline_seconds is None
            else deadline_seconds + self.DEADLINE_MARGIN
        )
        return parse_batch_response(
            self._roundtrip(encode_request(request), timeout=timeout)
        )


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    if address.kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        if address.kind == "unix":
            sock.connect(address.path)
        else:
            sock.connect((address.host, address.port))
    except OSError:
        sock.close()
        raise
    return sock


def _probe(address: Address, timeout: float = 1.0) -> bool:
    """True when something at ``address`` answers a ping."""
    try:
        response = DaemonClient(str(address), timeout=timeout).ping()
    except (DaemonUnavailable, DaemonConnectionBroken, ProtocolError):
        return False
    return bool(response.get("ok"))


def daemon_available(address: Optional[str] = None, timeout: float = 2.0) -> bool:
    """True when a live daemon answers a ping at ``address``."""
    text = address if address else default_socket_path()
    return _probe(parse_address(text), timeout=timeout)


# ---------------------------------------------------------------------- #
# Process management (used by the CLI)
# ---------------------------------------------------------------------- #
def spawn_daemon(
    address: Optional[str] = None,
    extra_args: Sequence[str] = (),
    wait_seconds: float = 15.0,
    log_path: Optional[str] = None,
) -> int:
    """Start a detached daemon process and wait until it answers pings.

    Returns the child pid.  ``extra_args`` are forwarded to
    ``repro daemon run`` verbatim (engine and shedding flags).
    """
    text = address if address else default_socket_path()
    if daemon_available(text, timeout=1.0):
        raise DaemonUnavailable(f"a daemon is already running at {text}")
    if log_path is None:
        log_path = os.path.join(
            tempfile.gettempdir(), f"repro-daemon-{os.getpid()}.log"
        )
    command = [
        sys.executable,
        "-m",
        "repro",
        "daemon",
        "run",
        "--socket",
        text,
        *extra_args,
    ]
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src_root
    )
    with open(log_path, "ab") as log:
        child = subprocess.Popen(
            command,
            stdout=log,
            stderr=log,
            stdin=subprocess.DEVNULL,
            start_new_session=True,
            env=env,
        )
    waited = 0.0
    while waited < wait_seconds:
        if daemon_available(text, timeout=1.0):
            return child.pid
        if child.poll() is not None:
            raise DaemonUnavailable(
                f"the daemon process exited with code {child.returncode} before "
                f"binding {text} (log: {log_path})"
            )
        time.sleep(0.1)
        waited += 0.1
    child.terminate()
    raise DaemonUnavailable(
        f"the daemon did not answer pings at {text} within {wait_seconds}s "
        f"(log: {log_path})"
    )


def stop_daemon(
    address: Optional[str] = None, wait_seconds: float = 10.0
) -> Dict[str, object]:
    """Send ``stop`` and wait for the endpoint to go quiet."""
    text = address if address else default_socket_path()
    client = DaemonClient(text, timeout=10.0)
    response = client.stop()
    waited = 0.0
    while waited < wait_seconds:
        if not daemon_available(text, timeout=0.5):
            return response
        time.sleep(0.1)
        waited += 0.1
    raise DaemonUnavailable(
        f"the daemon at {text} acknowledged stop but is still answering after "
        f"{wait_seconds}s"
    )
