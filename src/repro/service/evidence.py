"""Renaming containment evidence between isomorphic query pairs.

The plan cache (and the durable verdict store behind it) keys pairs by their
canonical form, so one stored result answers every isomorphic requester.
Statuses are renaming-invariant, but the *evidence* — the witness relation,
the Eq. (8) inequality with its homomorphisms and tree-decomposition bags,
the violating set function and the Shannon certificate — is expressed over
concrete variable names.  Handing a requester the representative's names
would be wrong for every pair but the first one solved.

This module renames a :class:`~repro.core.containment.ContainmentResult`
along a variable bijection per query side.  The bijections come from the
canonical labelings of :func:`repro.service.canonical.pair_key_with_labelings`:
``canonical_mappings`` maps a solved pair's variables *onto* the canonical
names (``c0, c1, ...``) for storage, and ``requester_mappings`` maps the
canonical names back onto a requesting pair's variables on a hit.  Equal
keys guarantee both sides are isomorphic to the same canonical pair, so the
composition is always a sound bijection — even when the canonicalization
search budget was exhausted (the key *is* the serialization under the
concrete labeling).

Witness *databases* are untouched: their facts range over domain values, not
variables, and separate any isomorphic pair equally (only the optional
witness relation carries attribute names).  The Boolean reduction of
Lemma A.1 adds guard atoms but never variables, so the pipeline's evidence
only ever mentions variables of the submitted queries — both mappings are
total on everything that needs renaming.

This renaming invariant — evidence is stored canonical, delivered in the
requester's variables — is what makes plan-cache hits, store hits, and the
gateway's cross-shard dedup indistinguishable from fresh solves; see
``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.containment import ContainmentResult
from repro.core.containment_inequality import (
    ContainmentBranch,
    ContainmentInequality,
)
from repro.core.witness import WitnessDatabase
from repro.cq.decompositions import TreeDecomposition
from repro.infotheory.maxiip import MaxIIVerdict
from repro.infotheory.shannon import ShannonCertificate
from repro.service.canonical import PairLabelings

VariableMap = Mapping[str, str]


def canonical_mappings(labelings: PairLabelings) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Per-side maps from a pair's variables onto the canonical ``c<i>`` names."""
    labeling1, labeling2 = labelings
    return (
        {variable: f"c{index}" for variable, index in labeling1.items()},
        {variable: f"c{index}" for variable, index in labeling2.items()},
    )


def requester_mappings(labelings: PairLabelings) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Per-side maps from the canonical ``c<i>`` names onto a requester's variables."""
    labeling1, labeling2 = labelings
    return (
        {f"c{index}": variable for variable, index in labeling1.items()},
        {f"c{index}": variable for variable, index in labeling2.items()},
    )


def rename_result(
    result: ContainmentResult, mapping1: VariableMap, mapping2: VariableMap
) -> ContainmentResult:
    """Rename every piece of evidence in ``result``.

    ``mapping1`` renames ``Q1``-side variables (the inequality's ground set,
    witness relation attributes, set functions, certificates), ``mapping2``
    the ``Q2`` side (tree-decomposition bags and the homomorphism domains).
    Status, method, details and provenance pass through unchanged.
    """
    return replace(
        result,
        inequality=_rename_inequality(result.inequality, mapping1, mapping2),
        witness=_rename_witness(result.witness, mapping1),
        verdict=_rename_verdict(result.verdict, mapping1),
    )


def _rename_witness(
    witness: Optional[WitnessDatabase], mapping1: VariableMap
) -> Optional[WitnessDatabase]:
    if witness is None or witness.relation is None:
        return witness
    return replace(witness, relation=witness.relation.rename(mapping1))


def _rename_inequality(
    inequality: Optional[ContainmentInequality],
    mapping1: VariableMap,
    mapping2: VariableMap,
) -> Optional[ContainmentInequality]:
    if inequality is None:
        return None
    ground = tuple(mapping1.get(v, v) for v in inequality.ground)
    branches = tuple(
        ContainmentBranch(
            decomposition=TreeDecomposition(
                tree=branch.decomposition.tree,
                bags={
                    node: frozenset(mapping2.get(v, v) for v in bag)
                    for node, bag in branch.decomposition.bags.items()
                },
            ),
            homomorphism={
                mapping2.get(source, source): mapping1.get(target, target)
                for source, target in branch.homomorphism.items()
            },
            conditional=branch.conditional.substitute(mapping1, ground),
        )
        for branch in inequality.branches
    )
    return ContainmentInequality(
        q1=inequality.q1.rename(mapping1),
        q2=inequality.q2.rename(mapping2),
        ground=ground,
        branches=branches,
    )


def _rename_verdict(
    verdict: Optional[MaxIIVerdict], mapping1: VariableMap
) -> Optional[MaxIIVerdict]:
    if verdict is None:
        return None
    function = verdict.violating_function
    coefficients = verdict.violating_coefficients
    return replace(
        verdict,
        violating_function=None if function is None else function.rename(mapping1),
        violating_coefficients=None
        if coefficients is None
        else {
            frozenset(mapping1.get(v, v) for v in subset): value
            for subset, value in coefficients.items()
        },
        certificate=_rename_certificate(verdict.certificate, mapping1),
    )


def _rename_certificate(
    certificate: Optional[ShannonCertificate], mapping1: VariableMap
) -> Optional[ShannonCertificate]:
    if certificate is None:
        return None
    return ShannonCertificate(
        ground=tuple(mapping1.get(v, v) for v in certificate.ground),
        multipliers=tuple(
            (elemental.rename(mapping1), multiplier)
            for elemental, multiplier in certificate.multipliers
        ),
    )
