"""Service-level statistics for the batch containment engine."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class GroupTiming:
    """Timing of one block-LP chunk solve.

    Attributes
    ----------
    cone:
        Cone the chunk was decided over (``"gamma"`` for grouped solves).
    ground_size:
        Number of ground variables ``n`` shared by the chunk's requests.
    requests:
        How many per-pair LP decisions the chunk folded into one solve.
    rows:
        Stacked per-pair objective (branch) rows of the block program — the
        shared cone-description rows each block also carries are not counted.
    seconds:
        Wall-clock time of the solve.
    """

    cone: str
    ground_size: int
    requests: int
    rows: int
    seconds: float


@dataclass
class ServiceStats:
    """Counters accumulated by a :class:`~repro.service.service.ContainmentService`.

    ``lp_solves_avoided`` counts HiGHS invocations saved by grouping: a chunk
    that folds ``k`` cone decisions into one block solve avoids ``k - 1``
    solves relative to the sequential path.  Cache hits and batch duplicates
    additionally avoid their pairs' *entire* pipelines (homomorphism
    enumeration, inequality construction and all LP work).

    The shedding counters cover the service-protection knobs:
    ``pairs_deadline_exceeded`` counts pairs closed out by a batch deadline,
    ``requests_rejected`` whole requests turned away by a full admission
    queue, and ``requests_degraded`` requests the ``"degrade"`` policy ran
    with a clamped per-pair budget instead of rejecting.
    """

    pairs_submitted: int = 0
    pipelines_run: int = 0
    cache_hits: int = 0
    batch_duplicates: int = 0
    pair_errors: int = 0
    pairs_over_budget: int = 0
    pairs_deadline_exceeded: int = 0
    requests_rejected: int = 0
    requests_degraded: int = 0
    lp_requests: int = 0
    block_solves: int = 0
    scalar_solves: int = 0
    lp_solves_avoided: int = 0
    wall_seconds: float = 0.0
    group_timings: List[GroupTiming] = field(default_factory=list)
    # Chunk solves and scalar solves run on engine worker threads; the lock
    # keeps their counter updates consistent under max_workers > 1.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_chunk(self, timing: GroupTiming) -> None:
        with self._lock:
            self.group_timings.append(timing)
            self.block_solves += 1
            self.lp_solves_avoided += max(0, timing.requests - 1)

    def count_scalar_solve(self) -> None:
        with self._lock:
            self.scalar_solves += 1

    def count_over_budget(self) -> None:
        with self._lock:
            self.pairs_over_budget += 1

    def count_deadline_exceeded(self) -> None:
        with self._lock:
            self.pairs_deadline_exceeded += 1

    def count_request_rejected(self) -> None:
        with self._lock:
            self.requests_rejected += 1

    def count_request_degraded(self) -> None:
        with self._lock:
            self.requests_degraded += 1

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot (group timings aggregated per arity)."""
        per_group: Dict[str, Dict[str, float]] = {}
        for timing in self.group_timings:
            key = f"{timing.cone}:n={timing.ground_size}"
            bucket = per_group.setdefault(
                key, {"chunks": 0, "requests": 0, "rows": 0, "seconds": 0.0}
            )
            bucket["chunks"] += 1
            bucket["requests"] += timing.requests
            bucket["rows"] += timing.rows
            bucket["seconds"] += timing.seconds
        return {
            "pairs_submitted": self.pairs_submitted,
            "pipelines_run": self.pipelines_run,
            "cache_hits": self.cache_hits,
            "batch_duplicates": self.batch_duplicates,
            "pair_errors": self.pair_errors,
            "pairs_over_budget": self.pairs_over_budget,
            "pairs_deadline_exceeded": self.pairs_deadline_exceeded,
            "requests_rejected": self.requests_rejected,
            "requests_degraded": self.requests_degraded,
            "lp_requests": self.lp_requests,
            "block_solves": self.block_solves,
            "scalar_solves": self.scalar_solves,
            "lp_solves_avoided": self.lp_solves_avoided,
            "wall_seconds": self.wall_seconds,
            "groups": per_group,
        }
