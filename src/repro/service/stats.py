"""Service-level statistics for the batch containment engine.

Since the telemetry layer landed, :class:`ServiceStats` is a thin view over
a :class:`~repro.obs.metrics.MetricsRegistry`: every counter attribute is a
descriptor reading and writing a registered Prometheus counter, so the
historical mutation style (``stats.cache_hits += 1``) and the ``as_dict()``
wire format both keep working while the same numbers flow out of the
daemon's ``metrics`` verb and ``repro daemon status --prom``.

The full metric catalog (names, types, labels, meanings) is maintained in
``docs/operations.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class GroupTiming:
    """Timing of one block-LP chunk solve.

    Attributes
    ----------
    cone:
        Cone the chunk was decided over (``"gamma"`` for grouped solves).
    ground_size:
        Number of ground variables ``n`` shared by the chunk's requests.
    requests:
        How many per-pair LP decisions the chunk folded into one solve.
    rows:
        Stacked per-pair objective (branch) rows of the block program — the
        shared cone-description rows each block also carries are not counted.
    seconds:
        Wall-clock time of the solve.
    """

    cone: str
    ground_size: int
    requests: int
    rows: int
    seconds: float


class _CounterField:
    """One ServiceStats attribute backed by a registry counter.

    Reads return the counter total (as ``int`` for the count-style fields);
    assignment forwards to :meth:`~repro.obs.metrics.Counter.set_total`, so
    ``stats.cache_hits += 1`` still works and still refuses to run a
    monotone total backwards.
    """

    def __init__(self, metric_name: str, help: str, integral: bool = True):
        self.metric_name = metric_name
        self.help = help
        self.integral = integral
        self.attr = ""

    def __set_name__(self, owner, name: str) -> None:
        self.attr = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = obj._counters[self.attr].value()
        return int(value) if self.integral else value

    def __set__(self, obj, value) -> None:
        obj._counters[self.attr].set_total(float(value))


class ServiceStats:
    """Counters accumulated by a :class:`~repro.service.service.ContainmentService`.

    ``lp_solves_avoided`` counts HiGHS invocations saved by grouping: a chunk
    that folds ``k`` cone decisions into one block solve avoids ``k - 1``
    solves relative to the sequential path.  Cache hits and batch duplicates
    additionally avoid their pairs' *entire* pipelines (homomorphism
    enumeration, inequality construction and all LP work).

    The shedding counters cover the service-protection knobs:
    ``pairs_deadline_exceeded`` counts pairs closed out by a batch deadline,
    ``requests_rejected`` whole requests turned away by a full admission
    queue, and ``requests_degraded`` requests the ``"degrade"`` policy ran
    with a clamped per-pair budget instead of rejecting.

    Every attribute below is backed by a counter in ``registry`` (a private
    registry when none is given), and :meth:`observe_pair_seconds` feeds the
    ``repro_pair_seconds`` latency histogram the daemon exposes.
    """

    pairs_submitted = _CounterField(
        "repro_pairs_submitted_total", "Query pairs submitted to the service."
    )
    pipelines_run = _CounterField(
        "repro_pipelines_run_total",
        "Containment pipelines actually executed (cache misses, one per unique pair).",
    )
    cache_hits = _CounterField(
        "repro_plan_cache_hits_total",
        "Pairs answered from the canonical-form plan cache.",
    )
    store_hits = _CounterField(
        "repro_store_hits_total",
        "Pairs answered from the durable verdict store (disk tier).",
    )
    batch_duplicates = _CounterField(
        "repro_batch_duplicates_total",
        "Pairs deduplicated against an identical pair in the same batch.",
    )
    pair_errors = _CounterField(
        "repro_pair_errors_total", "Pairs whose pipeline raised an error."
    )
    pairs_over_budget = _CounterField(
        "repro_pairs_over_budget_total",
        "Pairs stopped by the per-pair time budget.",
    )
    pairs_deadline_exceeded = _CounterField(
        "repro_pairs_deadline_exceeded_total",
        "Pairs closed out unresolved by a batch deadline.",
    )
    requests_rejected = _CounterField(
        "repro_requests_rejected_total",
        "Whole requests turned away by a full admission queue.",
    )
    requests_degraded = _CounterField(
        "repro_requests_degraded_total",
        "Requests the degrade shedding policy ran with a clamped pair budget.",
    )
    lp_requests = _CounterField(
        "repro_lp_requests_total", "Cone-membership LP decisions requested."
    )
    block_solves = _CounterField(
        "repro_lp_block_solves_total",
        "Grouped block-diagonal LP solves (one per chunk).",
    )
    scalar_solves = _CounterField(
        "repro_lp_scalar_solves_total",
        "Single-request LP solves outside the grouped path.",
    )
    lp_solves_avoided = _CounterField(
        "repro_lp_solves_avoided_total",
        "LP solver invocations saved by folding requests into block solves.",
    )
    wall_seconds = _CounterField(
        "repro_batch_wall_seconds_total",
        "Wall-clock seconds spent inside ContainmentService.run.",
        integral=False,
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field.attr: self.registry.counter(field.metric_name, field.help)
            for field in vars(type(self)).values()
            if isinstance(field, _CounterField)
        }
        self.pair_seconds = self.registry.histogram(
            "repro_pair_seconds",
            "Per-pair end-to-end decision latency in seconds.",
            buckets=LATENCY_BUCKETS,
        )
        self.chunk_solve_seconds = self.registry.histogram(
            "repro_chunk_solve_seconds",
            "Wall time of one grouped block-LP chunk solve.",
            buckets=LATENCY_BUCKETS,
            labelnames=("cone", "ground_size"),
        )
        self.group_timings: List[GroupTiming] = []
        # Chunk solves and scalar solves run on engine worker threads; the
        # lock keeps group_timings appends consistent under max_workers > 1
        # (the counters carry their own registry lock).
        self._lock = threading.Lock()

    def record_chunk(self, timing: GroupTiming) -> None:
        with self._lock:
            self.group_timings.append(timing)
        self._counters["block_solves"].inc()
        saved = max(0, timing.requests - 1)
        if saved:
            self._counters["lp_solves_avoided"].inc(saved)
        self.chunk_solve_seconds.observe(
            timing.seconds, cone=timing.cone, ground_size=str(timing.ground_size)
        )

    def observe_pair_seconds(self, seconds: float) -> None:
        """File one pair's end-to-end latency into the exposed histogram."""
        self.pair_seconds.observe(seconds)

    def count_scalar_solve(self) -> None:
        self._counters["scalar_solves"].inc()

    def count_over_budget(self) -> None:
        self._counters["pairs_over_budget"].inc()

    def count_deadline_exceeded(self) -> None:
        self._counters["pairs_deadline_exceeded"].inc()

    def count_request_rejected(self) -> None:
        self._counters["requests_rejected"].inc()

    def count_request_degraded(self) -> None:
        self._counters["requests_degraded"].inc()

    def per_group(self) -> Dict[str, Dict[str, float]]:
        """Group timings aggregated per ``cone:n=<arity>`` key."""
        with self._lock:
            timings = list(self.group_timings)
        per_group: Dict[str, Dict[str, float]] = {}
        for timing in timings:
            key = f"{timing.cone}:n={timing.ground_size}"
            bucket = per_group.setdefault(
                key, {"chunks": 0, "requests": 0, "rows": 0, "seconds": 0.0}
            )
            bucket["chunks"] += 1
            bucket["requests"] += timing.requests
            bucket["rows"] += timing.rows
            bucket["seconds"] += timing.seconds
        return per_group

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot (group timings aggregated per arity)."""
        return {
            "pairs_submitted": self.pairs_submitted,
            "pipelines_run": self.pipelines_run,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "batch_duplicates": self.batch_duplicates,
            "pair_errors": self.pair_errors,
            "pairs_over_budget": self.pairs_over_budget,
            "pairs_deadline_exceeded": self.pairs_deadline_exceeded,
            "requests_rejected": self.requests_rejected,
            "requests_degraded": self.requests_degraded,
            "lp_requests": self.lp_requests,
            "block_solves": self.block_solves,
            "scalar_solves": self.scalar_solves,
            "lp_solves_avoided": self.lp_solves_avoided,
            "wall_seconds": self.wall_seconds,
            "groups": self.per_group(),
        }
