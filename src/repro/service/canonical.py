"""Canonical labeling of conjunctive queries for the plan cache.

Bag containment is invariant under renaming the variables of either query,
so a batch of pairs should pay for each *isomorphism class* once.  The plan
cache therefore keys pairs by a canonical form computed here.

The canonical form is obtained by a standard color-refinement / individualize
search (a small-scale cousin of practical graph-canonicalization tools):

1. variables receive initial colors from isomorphism-invariant data (their
   head positions and the relation/position profile of their occurrences);
2. colors are refined to a fixed point by repeatedly hashing each variable's
   colored atom incidences (1-WL on the query's incidence structure);
3. remaining ties are broken by individualizing each member of the first
   non-singleton color class in turn, recursing, and keeping the
   lexicographically smallest serialization.

Soundness does not depend on the search being complete: two queries receive
the same key *only if* a variable bijection maps one onto the other, because
the key is the serialization of the query under a concrete relabeling.  The
search budget (``budget`` leaves) only bounds how much symmetry is explored —
exceeding it can at worst miss a cache hit, never corrupt one.

The same keys drive the plan cache, the durable store, the gateway's
cross-shard dedup, and ring routing — see ``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cq.query import Atom, ConjunctiveQuery

# Serialized canonical form: (sorted relabeled atoms, relabeled head).
QueryKey = Tuple[Tuple[Tuple[str, Tuple[int, ...]], ...], Tuple[int, ...]]
PairKey = Tuple[QueryKey, QueryKey]

#: Leaves of the individualization search explored before falling back to a
#: greedy (still sound, possibly non-canonical) completion.
DEFAULT_SEARCH_BUDGET = 2048


def _initial_colors(query: ConjunctiveQuery) -> Dict[str, int]:
    """Invariant starting colors: head positions + occurrence profile."""
    signatures = {}
    for variable in query.variables:
        head_positions = tuple(
            i for i, head_var in enumerate(query.head) if head_var == variable
        )
        profile = sorted(
            (atom.relation, position, atom.arity)
            for atom in query.atoms
            for position, arg in enumerate(atom.args)
            if arg == variable
        )
        signatures[variable] = (head_positions, tuple(profile))
    return _rank(signatures)


def _rank(signatures: Dict[str, object]) -> Dict[str, int]:
    """Replace arbitrary (orderable) signatures by dense integer ranks."""
    order = {sig: rank for rank, sig in enumerate(sorted(set(signatures.values())))}
    return {variable: order[sig] for variable, sig in signatures.items()}


def _refine(query: ConjunctiveQuery, colors: Dict[str, int]) -> Dict[str, int]:
    """Run 1-WL color refinement to a fixed point."""
    while True:
        signatures = {}
        for variable in query.variables:
            incidences = sorted(
                (atom.relation, position, tuple(colors[arg] for arg in atom.args))
                for atom in query.atoms
                for position, arg in enumerate(atom.args)
                if arg == variable
            )
            signatures[variable] = (colors[variable], tuple(incidences))
        refined = _rank(signatures)
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined


def _serialize(query: ConjunctiveQuery, labeling: Dict[str, int]) -> QueryKey:
    atoms = tuple(
        sorted(
            (atom.relation, tuple(labeling[arg] for arg in atom.args))
            for atom in query.atoms
        )
    )
    head = tuple(labeling[variable] for variable in query.head)
    return (atoms, head)


def _labeling_from_colors(
    variables: Sequence[str], colors: Dict[str, int]
) -> Dict[str, int]:
    """A concrete labeling from a discrete coloring (ties broken by occurrence)."""
    ordered = sorted(variables, key=lambda v: (colors[v], variables.index(v)))
    return {variable: index for index, variable in enumerate(ordered)}


class _Search:
    """Individualization-refinement search for the minimal serialization."""

    def __init__(self, query: ConjunctiveQuery, budget: int):
        self.query = query
        self.variables = query.variables
        self.budget = budget
        self.best_key: Optional[QueryKey] = None
        self.best_labeling: Optional[Dict[str, int]] = None

    def run(self, colors: Dict[str, int]) -> Tuple[QueryKey, Dict[str, int]]:
        self._explore(colors)
        assert self.best_key is not None and self.best_labeling is not None
        return self.best_key, self.best_labeling

    def _explore(self, colors: Dict[str, int]) -> None:
        classes: Dict[int, List[str]] = {}
        for variable in self.variables:
            classes.setdefault(colors[variable], []).append(variable)
        target_class = None
        for color in sorted(classes):
            if len(classes[color]) > 1:
                target_class = classes[color]
                break
        if target_class is None or self.budget <= 0:
            # Discrete coloring (or budget exhausted): close out greedily.
            self.budget -= 1
            labeling = _labeling_from_colors(self.variables, colors)
            key = _serialize(self.query, labeling)
            if self.best_key is None or key < self.best_key:
                self.best_key = key
                self.best_labeling = labeling
            return
        for variable in target_class:
            if self.budget <= 0 and self.best_key is not None:
                return
            individualized = {
                other: (colors[other], 1 if other == variable else 0)
                for other in self.variables
            }
            refined = _refine(self.query, _rank(individualized))
            self._explore(refined)


def canonical_labeling(
    query: ConjunctiveQuery, budget: int = DEFAULT_SEARCH_BUDGET
) -> Tuple[QueryKey, Dict[str, int]]:
    """The canonical key of ``query`` and the variable labeling producing it."""
    colors = _refine(query, _initial_colors(query))
    return _Search(query, budget).run(colors)


def canonical_query_key(
    query: ConjunctiveQuery, budget: int = DEFAULT_SEARCH_BUDGET
) -> QueryKey:
    """A hashable structural key, identical across isomorphic queries.

    Equal keys guarantee isomorphism (the key is the query serialized under a
    concrete relabeling); distinct keys for isomorphic queries are possible
    only when the search budget is exhausted on highly symmetric queries.
    """
    key, _ = canonical_labeling(query, budget)
    return key


def canonical_query(
    query: ConjunctiveQuery, budget: int = DEFAULT_SEARCH_BUDGET
) -> ConjunctiveQuery:
    """The canonical form of ``query``: variables renamed to ``c0, c1, ...``,
    atoms in sorted order, name fixed — identical for isomorphic queries
    (up to the search budget)."""
    key, _ = canonical_labeling(query, budget)
    atoms = tuple(
        Atom(relation, tuple(f"c{index}" for index in indices))
        for relation, indices in key[0]
    )
    head = tuple(f"c{index}" for index in key[1])
    return ConjunctiveQuery(atoms=atoms, head=head, name="canonical")


def pair_key(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    budget: int = DEFAULT_SEARCH_BUDGET,
) -> PairKey:
    """The plan-cache key of a containment pair ``(Q1, Q2)``.

    The queries are canonicalized independently — containment is invariant
    under independent variable renamings of either side (heads are aligned
    positionally, and the head positions are part of each query's key).
    """
    return (canonical_query_key(q1, budget), canonical_query_key(q2, budget))


# Per-side labelings (variable → canonical index) accompanying a PairKey.
PairLabelings = Tuple[Dict[str, int], Dict[str, int]]


def pair_key_with_labelings(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    budget: int = DEFAULT_SEARCH_BUDGET,
) -> Tuple[PairKey, PairLabelings]:
    """:func:`pair_key` plus the per-side labelings that produced it.

    The labelings are the isomorphisms onto the canonical form: two pairs
    with equal keys are mapped onto *the same* canonical pair, so composing
    one pair's labeling with the inverse of the other's is always a sound
    variable bijection between them.  This is what lets the plan cache (and
    the durable store behind it) keep evidence in canonical variables and
    rename it onto each requester's variables on a hit.
    """
    key1, labeling1 = canonical_labeling(q1, budget)
    key2, labeling2 = canonical_labeling(q2, budget)
    return (key1, key2), (labeling1, labeling2)
