"""Batch containment service: high-volume serving of containment checks.

The :mod:`repro.core` layer decides one query pair at a time.  This package
turns the library into a serving system that absorbs *workloads* of pairs:

* :mod:`repro.service.canonical` — canonical labeling of conjunctive queries
  and structural hash keys, so duplicate and isomorphic pairs are recognized;
* :mod:`repro.service.cache` — the plan cache mapping structural keys to
  previously computed :class:`~repro.core.containment.ContainmentResult`\\ s;
* :mod:`repro.service.engine` — the batch engine: drives many per-pair
  containment pipelines side by side, groups their Shannon-cone LP requests
  by ground arity, and answers each group from chunked block-LP solves
  (one HiGHS invocation per chunk instead of one per pair);
* :mod:`repro.service.service` — the user-facing :class:`ContainmentService`
  and the :func:`decide_containment_many` convenience entry point;
* :mod:`repro.service.stats` — service-level statistics (cache hits, LP
  solves avoided, shed/deadline counters, per-group timings);
* :mod:`repro.service.protocol` — the JSONL wire protocol spoken between
  the daemon and its clients;
* :mod:`repro.service.daemon` — the persistent daemon: a long-lived server
  process that keeps one warm service (plan cache, cached provers, lattice
  contexts) alive across CLI invocations, with admission control
  (queue-depth shedding, per-request deadlines, priorities);
* :mod:`repro.service.fleet` — N daemon replicas behind one asyncio
  gateway that shards pairs by structural hash (per-replica cache
  affinity), re-routes around dead replicas mid-batch, and re-warms
  drained replicas from their peers' verdict stores.

Quickstart
----------
>>> from repro import parse_query
>>> from repro.service import decide_containment_many
>>> pairs = [
...     (parse_query("R(x,y), R(y,z), R(z,x)"), parse_query("R(a,b), R(a,c)")),
...     (parse_query("R(u,v), R(v,w), R(w,u)"), parse_query("R(s,t), R(s,r)")),
... ]
>>> [r.status.value for r in decide_containment_many(pairs)]
['contained', 'contained']

The layer map and the life of one pair through this stack are documented in
``docs/architecture.md``; the operator runbook (lifecycle, failure modes,
metric catalogs) is ``docs/operations.md``.
"""

from repro.service.canonical import canonical_query, canonical_query_key, pair_key
from repro.service.cache import PlanCache
from repro.service.daemon import (
    ContainmentDaemon,
    DaemonClient,
    DaemonConnectionBroken,
    DaemonUnavailable,
    ShedOptions,
    daemon_available,
    default_socket_path,
    spawn_daemon,
    stop_daemon,
)
from repro.service.engine import BatchEngine, PipelineSpec, PipelineStep, PipelineTask
from repro.service.fleet import (
    FleetError,
    FleetGateway,
    ReplicaSpec,
    fleet_status,
    merge_stores,
    spawn_gateway,
    start_fleet,
    stop_fleet,
)
from repro.service.service import (
    BatchOptions,
    BatchReport,
    ContainmentService,
    PairOutcome,
    decide_containment_many,
)
from repro.service.stats import GroupTiming, ServiceStats

__all__ = [
    "BatchEngine",
    "BatchOptions",
    "BatchReport",
    "ContainmentDaemon",
    "ContainmentService",
    "DaemonClient",
    "DaemonConnectionBroken",
    "DaemonUnavailable",
    "FleetError",
    "FleetGateway",
    "GroupTiming",
    "PairOutcome",
    "PipelineSpec",
    "PipelineStep",
    "PipelineTask",
    "PlanCache",
    "ReplicaSpec",
    "ServiceStats",
    "ShedOptions",
    "canonical_query",
    "canonical_query_key",
    "daemon_available",
    "decide_containment_many",
    "default_socket_path",
    "fleet_status",
    "merge_stores",
    "pair_key",
    "spawn_daemon",
    "spawn_gateway",
    "start_fleet",
    "stop_daemon",
    "stop_fleet",
]
