"""The batch engine: many containment pipelines, few LP solves.

The engine drives a set of per-pair containment pipelines
(:func:`repro.core.containment.containment_pipeline`) in *rounds*.  In every
round each still-active pipeline has exactly one pending
:class:`~repro.core.containment.ConeDecisionRequest`; the engine answers all
of them at once:

* **Shannon-cone requests** (``over="gamma"`` — the hot path: every pair's
  Theorem 3.1 / Theorem 4.2 check issues exactly one) are grouped by ground
  arity (and seed hint).  Each group's inequalities are renamed onto a shared canonical
  ground tuple — an order-preserving positional rename, so the LP matrices
  are bit-for-bit the ones the sequential path would build — and decided in
  chunks through :func:`repro.infotheory.maxiip.decide_max_ii_many`, which
  stacks a chunk into one block-diagonal HiGHS solve.  The ``lp_method``
  knob (``"dense" | "rowgen" | "auto"``) picks how each block carries the
  ``Γn`` description: dense stacks one full elemental-matrix copy per pair,
  row generation (the default past the auto threshold) gives every block a
  small lazily-grown active row set instead — so chunks of large-arity
  pairs no longer multiply the ~``C(n,2)·2^(n-2)``-row matrix by the chunk
  size.
* **Refutation requests** (``over`` in ``{"normal", "modular"}`` — the rare
  tail after a failed Γn check) are answered by individual
  :func:`decide_max_ii` calls, exactly as the sequential driver would: the
  violating generator coefficients feed the Theorem 3.4 witness
  constructions, and answering them from a joint solve could select a
  different vertex of the same polyhedron than the sequential path.

Pipeline advancement and LP solving can be spread over a thread pool
(``max_workers``); the query-side stages hold the GIL but the HiGHS solves
release it, so chunks of different arity groups overlap.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.containment import (
    ConeDecisionRequest,
    ContainmentPipeline,
    ContainmentResult,
    ContainmentStatus,
)
from repro.exceptions import ReproError
from repro.infotheory.expressions import MaxInformationInequality
from repro.infotheory.maxiip import MaxIIVerdict, decide_max_ii, decide_max_ii_many
from repro.infotheory.setfunction import SetFunction
from repro.lp.backends import BACKEND_NAMES
from repro.service.stats import GroupTiming, ServiceStats


def _canonical_ground(size: int) -> Tuple[str, ...]:
    """The shared ground tuple all size-``n`` grouped requests are renamed onto."""
    return tuple(f"v{i}" for i in range(size))


def _rename_max_ii(
    max_ii: MaxInformationInequality,
    mapping: Dict[str, str],
    ground: Tuple[str, ...],
) -> MaxInformationInequality:
    return MaxInformationInequality(
        branches=tuple(branch.substitute(mapping, ground) for branch in max_ii.branches)
    )


def _verdict_to_original(
    verdict: MaxIIVerdict, original_ground: Tuple[str, ...]
) -> MaxIIVerdict:
    """Translate a verdict over the canonical ground back to the pair's names.

    The rename is positional and order-preserving, so the dense value vector
    of a violating function carries over unchanged.
    """
    if verdict.violating_function is None:
        return MaxIIVerdict(valid=verdict.valid, cone=verdict.cone)
    function = SetFunction.from_vector(
        original_ground, verdict.violating_function.to_vector()
    )
    return MaxIIVerdict(
        valid=verdict.valid,
        cone=verdict.cone,
        violating_function=function,
        violating_coefficients=None,
    )


class _PairRun:
    """Bookkeeping for one pipeline driven by the engine."""

    __slots__ = ("pipeline", "request", "result", "error", "elapsed")

    def __init__(self, pipeline: ContainmentPipeline):
        self.pipeline = pipeline
        self.request: Optional[ConeDecisionRequest] = None
        self.result: Optional[ContainmentResult] = None
        self.error: Optional[Exception] = None
        self.elapsed = 0.0

    @property
    def active(self) -> bool:
        return self.result is None and self.error is None


class BatchEngine:
    """Round-based driver for a batch of containment pipelines.

    Parameters
    ----------
    chunk_size:
        Maximum number of same-arity Shannon-cone requests folded into one
        block-LP solve.
    max_workers:
        Thread-pool width for pipeline advancement and LP solving
        (1 = fully inline).
    pair_budget:
        Optional per-pair wall-clock budget in seconds, measured over the
        pair's pipeline stages.  A pair that exceeds it is closed out with an
        UNKNOWN ``"budget-exhausted"`` result instead of blocking the batch.
    on_error:
        ``"raise"`` propagates a pair's exception (mirroring the sequential
        loop); ``"capture"`` converts it into an UNKNOWN ``"error"`` result
        so one malformed pair cannot fail a whole batch.
    lp_method:
        ``Γn`` LP path for every cone decision (``"dense" | "rowgen" |
        "auto"``; see :mod:`repro.lp.rowgen`).
    lp_backend:
        Solver backend for every LP solve (``"auto" | "scipy" | "highs" |
        "scipy-incremental"``; see :mod:`repro.lp.backends`).  ``"auto"``
        drives ``highspy`` directly when installed and falls back to scipy.
    """

    def __init__(
        self,
        chunk_size: int = 32,
        max_workers: int = 1,
        pair_budget: Optional[float] = None,
        on_error: str = "raise",
        stats: Optional[ServiceStats] = None,
        lp_method: str = "auto",
        lp_backend: str = "auto",
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture'")
        if lp_method not in ("dense", "rowgen", "auto"):
            raise ValueError("lp_method must be 'dense', 'rowgen' or 'auto'")
        if lp_backend not in BACKEND_NAMES:
            raise ValueError(f"lp_backend must be one of {BACKEND_NAMES}")
        self.chunk_size = chunk_size
        self.max_workers = max_workers
        self.pair_budget = pair_budget
        self.on_error = on_error
        self.stats = stats if stats is not None else ServiceStats()
        self.lp_method = lp_method
        self.lp_backend = lp_backend

    # ------------------------------------------------------------------ #
    # Pipeline advancement
    # ------------------------------------------------------------------ #
    def _advance(self, run: _PairRun, verdict: Optional[MaxIIVerdict]) -> None:
        """Step one pipeline to its next request (or completion)."""
        started = time.perf_counter()
        try:
            if verdict is None:
                run.request = next(run.pipeline)
            else:
                run.request = run.pipeline.send(verdict)
        except StopIteration as stop:
            run.request = None
            run.result = stop.value
        except ReproError as error:
            run.request = None
            run.error = error
        run.elapsed += time.perf_counter() - started
        if (
            run.active
            and self.pair_budget is not None
            and run.elapsed > self.pair_budget
        ):
            run.pipeline.close()
            run.request = None
            run.result = ContainmentResult(
                status=ContainmentStatus.UNKNOWN,
                method="budget-exhausted",
                details={
                    "note": "per-pair budget exceeded inside the batch engine",
                    "budget_seconds": self.pair_budget,
                    "elapsed_seconds": run.elapsed,
                },
            )
            self.stats.count_over_budget()

    def _advance_all(
        self,
        steps: Sequence[Tuple[_PairRun, Optional[MaxIIVerdict]]],
        pool: Optional[ThreadPoolExecutor],
    ) -> None:
        if pool is not None and len(steps) > 1:
            list(pool.map(lambda step: self._advance(step[0], step[1]), steps))
        else:
            for run, verdict in steps:
                self._advance(run, verdict)

    # ------------------------------------------------------------------ #
    # Request answering
    # ------------------------------------------------------------------ #
    def _solve_gamma_chunk(
        self, chunk: List[_PairRun]
    ) -> List[Tuple[_PairRun, MaxIIVerdict]]:
        """Decide one chunk of same-arity Γn requests in a single block LP."""
        size = len(chunk[0].request.ground)
        canonical = _canonical_ground(size)
        renamed: List[MaxInformationInequality] = []
        for run in chunk:
            mapping = dict(zip(run.request.ground, canonical))
            renamed.append(_rename_max_ii(run.request.max_ii, mapping, canonical))
        rows = sum(len(max_ii.branches) for max_ii in renamed)
        started = time.perf_counter()
        verdicts = decide_max_ii_many(
            renamed,
            over="gamma",
            ground=canonical,
            lp_method=self.lp_method,
            lp_backend=self.lp_backend,
            seed=chunk[0].request.seed,
        )
        self.stats.record_chunk(
            GroupTiming(
                cone="gamma",
                ground_size=size,
                requests=len(chunk),
                rows=rows,
                seconds=time.perf_counter() - started,
            )
        )
        return [
            (run, _verdict_to_original(verdict, run.request.ground))
            for run, verdict in zip(chunk, verdicts)
        ]

    def _solve_scalar(self, run: _PairRun) -> Tuple[_PairRun, MaxIIVerdict]:
        request = run.request
        self.stats.count_scalar_solve()
        return run, decide_max_ii(
            request.max_ii,
            over=request.over,
            ground=request.ground,
            lp_method=self.lp_method,
            lp_backend=self.lp_backend,
            seed=request.seed,
        )

    def _answer_round(
        self, pending: List[_PairRun], pool: Optional[ThreadPoolExecutor]
    ) -> List[Tuple[_PairRun, MaxIIVerdict]]:
        self.stats.lp_requests += len(pending)
        # Group by (arity, seed): all of a chunk's requests share one block
        # LP, so they must agree on the ``Γn`` seed row set too (in practice
        # every pipeline's gamma request carries seed="containment").
        grouped: Dict[Tuple[int, str], List[_PairRun]] = {}
        scalar: List[_PairRun] = []
        for run in pending:
            if run.request.over == "gamma":
                key = (len(run.request.ground), run.request.seed)
                grouped.setdefault(key, []).append(run)
            else:
                scalar.append(run)
        chunks: List[List[_PairRun]] = []
        for key in sorted(grouped):
            group = grouped[key]
            for start in range(0, len(group), self.chunk_size):
                chunks.append(group[start : start + self.chunk_size])
        tasks: List[Callable[[], object]] = [
            (lambda chunk=chunk: self._solve_gamma_chunk(chunk)) for chunk in chunks
        ] + [(lambda run=run: [self._solve_scalar(run)]) for run in scalar]
        answers: List[Tuple[_PairRun, MaxIIVerdict]] = []
        if pool is not None and len(tasks) > 1:
            for result in pool.map(lambda task: task(), tasks):
                answers.extend(result)
        else:
            for task in tasks:
                answers.extend(task())
        return answers

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, pipelines: Sequence[ContainmentPipeline]) -> List[ContainmentResult]:
        """Drive every pipeline to completion; results in submission order."""
        runs = [_PairRun(pipeline) for pipeline in pipelines]
        self.stats.pipelines_run += len(runs)
        pool: Optional[ThreadPoolExecutor] = None
        try:
            if self.max_workers > 1:
                pool = ThreadPoolExecutor(max_workers=self.max_workers)
            self._advance_all([(run, None) for run in runs], pool)
            while True:
                pending = [run for run in runs if run.active and run.request is not None]
                if not pending:
                    break
                answers = self._answer_round(pending, pool)
                self._advance_all(answers, pool)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        results: List[ContainmentResult] = []
        for run in runs:
            if run.error is not None:
                if self.on_error == "raise":
                    raise run.error
                self.stats.pair_errors += 1
                results.append(
                    ContainmentResult(
                        status=ContainmentStatus.UNKNOWN,
                        method="error",
                        details={"error": str(run.error)},
                    )
                )
            else:
                results.append(run.result)
        return results
