"""The batch engine: many containment pipelines, few LP solves.

The engine drives a set of per-pair containment pipelines
(:func:`repro.core.containment.containment_pipeline`) in *rounds*.  In every
round each still-active pipeline has exactly one pending
:class:`~repro.core.containment.ConeDecisionRequest`; the engine answers all
of them at once:

* **Shannon-cone requests** (``over="gamma"`` — the hot path: every pair's
  Theorem 3.1 / Theorem 4.2 check issues exactly one) are grouped by ground
  arity (and seed hint).  Each group's inequalities are renamed onto a shared canonical
  ground tuple — an order-preserving positional rename, so the LP matrices
  are bit-for-bit the ones the sequential path would build — and decided in
  chunks through :func:`repro.infotheory.maxiip.decide_max_ii_many`, which
  stacks a chunk into one block-diagonal HiGHS solve.  The ``lp_method``
  knob (``"dense" | "rowgen" | "auto"``) picks how each block carries the
  ``Γn`` description: dense stacks one full elemental-matrix copy per pair,
  row generation (the default past the auto threshold) gives every block a
  small lazily-grown active row set instead — so chunks of large-arity
  pairs no longer multiply the ~``C(n,2)·2^(n-2)``-row matrix by the chunk
  size.
* **Refutation requests** (``over`` in ``{"normal", "modular"}`` — the rare
  tail after a failed Γn check) are answered by individual
  :func:`decide_max_ii` calls, exactly as the sequential driver would: the
  violating generator coefficients feed the Theorem 3.4 witness
  constructions, and answering them from a joint solve could select a
  different vertex of the same polyhedron than the sequential path.

Worker modes
------------
``worker_mode`` selects how the *query-side* pipeline stages (Boolean
reduction, inequality construction, homomorphism counting, witness
building — all GIL-bound pure Python) are spread over workers:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor` advances
  pipelines and solves LP chunks concurrently.  The query-side stages still
  serialize on the GIL, but the HiGHS solves release it, so chunks of
  different arity groups overlap.  This is what ``"auto"`` currently
  resolves to: it has no pickling overhead and is never slower than the
  sequential path.
* ``"process"`` — pipelines are advanced in a
  :class:`~concurrent.futures.ProcessPoolExecutor` so the query-side stages
  run on real parallel cores.  Generators cannot cross a process boundary,
  so the engine ships a picklable :class:`PipelineTask` — the pair plus the
  verdicts answered so far — and the worker *replays* the deterministic
  pipeline against the recorded verdicts to reach its next request (or its
  final result), returned as a picklable :class:`PipelineStep`.  LP solving
  stays in the parent process, where the warm solver backends and the
  grouped block-LP machinery live.  Replay re-executes earlier query-side
  stages (pipelines issue at most three LP requests, so at most two
  replays), which the per-pair budget accounting therefore counts; the
  trade is worthwhile exactly when those stages dominate, which is the
  workload this mode is for.

Both modes drive the *same* pipeline generator with the same grouped LP
answers, so their verdicts are pair-for-pair identical by construction.

Where the engine sits between the decision core and the serving layers is
diagrammed in ``docs/architecture.md``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.containment import (
    ConeDecisionRequest,
    ContainmentPipeline,
    ContainmentResult,
    ContainmentStatus,
    containment_pipeline,
)
from repro.cq.query import ConjunctiveQuery
from repro.exceptions import ReproError
from repro.infotheory.expressions import MaxInformationInequality
from repro.infotheory.maxiip import MaxIIVerdict, decide_max_ii, decide_max_ii_many
from repro.infotheory.setfunction import SetFunction
from repro.lp.backends import BACKEND_NAMES
from repro.obs import tracer as obs_tracer
from repro.obs.tracer import SpanRecord
from repro.service.stats import GroupTiming, ServiceStats

#: Valid ``worker_mode`` values; ``"auto"`` currently resolves to threads
#: (zero pickling overhead; process mode is an explicit opt-in for
#: query-side-dominated workloads until the crossover is measured).
WORKER_MODES = ("thread", "process", "auto")

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def _canonical_ground(size: int) -> Tuple[str, ...]:
    """The shared ground tuple all size-``n`` grouped requests are renamed onto."""
    return tuple(f"v{i}" for i in range(size))


def _rename_max_ii(
    max_ii: MaxInformationInequality,
    mapping: Dict[str, str],
    ground: Tuple[str, ...],
) -> MaxInformationInequality:
    return MaxInformationInequality(
        branches=tuple(branch.substitute(mapping, ground) for branch in max_ii.branches)
    )


def _verdict_to_original(
    verdict: MaxIIVerdict, original_ground: Tuple[str, ...]
) -> MaxIIVerdict:
    """Translate a verdict over the canonical ground back to the pair's names.

    The rename is positional and order-preserving, so the dense value vector
    of a violating function carries over unchanged.
    """
    if verdict.violating_function is None:
        return MaxIIVerdict(valid=verdict.valid, cone=verdict.cone)
    function = SetFunction.from_vector(
        original_ground, verdict.violating_function.to_vector()
    )
    return MaxIIVerdict(
        valid=verdict.valid,
        cone=verdict.cone,
        violating_function=function,
        violating_coefficients=None,
    )


# ---------------------------------------------------------------------- #
# The picklable process-mode boundary
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PipelineSpec:
    """A picklable description of one containment pipeline.

    This is the request-side boundary of ``worker_mode="process"``: instead
    of a live generator, the engine is handed the pair and the pipeline
    parameters, from which either side of the process boundary can
    (re)build the generator with :meth:`build`.
    """

    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    method: str = "auto"
    max_witness_rows: int = 1024
    refutation_effort: int = 1

    def build(self) -> ContainmentPipeline:
        return containment_pipeline(
            self.q1,
            self.q2,
            method=self.method,
            max_witness_rows=self.max_witness_rows,
            refutation_effort=self.refutation_effort,
        )


@dataclass(frozen=True)
class PipelineTask:
    """One advancement order shipped to a worker process.

    ``verdicts`` are the LP answers received so far, in request order; the
    worker replays the (deterministic) pipeline against them and returns the
    following :class:`PipelineStep`.  ``trace`` asks the worker to record
    spans for the advancement — the parent process's tracer cannot cross the
    process boundary, so tracing propagates as this one flag and the spans
    come back inside the step (see :meth:`repro.obs.tracer.Tracer.adopt`).
    """

    index: int
    spec: PipelineSpec
    verdicts: Tuple[MaxIIVerdict, ...] = ()
    trace: bool = False


@dataclass(frozen=True)
class PipelineStep:
    """A worker's answer: the pipeline's next request, result or error.

    Exactly one of ``request``, ``result`` and ``error`` is set.
    ``elapsed`` is the worker-side wall clock of the whole advancement,
    replayed stages included (replay is real CPU spent, so the per-pair
    budget counts it).  ``spans`` carries the worker-side trace when the
    task asked for one — span times are relative to the worker's task start,
    shifted onto the parent's timeline at adoption.
    """

    index: int
    request: Optional[ConeDecisionRequest] = None
    result: Optional[ContainmentResult] = None
    error: Optional[ReproError] = None
    elapsed: float = 0.0
    spans: Tuple[SpanRecord, ...] = ()


def advance_pipeline_task(task: PipelineTask) -> PipelineStep:
    """Replay a pipeline against its recorded verdicts; return the next step.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference.  Also the ground truth for what the replay
    contract *means*, and unit-testable without any pool.
    """
    started = time.perf_counter()
    pipeline = task.spec.build()
    request = None
    result = None
    error: Optional[ReproError] = None
    try:
        request = next(pipeline)
        for verdict in task.verdicts:
            request = pipeline.send(verdict)
    except StopIteration as stop:
        request = None
        result = stop.value
    except ReproError as caught:
        request = None
        error = caught
    elapsed = time.perf_counter() - started
    spans: Tuple[SpanRecord, ...] = ()
    if task.trace:
        # One span covering the whole worker-side advancement, on the
        # worker's own clock (start 0 = task start); the parent grafts it
        # under the pair's span and shifts it onto its timeline.
        spans = (
            SpanRecord(
                span_id=1,
                parent_id=None,
                name="advance",
                start=0.0,
                duration=elapsed,
                attrs={"index": task.index, "replayed": len(task.verdicts)},
            ),
        )
    return PipelineStep(
        index=task.index,
        request=request,
        result=result,
        error=error,
        elapsed=elapsed,
        spans=spans,
    )


class _PairRun:
    """Bookkeeping for one pipeline driven in-process (thread mode)."""

    __slots__ = (
        "pipeline",
        "request",
        "result",
        "error",
        "elapsed",
        "index",
        "span",
        "started_at",
        "finalized",
    )

    def __init__(self, pipeline: ContainmentPipeline, index: int = 0):
        self.pipeline = pipeline
        self.request: Optional[ConeDecisionRequest] = None
        self.result: Optional[ContainmentResult] = None
        self.error: Optional[Exception] = None
        self.elapsed = 0.0
        self.index = index
        self.span = obs_tracer.NULL_SPAN
        self.started_at = time.perf_counter()
        self.finalized = False

    @property
    def active(self) -> bool:
        return self.result is None and self.error is None

    def close_pipeline(self) -> None:
        self.pipeline.close()


class _ProcessRun:
    """Bookkeeping for one pipeline advanced by replay in worker processes."""

    __slots__ = (
        "index",
        "spec",
        "verdicts",
        "request",
        "result",
        "error",
        "elapsed",
        "span",
        "started_at",
        "finalized",
    )

    def __init__(self, index: int, spec: PipelineSpec):
        self.index = index
        self.spec = spec
        self.verdicts: Tuple[MaxIIVerdict, ...] = ()
        self.request: Optional[ConeDecisionRequest] = None
        self.result: Optional[ContainmentResult] = None
        self.error: Optional[Exception] = None
        self.elapsed = 0.0
        self.span = obs_tracer.NULL_SPAN
        self.started_at = time.perf_counter()
        self.finalized = False

    @property
    def active(self) -> bool:
        return self.result is None and self.error is None

    def close_pipeline(self) -> None:
        pass  # nothing lives in this process

    def task(self) -> PipelineTask:
        return PipelineTask(
            index=self.index,
            spec=self.spec,
            verdicts=self.verdicts,
            trace=obs_tracer.active_tracer() is not None,
        )


class BatchEngine:
    """Round-based driver for a batch of containment pipelines.

    Parameters
    ----------
    chunk_size:
        Maximum number of same-arity Shannon-cone requests folded into one
        block-LP solve.
    max_workers:
        Worker-pool width for pipeline advancement and (in thread mode) LP
        solving (1 = fully inline).
    pair_budget:
        Optional per-pair wall-clock budget in seconds, measured over the
        pair's pipeline stages.  A pair that exceeds it is closed out with an
        UNKNOWN ``"budget-exhausted"`` result instead of blocking the batch.
    deadline:
        Optional wall-clock deadline in seconds for the *whole* run.  Checked
        at round boundaries; pairs still unresolved when it expires are
        closed out with UNKNOWN ``"deadline-exceeded"`` results (never an
        exception — shed work is an answer, not a failure).  A deadline of 0
        sheds everything before any pipeline work.
    on_error:
        ``"raise"`` propagates a pair's exception (mirroring the sequential
        loop); ``"capture"`` converts it into an UNKNOWN ``"error"`` result
        so one malformed pair cannot fail a whole batch.
    worker_mode:
        ``"thread" | "process" | "auto"`` — how the query-side pipeline
        stages are parallelized (see the module docstring).  ``"auto"``
        currently resolves to ``"thread"``.
    lp_method:
        ``Γn`` LP path for every cone decision (``"dense" | "rowgen" |
        "auto"``; see :mod:`repro.lp.rowgen`).
    lp_backend:
        Solver backend for every LP solve (``"auto" | "scipy" | "highs" |
        "scipy-incremental"``; see :mod:`repro.lp.backends`).  ``"auto"``
        drives ``highspy`` directly when installed and falls back to scipy.
    process_pool:
        An externally owned :class:`~concurrent.futures.ProcessPoolExecutor`
        to borrow for process-mode work instead of creating one per engine —
        long-lived callers (the service, hence the daemon) amortize the
        worker fork cost across runs this way.  Borrowed pools are never
        shut down by :meth:`close`.
    """

    def __init__(
        self,
        chunk_size: int = 32,
        max_workers: int = 1,
        pair_budget: Optional[float] = None,
        on_error: str = "raise",
        stats: Optional[ServiceStats] = None,
        lp_method: str = "auto",
        lp_backend: str = "auto",
        worker_mode: str = "auto",
        deadline: Optional[float] = None,
        process_pool: Optional[ProcessPoolExecutor] = None,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if on_error not in ("raise", "capture"):
            raise ValueError("on_error must be 'raise' or 'capture'")
        if lp_method not in ("dense", "rowgen", "auto"):
            raise ValueError("lp_method must be 'dense', 'rowgen' or 'auto'")
        if lp_backend not in BACKEND_NAMES:
            raise ValueError(f"lp_backend must be one of {BACKEND_NAMES}")
        if worker_mode not in WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {WORKER_MODES}")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative (or None)")
        self.chunk_size = chunk_size
        self.max_workers = max_workers
        self.pair_budget = pair_budget
        self.deadline = deadline
        self.on_error = on_error
        self.stats = stats if stats is not None else ServiceStats()
        self.lp_method = lp_method
        self.lp_backend = lp_backend
        self.worker_mode = worker_mode
        # A caller-provided pool (e.g. a long-lived service amortizing the
        # worker fork cost across runs) is borrowed, never shut down here.
        self._process_pool = process_pool
        self._owns_process_pool = process_pool is None
        # The current run's batch span id: chunk solves run on pool threads
        # whose span stacks are empty, so they parent here explicitly.
        self._batch_span_id: Optional[int] = None
        # Per-pair pipeline seconds of the most recent run (see _collect).
        self.last_pair_seconds: List[float] = []

    # ------------------------------------------------------------------ #
    # Worker-pool plumbing
    # ------------------------------------------------------------------ #
    @property
    def resolved_worker_mode(self) -> str:
        """The concrete mode ``"auto"`` resolves to (currently threads)."""
        if self.worker_mode == "auto":
            return "thread"
        return self.worker_mode

    def process_pool(self) -> ProcessPoolExecutor:
        """The engine's lazily created worker-process pool."""
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._process_pool

    def close(self) -> None:
        """Release the worker-process pool if this engine owns it (idempotent)."""
        if self._process_pool is not None and self._owns_process_pool:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map_query_side(
        self, function: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]
    ) -> List[_ResultT]:
        """Map a pure, picklable query-side function over ``items``.

        In process mode with workers this fans out over the worker-process
        pool (the service uses it for canonical-labeling keys, the other
        GIL-bound stage); otherwise it runs inline — thread pools cannot help
        pure Python work.
        """
        items = list(items)
        if (
            self.resolved_worker_mode == "process"
            and self.max_workers > 1
            and len(items) > 1
        ):
            chunksize = max(1, len(items) // (self.max_workers * 4))
            return list(self.process_pool().map(function, items, chunksize=chunksize))
        return [function(item) for item in items]

    # ------------------------------------------------------------------ #
    # Pipeline advancement (thread mode)
    # ------------------------------------------------------------------ #
    def _budget_result(self, elapsed: float) -> ContainmentResult:
        return ContainmentResult(
            status=ContainmentStatus.UNKNOWN,
            method="budget-exhausted",
            details={
                "note": "per-pair budget exceeded inside the batch engine",
                "budget_seconds": self.pair_budget,
                "elapsed_seconds": elapsed,
            },
        )

    def _deadline_result(self) -> ContainmentResult:
        return ContainmentResult(
            status=ContainmentStatus.UNKNOWN,
            method="deadline-exceeded",
            details={
                "note": "the batch deadline expired before this pair was decided",
                "deadline_seconds": self.deadline,
            },
        )

    def _finalize_run(self, run) -> None:
        """Close out a finished run's telemetry (idempotent).

        Observes the pair's end-to-end latency — creation to completion,
        LP rounds included — and finishes its span with the outcome.
        """
        if run.active or run.finalized:
            return
        run.finalized = True
        self.stats.observe_pair_seconds(time.perf_counter() - run.started_at)
        if run.error is not None:
            run.span.finish(outcome="error")
        else:
            run.span.finish(
                outcome=run.result.status.value, method=run.result.method
            )

    def _shed_expired(self, runs, deadline_at: Optional[float]) -> bool:
        """Close every still-active run once the batch deadline has passed."""
        if deadline_at is None or time.perf_counter() < deadline_at:
            return False
        for run in runs:
            if run.active:
                run.close_pipeline()
                run.request = None
                run.result = self._deadline_result()
                self.stats.count_deadline_exceeded()
                self._finalize_run(run)
        return True

    def _advance(self, run: _PairRun, verdict: Optional[MaxIIVerdict]) -> None:
        """Step one pipeline to its next request (or completion)."""
        started = time.perf_counter()
        try:
            if verdict is None:
                run.request = next(run.pipeline)
            else:
                run.request = run.pipeline.send(verdict)
        except StopIteration as stop:
            run.request = None
            run.result = stop.value
        except ReproError as error:
            run.request = None
            run.error = error
        elapsed = time.perf_counter() - started
        run.elapsed += elapsed
        obs_tracer.record_span(
            "advance", started, elapsed, parent=run.span.id, index=run.index
        )
        self._enforce_budget(run)
        self._finalize_run(run)

    def _enforce_budget(self, run) -> None:
        if (
            run.active
            and self.pair_budget is not None
            and run.elapsed > self.pair_budget
        ):
            run.close_pipeline()
            run.request = None
            run.result = self._budget_result(run.elapsed)
            self.stats.count_over_budget()

    def _advance_all(
        self,
        steps: Sequence[Tuple[_PairRun, Optional[MaxIIVerdict]]],
        pool: Optional[ThreadPoolExecutor],
    ) -> None:
        if pool is not None and len(steps) > 1:
            list(pool.map(lambda step: self._advance(step[0], step[1]), steps))
        else:
            for run, verdict in steps:
                self._advance(run, verdict)

    # ------------------------------------------------------------------ #
    # Request answering
    # ------------------------------------------------------------------ #
    def _solve_gamma_chunk(
        self, chunk: List[_PairRun]
    ) -> List[Tuple[_PairRun, MaxIIVerdict]]:
        """Decide one chunk of same-arity Γn requests in a single block LP."""
        size = len(chunk[0].request.ground)
        canonical = _canonical_ground(size)
        renamed: List[MaxInformationInequality] = []
        for run in chunk:
            mapping = dict(zip(run.request.ground, canonical))
            renamed.append(_rename_max_ii(run.request.max_ii, mapping, canonical))
        rows = sum(len(max_ii.branches) for max_ii in renamed)
        # The span is pushed on this (pool) thread's stack, so the rowgen
        # round spans recorded inside the solve nest under it.
        with obs_tracer.span(
            "lp-chunk",
            parent=self._batch_span_id,
            cone="gamma",
            ground_size=size,
            requests=len(chunk),
            rows=rows,
        ):
            started = time.perf_counter()
            verdicts = decide_max_ii_many(
                renamed,
                over="gamma",
                ground=canonical,
                lp_method=self.lp_method,
                lp_backend=self.lp_backend,
                seed=chunk[0].request.seed,
            )
        self.stats.record_chunk(
            GroupTiming(
                cone="gamma",
                ground_size=size,
                requests=len(chunk),
                rows=rows,
                seconds=time.perf_counter() - started,
            )
        )
        return [
            (run, _verdict_to_original(verdict, run.request.ground))
            for run, verdict in zip(chunk, verdicts)
        ]

    def _solve_scalar(self, run: _PairRun) -> Tuple[_PairRun, MaxIIVerdict]:
        request = run.request
        self.stats.count_scalar_solve()
        with obs_tracer.span(
            "lp-scalar",
            parent=run.span.id if run.span.id is not None else self._batch_span_id,
            over=request.over,
            ground_size=len(request.ground),
        ):
            verdict = decide_max_ii(
                request.max_ii,
                over=request.over,
                ground=request.ground,
                lp_method=self.lp_method,
                lp_backend=self.lp_backend,
                seed=request.seed,
            )
        return run, verdict

    def _answer_round(
        self, pending: List[_PairRun], pool: Optional[ThreadPoolExecutor]
    ) -> List[Tuple[_PairRun, MaxIIVerdict]]:
        self.stats.lp_requests += len(pending)
        # Group by (arity, seed): all of a chunk's requests share one block
        # LP, so they must agree on the ``Γn`` seed row set too (in practice
        # every pipeline's gamma request carries seed="containment").
        grouped: Dict[Tuple[int, str], List[_PairRun]] = {}
        scalar: List[_PairRun] = []
        for run in pending:
            if run.request.over == "gamma":
                key = (len(run.request.ground), run.request.seed)
                grouped.setdefault(key, []).append(run)
            else:
                scalar.append(run)
        chunks: List[List[_PairRun]] = []
        for key in sorted(grouped):
            group = grouped[key]
            for start in range(0, len(group), self.chunk_size):
                chunks.append(group[start : start + self.chunk_size])
        tasks: List[Callable[[], object]] = [
            (lambda chunk=chunk: self._solve_gamma_chunk(chunk)) for chunk in chunks
        ] + [(lambda run=run: [self._solve_scalar(run)]) for run in scalar]
        answers: List[Tuple[_PairRun, MaxIIVerdict]] = []
        if pool is not None and len(tasks) > 1:
            for result in pool.map(lambda task: task(), tasks):
                answers.extend(result)
        else:
            for task in tasks:
                answers.extend(task())
        return answers

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run(self, pipelines: Sequence[ContainmentPipeline]) -> List[ContainmentResult]:
        """Drive every pipeline to completion; results in submission order.

        This is the in-process (thread-mode) driver; it accepts live
        generators.  Process mode needs picklable inputs — use
        :meth:`run_specs`.
        """
        runs = [_PairRun(pipeline, index) for index, pipeline in enumerate(pipelines)]
        self.stats.pipelines_run += len(runs)
        batch_span = obs_tracer.start_span("batch", mode="thread", pairs=len(runs))
        self._batch_span_id = batch_span.id
        for run in runs:
            run.span = obs_tracer.start_span(
                "pair", parent=batch_span.id, index=run.index
            )
        deadline_at = (
            None if self.deadline is None else time.perf_counter() + self.deadline
        )
        pool: Optional[ThreadPoolExecutor] = None
        try:
            if self.max_workers > 1:
                pool = ThreadPoolExecutor(max_workers=self.max_workers)
            if not self._shed_expired(runs, deadline_at):
                self._advance_all([(run, None) for run in runs], pool)
            while True:
                self._shed_expired(runs, deadline_at)
                pending = [run for run in runs if run.active and run.request is not None]
                if not pending:
                    break
                answers = self._answer_round(pending, pool)
                self._advance_all(answers, pool)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            self._batch_span_id = None
            batch_span.finish()
        return self._collect(runs)

    def run_specs(self, specs: Sequence[PipelineSpec]) -> List[ContainmentResult]:
        """Drive a batch described by picklable :class:`PipelineSpec` objects.

        Dispatches on the resolved worker mode: thread mode builds the
        generators here and delegates to :meth:`run`; process mode replays
        them in the worker-process pool (see the module docstring).
        """
        specs = list(specs)
        if (
            self.resolved_worker_mode == "process"
            and self.max_workers > 1
            and len(specs) > 1
        ):
            return self._run_process(specs)
        return self.run([spec.build() for spec in specs])

    def _run_process(self, specs: Sequence[PipelineSpec]) -> List[ContainmentResult]:
        runs = [_ProcessRun(index, spec) for index, spec in enumerate(specs)]
        self.stats.pipelines_run += len(runs)
        tracer = obs_tracer.active_tracer()
        batch_span = obs_tracer.start_span("batch", mode="process", pairs=len(runs))
        self._batch_span_id = batch_span.id
        for run in runs:
            run.span = obs_tracer.start_span(
                "pair", parent=batch_span.id, index=run.index
            )
        deadline_at = (
            None if self.deadline is None else time.perf_counter() + self.deadline
        )
        pool = self.process_pool()
        # LP solving stays in this process: the grouped block solves and any
        # warm backend state live here — but independent chunks still overlap
        # on a thread pool exactly as in thread mode (HiGHS releases the GIL),
        # so opting into process workers never serializes the LP rounds.
        lp_pool: Optional[ThreadPoolExecutor] = None
        to_advance: List[_ProcessRun] = list(runs)
        try:
            if self.max_workers > 1:
                lp_pool = ThreadPoolExecutor(max_workers=self.max_workers)
            while True:
                if self._shed_expired(runs, deadline_at):
                    break
                submitted_at = time.perf_counter()
                futures = [
                    pool.submit(advance_pipeline_task, run.task()) for run in to_advance
                ]
                for run, future in zip(to_advance, futures):
                    step = future.result()
                    if tracer is not None and step.spans:
                        tracer.adopt(
                            step.spans,
                            parent=run.span.id,
                            start_offset=submitted_at - tracer.epoch,
                        )
                    self._apply_step(run, step)
                self._shed_expired(runs, deadline_at)
                pending = [run for run in runs if run.active and run.request is not None]
                if not pending:
                    break
                answers = self._answer_round(pending, lp_pool)
                to_advance = []
                for run, verdict in answers:
                    if run.active:
                        run.verdicts = run.verdicts + (verdict,)
                        run.request = None
                        to_advance.append(run)
                if not to_advance:
                    break
        finally:
            if lp_pool is not None:
                lp_pool.shutdown(wait=True)
            self._batch_span_id = None
            batch_span.finish()
        return self._collect(runs)

    def _apply_step(self, run: _ProcessRun, step: PipelineStep) -> None:
        run.elapsed += step.elapsed
        if step.error is not None:
            run.request = None
            run.error = step.error
        elif step.result is not None:
            run.request = None
            run.result = step.result
        else:
            run.request = step.request
        self._enforce_budget(run)
        self._finalize_run(run)

    def _collect(self, runs) -> List[ContainmentResult]:
        # Per-pair pipeline wall clock, index-aligned with the returned
        # results; the service records it as store provenance.
        self.last_pair_seconds = [run.elapsed for run in runs]
        results: List[ContainmentResult] = []
        for run in runs:
            if run.error is not None:
                if self.on_error == "raise":
                    raise run.error
                self.stats.pair_errors += 1
                results.append(
                    ContainmentResult(
                        status=ContainmentStatus.UNKNOWN,
                        method="error",
                        details={"error": str(run.error)},
                    )
                )
            else:
                results.append(run.result)
        return results
