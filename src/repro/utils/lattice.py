"""Bitmask-indexed subset-lattice contexts, cached per ground set.

Every decision procedure in the library quantifies over the ``2^n`` subsets
of a ground set of variables.  A :class:`SubsetLattice` pre-computes, once
per ground tuple (shared process-wide through :func:`lattice_context`), the
coordinate data every hot path needs:

* the **bitmask convention** — element ``ground[i]`` contributes bit
  ``2**i``, so a subset *is* an integer in ``[0, 2^n)`` and the value table
  of a set function is a dense numpy vector indexed by that integer (the
  convention of :func:`repro.utils.subsets.powerset_indexed`);
* the **canonical enumeration order** — by size, then lexicographically in
  the ground order (the order of :func:`repro.utils.subsets.all_subsets`),
  as a permutation ``canon_masks`` of the bitmask range, so dense vectors
  and the LP layer's canonical coordinate vectors convert by fancy indexing;
* frozenset ↔ mask maps for the public frozenset-based APIs;
* the **elemental inequality structure** of the Shannon cone ``Γn`` — the
  row/column/coefficient arrays and the assembled CSR matrix, built directly
  from bitmask arithmetic;
* vectorized superset zeta/Möbius transforms (the engines of the I-measure
  and normality checks).

The context is immutable after construction; callers must treat every array
it hands out as read-only.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import EntropyError


class SubsetLattice:
    """Pre-computed subset-lattice data for one ordered ground tuple.

    Obtain instances through :func:`lattice_context`, never directly — the
    whole point is that there is exactly one per ground tuple per process.
    """

    __slots__ = (
        "ground",
        "n",
        "size",
        "full_mask",
        "positions",
        "bits",
        "arange",
        "popcount",
        "canon_masks",
        "canon_pos",
        "subsets_canonical",
        "nonempty_subsets",
        "subsets_by_mask",
        "mask_index",
        "canon_index",
        "_zeta_lo",
        "_elemental",
    )

    def __init__(self, ground: Tuple[str, ...]):
        if len(set(ground)) != len(ground):
            raise EntropyError("ground set contains repeated variables")
        n = len(ground)
        size = 1 << n
        self.ground = ground
        self.n = n
        self.size = size
        self.full_mask = size - 1
        self.positions = {variable: i for i, variable in enumerate(ground)}
        self.bits = {variable: 1 << i for i, variable in enumerate(ground)}
        self.arange = np.arange(size, dtype=np.int64)
        self.arange.setflags(write=False)

        popcount = np.zeros(size, dtype=np.int64)
        for i in range(n):
            popcount += (self.arange >> i) & 1
        popcount.setflags(write=False)
        self.popcount = popcount

        # Canonical (size-then-lex) enumeration, the order of all_subsets().
        masks: List[int] = []
        subsets: List[FrozenSet[str]] = []
        for k in range(n + 1):
            for combo in combinations(range(n), k):
                mask = 0
                for i in combo:
                    mask |= 1 << i
                masks.append(mask)
                subsets.append(frozenset(ground[i] for i in combo))
        canon_masks = np.array(masks, dtype=np.int64)
        canon_masks.setflags(write=False)
        self.canon_masks = canon_masks
        canon_pos = np.empty(size, dtype=np.int64)
        canon_pos[canon_masks] = np.arange(size, dtype=np.int64)
        canon_pos.setflags(write=False)
        self.canon_pos = canon_pos
        self.subsets_canonical = tuple(subsets)
        self.nonempty_subsets = self.subsets_canonical[1:]
        by_mask: List[Optional[FrozenSet[str]]] = [None] * size
        for subset, mask in zip(subsets, masks):
            by_mask[mask] = subset
        self.subsets_by_mask = tuple(by_mask)
        self.mask_index: Dict[FrozenSet[str], int] = dict(zip(subsets, masks))
        self.canon_index: Dict[FrozenSet[str], int] = {
            subset: position for position, subset in enumerate(subsets)
        }
        self._zeta_lo: Optional[List[np.ndarray]] = None
        self._elemental = None

    # ------------------------------------------------------------------ #
    # Mask helpers
    # ------------------------------------------------------------------ #
    def mask_of(self, variables: Iterable[str]) -> int:
        """The bitmask of a subset given as an iterable of variables."""
        if isinstance(variables, str):
            variables = (variables,)
        elif not isinstance(variables, (tuple, list, set, frozenset)):
            variables = tuple(variables)
        bits = self.bits
        mask = 0
        try:
            for variable in variables:
                mask |= bits[variable]
        except (KeyError, TypeError):
            unknown = set(variables) - set(self.ground)
            raise EntropyError(f"unknown variables {sorted(unknown)}") from None
        return mask

    def subset_of_mask(self, mask: int) -> FrozenSet[str]:
        """The frozenset encoded by ``mask``."""
        return self.subsets_by_mask[mask]

    def translate_masks(self, sub_ground: Sequence[str]) -> np.ndarray:
        """Map masks over ``sub_ground``'s bit order into this lattice's masks.

        Returns an array ``t`` of length ``2^len(sub_ground)`` with
        ``t[m] = mask in self of the subset encoded by m over sub_ground``.
        Used to re-align vectors between ground orders, to restrict, and to
        condition.
        """
        k = len(sub_ground)
        sub_range = np.arange(1 << k, dtype=np.int64)
        translated = np.zeros(1 << k, dtype=np.int64)
        bits = self.bits
        for i, variable in enumerate(sub_ground):
            translated += ((sub_range >> i) & 1) * bits[variable]
        return translated

    # ------------------------------------------------------------------ #
    # Superset zeta / Möbius transforms
    # ------------------------------------------------------------------ #
    def _lo_indices(self) -> List[np.ndarray]:
        if self._zeta_lo is None:
            lo = []
            for i in range(self.n):
                indices = np.nonzero((self.arange & (1 << i)) == 0)[0]
                indices.setflags(write=False)
                lo.append(indices)
            self._zeta_lo = lo
        return self._zeta_lo

    def zeta_superset(self, dense: np.ndarray) -> np.ndarray:
        """The superset-sum transform ``(ζg)(X) = Σ_{Y ⊇ X} g(Y)``."""
        result = np.array(dense, dtype=float)
        for i, lo in enumerate(self._lo_indices()):
            result[lo] += result[lo + (1 << i)]
        return result

    def mobius_superset(self, dense: np.ndarray) -> np.ndarray:
        """The superset Möbius transform ``g(X) = Σ_{Y ⊇ X} (-1)^{|Y\\X|} h(Y)``.

        Inverse of :meth:`zeta_superset`; both run in ``O(n · 2^n)`` numpy
        operations instead of the naive ``O(4^n)`` double loop.
        """
        result = np.array(dense, dtype=float)
        for i, lo in enumerate(self._lo_indices()):
            result[lo] -= result[lo + (1 << i)]
        return result

    # ------------------------------------------------------------------ #
    # Elemental inequality structure of Γn
    # ------------------------------------------------------------------ #
    def elemental_structure(
        self,
    ) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray, Tuple[str, ...]]:
        """The elemental Shannon inequalities in bitmask coordinates.

        Returns ``(matrix, masks, coeffs, kinds)`` where

        * ``matrix`` is the CSR matrix with one row per elemental inequality
          and one column per non-empty subset in canonical order (the
          coordinate order of :meth:`SetFunction.to_vector` and the LP layer);
        * ``masks``/``coeffs`` are ``(rows, 4)`` arrays listing each row's
          (at most four) participating subset masks and coefficients (unused
          slots carry coefficient 0);
        * ``kinds`` names each row ``"monotonicity"`` or ``"submodularity"``.

        Row order matches :func:`repro.infotheory.polymatroid.elemental_inequalities`:
        the ``n`` monotonicity rows first, then the conditional mutual
        informations ``I(i ; j | K)`` for ground-ordered pairs ``i < j`` with
        contexts ``K`` in canonical subset order.
        """
        if self._elemental is None:
            n, full = self.n, self.full_mask
            mask_rows: List[Tuple[int, int, int, int]] = []
            coeff_rows: List[Tuple[float, float, float, float]] = []
            kinds: List[str] = []
            for i in range(n):
                rest = full ^ (1 << i)
                mask_rows.append((full, rest, 0, 0))
                coeff_rows.append((1.0, -1.0 if rest else 0.0, 0.0, 0.0))
                kinds.append("monotonicity")
            for a in range(n):
                bit_a = 1 << a
                for b in range(a + 1, n):
                    bit_b = 1 << b
                    others = [p for p in range(n) if p not in (a, b)]
                    for k in range(len(others) + 1):
                        for combo in combinations(others, k):
                            context = 0
                            for p in combo:
                                context |= 1 << p
                            mask_rows.append(
                                (context | bit_a, context | bit_b,
                                 context | bit_a | bit_b, context)
                            )
                            coeff_rows.append(
                                (1.0, 1.0, -1.0, -1.0 if context else 0.0)
                            )
                            kinds.append("submodularity")
            masks = np.array(mask_rows, dtype=np.int64)
            coeffs = np.array(coeff_rows, dtype=float)
            nonzero = coeffs != 0.0
            row_indices = np.repeat(np.arange(len(mask_rows)), 4)[nonzero.ravel()]
            columns = self.canon_pos[masks[nonzero]] - 1
            matrix = sp.csr_matrix(
                (coeffs[nonzero], (row_indices, columns)),
                shape=(len(mask_rows), self.size - 1),
            )
            masks.setflags(write=False)
            coeffs.setflags(write=False)
            self._elemental = (matrix, masks, coeffs, tuple(kinds))
        return self._elemental

    def elemental_matrix(self) -> sp.csr_matrix:
        """The CSR elemental-inequality matrix (canonical non-empty columns)."""
        return self.elemental_structure()[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubsetLattice(ground={self.ground!r})"


@lru_cache(maxsize=512)
def lattice_context(ground: Tuple[str, ...]) -> SubsetLattice:
    """The process-wide shared :class:`SubsetLattice` for a ground tuple.

    Bounded so long-running processes that see many distinct variable-name
    tuples don't retain a lattice per tuple forever; evicted contexts stay
    alive only as long as live :class:`SetFunction` instances reference
    them, and a rebuilt context is bit-for-bit identical (the layout is
    purely positional).
    """
    return SubsetLattice(tuple(ground))
