"""Small generic helpers shared across the library."""

from repro.utils.subsets import (
    all_subsets,
    nonempty_subsets,
    powerset_indexed,
    proper_subsets,
    subsets_of_size,
)
from repro.utils.ordering import canonical_order, stable_unique
from repro.utils.rational import (
    as_fraction,
    fractions_from_floats,
    lcm_of_denominators,
    scale_to_integers,
)

__all__ = [
    "all_subsets",
    "nonempty_subsets",
    "proper_subsets",
    "subsets_of_size",
    "powerset_indexed",
    "canonical_order",
    "stable_unique",
    "as_fraction",
    "fractions_from_floats",
    "lcm_of_denominators",
    "scale_to_integers",
]
