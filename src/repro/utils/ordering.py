"""Deterministic ordering helpers.

Many objects in the library (variables of a query, attributes of a relation,
nodes of a tree decomposition) are mathematically sets but need a canonical
order so that results are reproducible run to run.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def stable_unique(items: Iterable[T]) -> Tuple[T, ...]:
    """Return the distinct items of ``items`` preserving first-occurrence order.

    >>> stable_unique(["x", "y", "x", "z", "y"])
    ('x', 'y', 'z')
    """
    seen = set()
    result: List[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return tuple(result)


def canonical_order(items: Iterable[T]) -> Tuple[T, ...]:
    """Return the distinct items of ``items`` sorted by their string form.

    Sorting by ``str`` keeps the function usable for heterogeneous domains
    (integers mixed with strings) while remaining deterministic.
    """
    unique = set(items)
    return tuple(sorted(unique, key=lambda item: (str(type(item)), str(item))))


def argsort_by(items: Sequence[T], keys: Sequence) -> Tuple[int, ...]:
    """Return the indices that sort ``items`` according to ``keys``."""
    if len(items) != len(keys):
        raise ValueError("items and keys must have the same length")
    return tuple(sorted(range(len(items)), key=lambda i: keys[i]))
