"""Subset enumeration helpers.

The information-theoretic side of the library constantly quantifies over the
subsets of a ground set of variables (the sets ``X ⊆ V`` appearing in an
information inequality).  These helpers centralize that enumeration so that
every module iterates subsets in the same, deterministic order.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, Iterable, Iterator, Sequence, Tuple, TypeVar

T = TypeVar("T")


def all_subsets(items: Sequence[T]) -> Iterator[Tuple[T, ...]]:
    """Yield every subset of ``items`` (including the empty set) as a tuple.

    Subsets are yielded in order of increasing size, and within one size in
    the lexicographic order induced by the input sequence.  The enumeration is
    therefore deterministic for a fixed input order.

    >>> list(all_subsets(("a", "b")))
    [(), ('a',), ('b',), ('a', 'b')]
    """
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )


def nonempty_subsets(items: Sequence[T]) -> Iterator[Tuple[T, ...]]:
    """Yield every non-empty subset of ``items`` as a tuple."""
    return chain.from_iterable(
        combinations(items, size) for size in range(1, len(items) + 1)
    )


def proper_subsets(items: Sequence[T]) -> Iterator[Tuple[T, ...]]:
    """Yield every proper subset of ``items`` (everything except the full set).

    This is the index set of the step functions ``h_W`` with ``W ⊊ V`` used to
    generate the cone of normal entropic functions.
    """
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items))
    )


def subsets_of_size(items: Sequence[T], size: int) -> Iterator[Tuple[T, ...]]:
    """Yield every subset of ``items`` with exactly ``size`` elements."""
    return iter(combinations(items, size))


def powerset_indexed(items: Sequence[T]) -> Dict[frozenset, int]:
    """Map every subset of ``items`` (as a frozenset) to a dense index.

    The index of a subset is its bitmask with respect to the position of each
    element in ``items``: element ``items[i]`` contributes bit ``2**i``.  This
    is the coordinate convention used by the LP layer when it flattens a set
    function into a vector of length ``2**len(items)``.
    """
    positions = {item: i for i, item in enumerate(items)}
    index: Dict[frozenset, int] = {}
    for subset in all_subsets(items):
        mask = 0
        for item in subset:
            mask |= 1 << positions[item]
        index[frozenset(subset)] = mask
    return index


def bitmask_of(subset: Iterable[T], positions: Dict[T, int]) -> int:
    """Return the bitmask of ``subset`` under the element → position map."""
    mask = 0
    for item in subset:
        mask |= 1 << positions[item]
    return mask


def subset_from_bitmask(mask: int, items: Sequence[T]) -> frozenset:
    """Return the subset of ``items`` encoded by ``mask``."""
    return frozenset(item for i, item in enumerate(items) if mask & (1 << i))
