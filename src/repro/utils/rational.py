"""Exact rational arithmetic helpers.

LP solvers return floating-point solutions, but the constructions in the
paper (witness relations, uniformization of inequalities, convex-combination
certificates) need exact rational or integer data.  These helpers convert
float vectors into nearby rationals and clear denominators.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence, Tuple


def as_fraction(value, max_denominator: int = 10**6) -> Fraction:
    """Convert ``value`` to a :class:`fractions.Fraction`.

    Exact types (``int``, ``Fraction``) are converted losslessly; floats are
    rounded to the closest fraction with denominator at most
    ``max_denominator``.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(value).limit_denominator(max_denominator)


def fractions_from_floats(
    values: Iterable[float],
    max_denominator: int = 10**6,
    zero_tolerance: float = 1e-9,
) -> Tuple[Fraction, ...]:
    """Convert a float vector to fractions, snapping tiny values to zero.

    LP solutions often contain values like ``1e-13`` that are mathematically
    zero; snapping them avoids huge spurious denominators downstream.
    """
    result: List[Fraction] = []
    for value in values:
        if abs(value) <= zero_tolerance:
            result.append(Fraction(0))
        else:
            result.append(as_fraction(value, max_denominator))
    return tuple(result)


def lcm_of_denominators(values: Iterable[Fraction]) -> int:
    """Return the least common multiple of the denominators of ``values``."""
    lcm = 1
    for value in values:
        denominator = Fraction(value).denominator
        lcm = lcm * denominator // gcd(lcm, denominator)
    return lcm


def scale_to_integers(values: Sequence) -> Tuple[Tuple[int, ...], int]:
    """Scale a rational vector to integers by clearing denominators.

    Returns ``(integers, scale)`` such that ``integers[i] == values[i] * scale``
    exactly, where ``scale`` is the least common multiple of the denominators.
    """
    fractions = [as_fraction(value) for value in values]
    scale = lcm_of_denominators(fractions)
    integers = tuple(int(value * scale) for value in fractions)
    return integers, scale
