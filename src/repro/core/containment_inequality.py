"""The containment Max-II of Eq. (8) built from a query pair.

Theorem 4.2 (sufficiency): if

    ``h(vars(Q1)) ≤ max_{(T,χ)} max_{φ ∈ hom(Q2,Q1)} (E_T ∘ φ)(h)``

holds for every entropic ``h``, then ``Q1 ⊑ Q2``.  Theorem 4.4 (necessity for
acyclic ``Q2``) and Lemma E.1 (chordal ``Q2`` with a simple junction tree,
restricted to normal ``h``) provide the converses that make the inequality a
decision criterion.

The construction here takes a *finite* family of tree decompositions of
``Q2`` (by default the canonical candidates: join tree / junction tree /
min-fill).  Using a subset of ``TD(Q2)`` only shrinks the right-hand side, so
validity of the restricted inequality still implies containment; and the
necessity proofs only ever use a single junction tree, so nothing is lost for
the decidable cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cq.decompositions import TreeDecomposition, candidate_tree_decompositions
from repro.cq.homomorphism import query_to_query_homomorphisms
from repro.cq.query import ConjunctiveQuery
from repro.core.et_expression import et_expression
from repro.exceptions import QueryError
from repro.infotheory.expressions import (
    ConditionalExpression,
    LinearExpression,
    MaxInformationInequality,
)
from repro.infotheory.setfunction import SetFunction


@dataclass(frozen=True)
class ContainmentBranch:
    """One branch ``(E_T ∘ φ)`` of the containment inequality."""

    decomposition: TreeDecomposition
    homomorphism: Mapping[str, str]
    conditional: ConditionalExpression

    @property
    def is_simple(self) -> bool:
        return self.conditional.is_simple

    @property
    def is_unconditioned(self) -> bool:
        return self.conditional.is_unconditioned


@dataclass(frozen=True)
class ContainmentInequality:
    """The Max-II ``h(vars(Q1)) ≤ max_branches (E_T ∘ φ)(h)`` for a query pair.

    Attributes
    ----------
    q1, q2:
        The (Boolean) queries the inequality was built from.
    ground:
        ``vars(Q1)``, the ground set of the inequality.
    branches:
        One :class:`ContainmentBranch` per (tree decomposition, homomorphism)
        pair.  An empty branch list means ``hom(Q2, Q1) = ∅``; the inequality
        is then vacuously false for every non-trivial ``h`` and containment
        fails on the canonical database of ``Q1`` already.
    """

    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    ground: Tuple[str, ...]
    branches: Tuple[ContainmentBranch, ...] = field(default_factory=tuple)

    @property
    def is_trivially_false(self) -> bool:
        """True when there is no homomorphism ``Q2 → Q1`` at all."""
        return len(self.branches) == 0

    @property
    def all_branches_simple(self) -> bool:
        return all(branch.is_simple for branch in self.branches)

    @property
    def all_branches_unconditioned(self) -> bool:
        return all(branch.is_unconditioned for branch in self.branches)

    def branch_expressions(self) -> List[LinearExpression]:
        """The branches flattened to plain linear expressions over ``ground``."""
        return [
            branch.conditional.to_linear().with_ground(self.ground)
            for branch in self.branches
        ]

    def as_max_ii(self) -> MaxInformationInequality:
        """The inequality in Max-II form: ``0 ≤ max_ℓ [(E_T∘φ)_ℓ(h) − h(V)]``."""
        if self.is_trivially_false:
            raise QueryError(
                "the containment inequality has no branches (hom(Q2, Q1) is empty)"
            )
        return MaxInformationInequality.containment_form(
            1.0, self.ground, self.branch_expressions()
        )

    def holds_for(self, function: SetFunction, tolerance: float = 1e-9) -> bool:
        """Evaluate the inequality on a single set function."""
        if self.is_trivially_false:
            return function.total() <= tolerance
        rhs = max(expr.evaluate(function) for expr in self.branch_expressions())
        return function.total() <= rhs + tolerance

    def right_hand_side(self, function: SetFunction) -> float:
        """``max_ℓ (E_T ∘ φ)_ℓ(h)`` (``-inf``-like 0 when there are no branches)."""
        if self.is_trivially_false:
            return float("-inf")
        return max(expr.evaluate(function) for expr in self.branch_expressions())


def build_containment_inequality(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    decompositions: Optional[Sequence[TreeDecomposition]] = None,
) -> ContainmentInequality:
    """Build the Eq. (8) inequality for a pair of Boolean queries.

    ``decompositions`` defaults to the canonical candidates of ``Q2``
    (:func:`repro.cq.decompositions.candidate_tree_decompositions`).  Every
    homomorphism ``φ ∈ hom(Q2, Q1)`` contributes one branch per
    decomposition.
    """
    if not q1.is_boolean or not q2.is_boolean:
        raise QueryError(
            "the containment inequality is defined for Boolean queries; "
            "apply repro.cq.reductions.to_boolean_pair first"
        )
    ground = q1.variables
    if decompositions is None:
        decompositions = candidate_tree_decompositions(q2)
    homomorphisms = query_to_query_homomorphisms(q2, q1)
    branches: List[ContainmentBranch] = []
    seen: Dict[Tuple, bool] = {}
    for decomposition in decompositions:
        decomposition.validate(q2)
        template = et_expression(decomposition, ground=q2.variables)
        for homomorphism in homomorphisms:
            conditional = template.substitute(homomorphism, ground)
            key = tuple(
                sorted(
                    (tuple(sorted(term.targets)), tuple(sorted(term.given)), term.coefficient)
                    for term in conditional.terms
                )
            )
            if key in seen:
                continue
            seen[key] = True
            branches.append(
                ContainmentBranch(
                    decomposition=decomposition,
                    homomorphism=dict(homomorphism),
                    conditional=conditional,
                )
            )
    return ContainmentInequality(
        q1=q1, q2=q2, ground=ground, branches=tuple(branches)
    )
